// Package core assembles the full PolarDB-X system (paper §II): the
// CN-DN-SN three-layer architecture wired over the simulated multi-DC
// fabric. It provides the Cluster (GMS + load balancer + CN fleet + DN
// groups + PolarFS) and the CN's complete query path: SQL → HTAP
// optimizer → routing → distributed transactions (HLC-SI or TSO-SI) →
// execution (TP on RW leaders, AP on RO replicas with resource
// isolation, MPP fragments and column indexes).
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/autopilot"
	"repro/internal/dn"
	"repro/internal/executor"
	"repro/internal/gms"
	"repro/internal/hlc"
	"repro/internal/htap"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/paxos"
	"repro/internal/polarfs"
	"repro/internal/retry"
	"repro/internal/simnet"
	"repro/internal/tso"
	"repro/internal/txn"
	"repro/internal/vector"
)

// OracleKind selects the timestamp scheme.
type OracleKind string

// Timestamp schemes.
const (
	OracleHLC OracleKind = "hlc-si"
	OracleTSO OracleKind = "tso-si"
)

// Config sizes a cluster.
type Config struct {
	// DCs is the number of datacenters (default 1; the paper's cross-DC
	// evaluation uses 3).
	DCs int
	// CNsPerDC computation nodes per datacenter (default 2).
	CNsPerDC int
	// DNGroups shard groups; each holds 1/DNGroups of every table's
	// shards (default 2).
	DNGroups int
	// MultiDC replicates each DN group across all DCs via Paxos; the
	// group leaders are spread round-robin across DCs.
	MultiDC bool
	// ROsPerDN read-only replicas attached to each DN group leader.
	ROsPerDN int
	// Oracle selects HLC-SI (default) or TSO-SI. The TSO server lives in
	// DC1, so CNs in other DCs pay cross-DC trips for timestamps.
	Oracle OracleKind
	// Topology is the network latency model (default ZeroTopology for
	// tests; benches use DefaultTopology).
	Topology *simnet.Topology
	// DefaultShards per table when CREATE TABLE has no PARTITIONS clause.
	DefaultShards int
	// SchedulerCfg tunes each CN's local scheduler.
	SchedulerCfg htap.Config
	// TPCostThreshold overrides the optimizer's TP/AP boundary.
	TPCostThreshold float64
	// IsolationOff disables the CN resource isolation (Fig. 9 config 1):
	// AP queries run in the TP pool, contending freely.
	IsolationOff bool
	// MPPOff disables multi-CN fragment execution (Fig. 10 baseline).
	MPPOff bool
	// VectorizedOff disables the batch (vectorized) execution engine: AP
	// plans fall back to row-at-a-time operators — the pre-batch behavior,
	// kept for equivalence tests and as a benchmark baseline.
	VectorizedOff bool
	// DNServiceRate models each DN node's compute capacity in work
	// tokens per second (0 = unlimited). Every RW and RO node gets its
	// own bucket, so read capacity scales with replica count (Fig. 9b).
	DNServiceRate float64
	// WithPolarFS provisions chunk servers and volumes (page-flush I/O).
	WithPolarFS bool
	// NoBatch disables the CN fast path (per-DN batched multi-gets,
	// batched DML writes, parallel multi-shard TP scans), falling back to
	// one RPC per key/row/shard — the pre-fast-path behavior, kept for
	// equivalence tests and as a benchmark baseline.
	NoBatch bool
	// PlanCacheOff disables the CN's fingerprinted plan cache: every
	// statement pays the full optimizer pipeline (benchmark baseline).
	PlanCacheOff bool
	// CompressionOff disables the compression stack cluster-wide: column
	// indexes store raw vectors, Paxos log frames ship uncompressed, and
	// PolarFS replication payloads move at their logical size — the exact
	// pre-compression behavior, kept for equivalence tests and as a
	// benchmark baseline. Compression is on by default.
	CompressionOff bool
	// FaultPlan scripts network chaos (per-link drops, duplication,
	// jitter, call deadlines) onto the cluster fabric from the moment it
	// is built. Tests and examples use it with a fixed Seed for
	// reproducible fault schedules; nil runs a clean network.
	FaultPlan *simnet.FaultPlan
	// InDoubtTimeout is how long a DN branch may sit PREPARED before
	// in-doubt resolution consults its primary branch (plumbed into
	// dn.Config.InDoubtAfter). The default is generous (2s, like the
	// election timeout) because benchmark clusters run heavy goroutine
	// load on one host; chaos tests pass something much smaller.
	InDoubtTimeout time.Duration
	// RecoveryInterval paces the cluster's background recovery loop,
	// which heals DN leader routing and sweeps in-doubt transaction
	// branches (default 500ms).
	RecoveryInterval time.Duration
	// Tracing enables per-statement span traces: every Session.Execute
	// builds a span tree (plan, per-DN RPCs, 2PC phases) retrievable via
	// Result.Trace / Session.LastTrace. Off by default — the benchmark
	// paths must not pay for span bookkeeping.
	Tracing bool
	// Metrics enables the cluster metrics registry: RPC latency by link
	// class, plan-cache hit/miss, txn outcomes, Paxos quorum waits. Off by
	// default for the same reason as Tracing.
	Metrics bool
	// GroupCommitWindow tunes the DN leaders' group-commit accumulation
	// window (0 = dn.DefaultGroupCommitWindow; negative disables group
	// commit — the per-MTR flush ablation).
	GroupCommitWindow time.Duration
	// DNFlushDelay models the latency of one DN redo flush to PolarFS
	// (default 0: free).
	DNFlushDelay time.Duration
	// SlowQueryThreshold, when > 0, logs statements whose wall time meets
	// it to the cluster slow-query log (and OnSlowQuery, if set).
	SlowQueryThreshold time.Duration
	// OnSlowQuery, when non-nil, is invoked synchronously for each slow
	// statement in addition to the in-memory log.
	OnSlowQuery func(sql string, d time.Duration)
	// Autopilot, when non-nil, starts the closed-loop elastic controller:
	// it watches shard-load windows, migrates hot shards between DN
	// groups online, and verifies convergence (internal/autopilot). With
	// Interval 0 the controller is built but only tests tick it.
	Autopilot *autopilot.Config
	// StatementTimeout bounds each statement's wall time end to end: the
	// deadline is set at Session.Execute, rides every branch RPC as
	// metadata, and unparks 2PC durability waits, Paxos commit waiters
	// and batch-exchange parks when it expires. 0 (the default) disables
	// deadlines entirely — the legacy unbounded path, byte for byte.
	// Sessions can override per session with SetStatementTimeout.
	StatementTimeout time.Duration
	// Admission, when non-nil with MaxConcurrent > 0, enables per-CN
	// admission control: a bounded execution semaphore with priority
	// classes (TP auto-commit > TP in-txn > AP), per-tenant quotas,
	// queue-wait shedding (retryable ErrOverloaded) and AP brownout.
	// Nil (the default) keeps the unguarded legacy execution path.
	Admission *admission.Config
}

func (c Config) withDefaults() Config {
	if c.DCs <= 0 {
		c.DCs = 1
	}
	if c.CNsPerDC <= 0 {
		c.CNsPerDC = 2
	}
	if c.DNGroups <= 0 {
		c.DNGroups = 2
	}
	if c.Oracle == "" {
		c.Oracle = OracleHLC
	}
	if c.DefaultShards <= 0 {
		c.DefaultShards = 2 * c.DNGroups
	}
	if c.InDoubtTimeout <= 0 {
		c.InDoubtTimeout = 2 * time.Second
	}
	if c.RecoveryInterval <= 0 {
		c.RecoveryInterval = 500 * time.Millisecond
	}
	return c
}

// Cluster is a running PolarDB-X deployment.
type Cluster struct {
	cfg Config
	Net *simnet.Network
	GMS *gms.GMS
	FS  *polarfs.Cluster

	mu  sync.Mutex
	dns map[string]*dn.Instance // leader instances by group name
	// followers holds non-leader instances of multi-DC groups.
	followers map[string][]*dn.Instance
	cns       []*CN
	tsoServer *tso.Server
	// apRO tracks the next RO index per DN for AP round-robin.
	apRO map[string]int
	// apTargets lists RO names per DN enabled for AP serving; empty =
	// route AP to the RW leader (Fig. 9 configs 1-2).
	apTargets map[string][]string

	// colIdxEpoch versions cluster state that changes plan validity but
	// never touches the GMS catalog (AP replica targets, column indexes,
	// DN rerouting). planEpoch folds it into the schema epoch so CN
	// caches keyed by epoch see those changes too.
	colIdxEpoch atomic.Uint64

	// stopCh terminates the background recovery loop; recoveryRuns counts
	// completed sweeps (observability + test synchronization).
	stopCh       chan struct{}
	stopOnce     sync.Once
	recoveryRuns atomic.Uint64

	// migrator is the dedicated coordinator that shard migrations copy
	// data through — the same 2PC/replication path queries use, so chaos
	// faults exercise migration retry like any other traffic.
	migrator *txn.Coordinator
	// dnRetry holds the per-destination circuit breakers and retry
	// budgets shared by control-plane callers (shard migration sync):
	// one breaker per DN endpoint, so a dead DN costs one probe per
	// cooldown instead of a full retry ladder per call.
	dnRetry *retry.Group
	// ap is the elastic autopilot controller; nil unless Config.Autopilot.
	ap *autopilot.Controller

	// metrics is the cluster metrics registry; nil unless Config.Metrics.
	metrics *obs.Registry
	// slowMu guards the bounded in-memory slow-query log, kept as a ring:
	// slowQueries fills to slowQueryLogCap, then slowHead marks the oldest
	// entry and new entries overwrite in place. The earlier
	// shift-left-on-append version was O(cap) memmove per slow statement
	// under the log lock — with thousands of sessions crossing the
	// threshold at once (a jittered DN group), the log itself became a
	// contention wall.
	slowMu      sync.Mutex
	slowQueries []SlowQuery
	slowHead    int

	seq uint32
}

// SlowQuery is one slow-query log entry.
type SlowQuery struct {
	SQL      string
	Duration time.Duration
	CN       string
}

// slowQueryLogCap bounds the in-memory slow-query log; older entries are
// dropped first.
const slowQueryLogCap = 256

// noteSlowQuery records a statement that crossed the slow threshold.
func (c *Cluster) noteSlowQuery(query string, d time.Duration, cnName string) {
	entry := SlowQuery{SQL: query, Duration: d, CN: cnName}
	c.slowMu.Lock()
	if len(c.slowQueries) < slowQueryLogCap {
		c.slowQueries = append(c.slowQueries, entry)
	} else {
		// Full: overwrite the oldest slot and advance the ring head.
		c.slowQueries[c.slowHead] = entry
		c.slowHead = (c.slowHead + 1) % slowQueryLogCap
	}
	c.slowMu.Unlock()
	if fn := c.cfg.OnSlowQuery; fn != nil {
		fn(query, d)
	}
}

// SlowQueries returns a copy of the slow-query log, oldest first.
func (c *Cluster) SlowQueries() []SlowQuery {
	c.slowMu.Lock()
	defer c.slowMu.Unlock()
	out := make([]SlowQuery, 0, len(c.slowQueries))
	out = append(out, c.slowQueries[c.slowHead:]...)
	out = append(out, c.slowQueries[:c.slowHead]...)
	return out
}

// Metrics exposes the cluster registry (nil unless Config.Metrics).
func (c *Cluster) Metrics() *obs.Registry { return c.metrics }

// MetricsSnapshot renders every cluster metric as text: the registry
// (RPC latency, txn outcomes, quorum waits), per-CN plan-cache
// counters, and the process-wide batch-pool and exchange-wait stats.
// Lines are globally sorted by key, so two snapshots diff cleanly —
// convergence tests and humans rely on the deterministic order.
func (c *Cluster) MetricsSnapshot() string {
	var lines []string
	if c.metrics != nil {
		if snap := c.metrics.Snapshot(); snap != "" {
			lines = strings.Split(strings.TrimRight(snap, "\n"), "\n")
		}
	}
	var hits, misses uint64
	for _, cn := range c.CNs() {
		h, m := cn.PlanCacheStats()
		hits += h
		misses += m
	}
	lines = append(lines,
		fmt.Sprintf("plancache.hits %d", hits),
		fmt.Sprintf("plancache.misses %d", misses))
	gets, puts, dbl := vector.PoolStats()
	lines = append(lines,
		fmt.Sprintf("vector.pool_gets %d", gets),
		fmt.Sprintf("vector.pool_puts %d", puts),
		fmt.Sprintf("vector.pool_double_releases %d", dbl))
	waits, total := executor.ExchangeWaitStats()
	lines = append(lines,
		fmt.Sprintf("executor.exchange_waits %d", waits),
		fmt.Sprintf("executor.exchange_wait_total %v", total))
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// planEpoch is the version CN plan and routing caches key on: any DDL
// (schema epoch) or routing/column-index change (colIdxEpoch) moves it.
func (c *Cluster) planEpoch() uint64 {
	return c.GMS.SchemaEpoch() + c.colIdxEpoch.Load()
}

// NewCluster builds and starts a cluster.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	topo := simnet.ZeroTopology()
	if cfg.Topology != nil {
		topo = *cfg.Topology
	}
	c := &Cluster{
		cfg:       cfg,
		Net:       simnet.New(topo),
		GMS:       gms.New(),
		dns:       make(map[string]*dn.Instance),
		followers: make(map[string][]*dn.Instance),
		apRO:      make(map[string]int),
		apTargets: make(map[string][]string),
		stopCh:    make(chan struct{}),
	}
	if cfg.FaultPlan != nil {
		c.Net.ApplyFaultPlan(*cfg.FaultPlan)
	}
	if cfg.Metrics {
		c.metrics = obs.NewRegistry()
		c.Net.SetMetrics(&simnet.NetMetrics{
			IntraDC:     c.metrics.Histogram("rpc.intra_dc"),
			InterDC:     c.metrics.Histogram("rpc.inter_dc"),
			Calls:       c.metrics.Counter("rpc.calls"),
			Errors:      c.metrics.Counter("rpc.errors"),
			LateReplies: c.metrics.Counter("rpc.late_replies"),
		})
	}
	if cfg.WithPolarFS {
		c.FS = polarfs.NewCluster(c.Net, 0)
		if cfg.CompressionOff {
			c.FS.SetCompression(false)
		}
		for d := 0; d < cfg.DCs; d++ {
			for i := 0; i < 3; i++ {
				if _, err := c.FS.AddServer(fmt.Sprintf("sn-dc%d-%d", d+1, i), simnet.DC(d)); err != nil {
					return nil, err
				}
			}
		}
	}
	if cfg.Oracle == OracleTSO {
		c.tsoServer = tso.NewServer(c.Net, "tso", simnet.DC1)
	}
	// DN groups.
	for g := 0; g < cfg.DNGroups; g++ {
		if err := c.addDNGroup(g); err != nil {
			return nil, err
		}
	}
	// CNs.
	for d := 0; d < cfg.DCs; d++ {
		for i := 0; i < cfg.CNsPerDC; i++ {
			c.addCN(simnet.DC(d))
		}
	}
	// The migration coordinator: its own endpoint so chaos plans can
	// target (and crash) migrations independently of query traffic.
	c.Net.Register(migratorName, simnet.DC1, func(string, any) (any, error) { return nil, nil })
	var migOracle txn.Oracle
	if cfg.Oracle == OracleTSO {
		migOracle = txn.NewTSOOracle(tso.NewClient(c.Net, migratorName, "tso"))
	} else {
		migOracle = txn.NewHLCOracle(hlc.NewClock(nil))
	}
	c.migrator = txn.NewCoordinator(c.Net, migratorName, migOracle)
	c.dnRetry = retry.NewGroup(retry.BreakerConfig{
		Opened: c.metrics.Counter("breaker.open"),
		Probes: c.metrics.Counter("breaker.probes"),
	})
	if cfg.Autopilot != nil {
		c.ap = autopilot.New(*cfg.Autopilot, c.ElasticTarget(), c.metrics)
		c.ap.Start()
	}
	go c.recoveryLoop()
	return c, nil
}

// Autopilot returns the elastic controller (nil unless Config.Autopilot).
func (c *Cluster) Autopilot() *autopilot.Controller { return c.ap }

// addDNGroup provisions DN group g: one instance per DC in MultiDC mode
// (leader in DC g%DCs), else a single instance.
func (c *Cluster) addDNGroup(g int) error {
	group := fmt.Sprintf("dng%d", g)
	leaderDC := simnet.DC(g % c.cfg.DCs)
	var members []paxos.Member
	if c.cfg.MultiDC {
		for d := 0; d < c.cfg.DCs; d++ {
			members = append(members, paxos.Member{
				Name: fmt.Sprintf("%s-dc%d", group, d+1), DC: simnet.DC(d)})
		}
	} else {
		members = []paxos.Member{{Name: group + "-a", DC: leaderDC}}
	}
	leaderIdx := 0
	if c.cfg.MultiDC {
		leaderIdx = int(leaderDC) // the member living in the leader DC
	}
	var leader *dn.Instance
	for idx, m := range members {
		var vol *polarfs.Volume
		if c.FS != nil {
			v, err := c.FS.CreateVolume("vol-"+m.Name, m.DC)
			if err != nil {
				return err
			}
			vol = v
		}
		inst, err := dn.NewInstance(dn.Config{
			Name: m.Name, DC: m.DC, Net: c.Net,
			Group: group, Members: members,
			Bootstrap:   idx == leaderIdx,
			Volume:      vol,
			ServiceRate: c.cfg.DNServiceRate,
			// Benchmark clusters run heavy goroutine load on one host;
			// a generous election timeout keeps scheduler hiccups from
			// triggering spurious leader changes mid-experiment.
			ElectionTimeout:   2 * time.Second,
			InDoubtAfter:      c.cfg.InDoubtTimeout,
			GroupCommitWindow: c.cfg.GroupCommitWindow,
			FlushDelay:        c.cfg.DNFlushDelay,
			CompressionOff:    c.cfg.CompressionOff,
			Metrics:           c.metrics,
		})
		if err != nil {
			return err
		}
		if idx == leaderIdx {
			leader = inst
		} else {
			c.mu.Lock()
			c.followers[group] = append(c.followers[group], inst)
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	c.dns[group] = leader
	c.mu.Unlock()
	c.GMS.RegisterDN(leader.Name(), leader.DC())
	for r := 0; r < c.cfg.ROsPerDN; r++ {
		roName := fmt.Sprintf("%s-ro%d", leader.Name(), r+1)
		if _, err := leader.AddRO(roName); err != nil {
			return err
		}
		if err := c.GMS.RegisterRO(leader.Name(), roName); err != nil {
			return err
		}
	}
	return nil
}

// addCN provisions a computation node in a DC.
func (c *Cluster) addCN(dc simnet.DC) *CN {
	c.mu.Lock()
	c.seq++
	name := fmt.Sprintf("cn%d-dc%d", c.seq, int(dc)+1)
	c.mu.Unlock()
	c.Net.Register(name, dc, func(string, any) (any, error) { return nil, nil })

	var oracle txn.Oracle
	if c.cfg.Oracle == OracleTSO {
		oracle = txn.NewTSOOracle(tso.NewClient(c.Net, name, "tso"))
	} else {
		oracle = txn.NewHLCOracle(hlc.NewClock(nil))
	}
	cn := &CN{
		name:    name,
		dc:      dc,
		cluster: c,
		coord:   txn.NewCoordinator(c.Net, name, oracle),
		sched:   htap.NewScheduler(c.cfg.SchedulerCfg),
	}
	if !c.cfg.PlanCacheOff {
		cn.planCache = optimizer.NewPlanCache(0)
	}
	if c.metrics != nil {
		cn.coord.SetMetrics(c.metrics)
		cn.mPCHit = c.metrics.Counter("plancache.hit")
		cn.mPCMiss = c.metrics.Counter("plancache.miss")
	}
	// Registry.Counter/Histogram are nil-safe, so the instruments exist
	// (as no-ops) even with metrics off; every CN shares the cluster's
	// counters so MetricsSnapshot sees fleet-wide admission totals.
	cn.admMetrics = admission.Metrics{
		Admitted:         c.metrics.Counter("admission.admitted"),
		Shed:             c.metrics.Counter("admission.shed"),
		Brownout:         c.metrics.Counter("admission.brownout"),
		DeadlineExceeded: c.metrics.Counter("deadline.exceeded"),
		QueueWait:        c.metrics.Histogram("admission.queue_wait"),
	}
	if ac := c.cfg.Admission; ac != nil && ac.MaxConcurrent > 0 {
		cn.admit = admission.New(*ac, cn.admMetrics)
	}
	cn.opt = optimizer.New(c.GMS, statsAdapter{c}, optimizer.Options{
		TPCostThreshold: c.cfg.TPCostThreshold,
		MPPAvailable:    !c.cfg.MPPOff,
		BatchAvailable:  !c.cfg.VectorizedOff,
		HasColumnIndex:  cn.hasColumnIndex,
	})
	c.mu.Lock()
	c.cns = append(c.cns, cn)
	c.mu.Unlock()
	c.GMS.RegisterCN(name, dc)
	return cn
}

// AddCN scales the CN tier at runtime (stateless, §II-A).
func (c *Cluster) AddCN(dc simnet.DC) *CN { return c.addCN(dc) }

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
	if c.ap != nil {
		c.ap.Stop()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cn := range c.cns {
		cn.sched.Stop()
	}
	for _, inst := range c.dns {
		inst.Stop()
	}
	for _, fs := range c.followers {
		for _, inst := range fs {
			inst.Stop()
		}
	}
}

// CN returns a computation node, preferring the caller's datacenter —
// the load balancer's locality policy (§II-A). With no CN in the DC, any
// CN is returned (cross-DC failover).
func (c *Cluster) CN(dc simnet.DC) *CN {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cn := range c.cns {
		if cn.dc == dc {
			return cn
		}
	}
	return c.cns[0]
}

// CNs lists all computation nodes.
func (c *Cluster) CNs() []*CN {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*CN(nil), c.cns...)
}

// DNGroup resolves a DN group's leader instance.
func (c *Cluster) DNGroup(name string) (*dn.Instance, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	inst, ok := c.dns[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown DN group %q", name)
	}
	return inst, nil
}

// RerouteDNGroup re-resolves a DN group's leader after a failover and
// repoints all GMS shard placements at it: the paper's §II-A flow where
// "if the leader node crashes, a follower will be elected as the new
// leader ... GMS detects the change and updates routing". It waits
// (bounded) for the group's election to settle, swaps the cluster's
// leader handle, rewrites placement via GMS.ReplaceDN, and re-attaches
// fresh read-only replicas to the new leader. Returns the new leader's
// name (which may be the old one if leadership healed in place).
func (c *Cluster) RerouteDNGroup(group string) (string, error) {
	c.mu.Lock()
	old := c.dns[group]
	cands := append([]*dn.Instance(nil), c.followers[group]...)
	c.mu.Unlock()
	if old == nil {
		return "", fmt.Errorf("core: unknown DN group %q", group)
	}
	var leader *dn.Instance
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if old.Paxos().HoldsLease() && !c.Net.IsDown(old.Name()) {
			return old.Name(), nil // healed in place; routing is already right
		}
		for _, f := range cands {
			// The new leader must hold the lease AND have applied the
			// log prefix it accepted as a follower, or early reads
			// would miss the previous leader's final commits.
			if f.Paxos().HoldsLease() && f.Paxos().LeaderCaughtUp() {
				leader = f
				break
			}
		}
		if leader != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if leader == nil {
		return "", fmt.Errorf("core: DN group %q has no live leader", group)
	}
	c.mu.Lock()
	c.dns[group] = leader
	rest := make([]*dn.Instance, 0, len(cands))
	for _, f := range cands {
		if f != leader {
			rest = append(rest, f)
		}
	}
	c.followers[group] = append(rest, old)
	delete(c.apTargets, old.Name())
	c.mu.Unlock()
	c.colIdxEpoch.Add(1) // routing moved: cached plans/colindex answers stale
	if err := c.GMS.ReplaceDN(old.Name(), leader.Name(), leader.DC()); err != nil {
		return "", err
	}
	// Attach fresh ROs to the new leader (the old leader's replicas fed
	// off its redo stream and die with it). Skip if this instance led
	// before and still owns replicas.
	if len(leader.ROs()) == 0 {
		for r := 0; r < c.cfg.ROsPerDN; r++ {
			roName := fmt.Sprintf("%s-ro%d", leader.Name(), r+1)
			if _, err := leader.AddRO(roName); err != nil {
				return "", err
			}
			if err := c.GMS.RegisterRO(leader.Name(), roName); err != nil {
				return "", err
			}
		}
	}
	return leader.Name(), nil
}

// HealDNRouting scans every multi-node DN group and re-routes the ones
// whose registered leader no longer holds the Paxos lease. This is the
// GMS health-check loop, exposed as a method so tests and the retry
// path can invoke it deterministically. It returns the groups that were
// re-routed.
func (c *Cluster) HealDNRouting() []string {
	c.mu.Lock()
	type probe struct {
		group  string
		leader *dn.Instance
		multi  bool
	}
	probes := make([]probe, 0, len(c.dns))
	for g, inst := range c.dns {
		probes = append(probes, probe{g, inst, len(c.followers[g]) > 0})
	}
	c.mu.Unlock()
	var healed []string
	for _, p := range probes {
		if !p.multi {
			continue
		}
		// A crashed node can still believe its (time-based) lease is
		// valid; the network view breaks the tie, like GMS's heartbeat
		// probe would.
		if p.leader.Paxos().HoldsLease() && !c.Net.IsDown(p.leader.Name()) {
			continue
		}
		if _, err := c.RerouteDNGroup(p.group); err == nil {
			healed = append(healed, p.group)
		}
	}
	sort.Strings(healed)
	return healed
}

// FailDNLeader simulates a crash of a group's current leader (network
// isolation, as a DC power loss would look to the rest of the cluster)
// and returns the downed instance's name.
func (c *Cluster) FailDNLeader(group string) (string, error) {
	c.mu.Lock()
	inst := c.dns[group]
	c.mu.Unlock()
	if inst == nil {
		return "", fmt.Errorf("core: unknown DN group %q", group)
	}
	c.Net.SetDown(inst.Name(), true)
	c.Net.SetDown(inst.Paxos().Endpoint(), true)
	for _, ro := range inst.ROs() {
		c.Net.SetDown(ro.Name(), true)
	}
	return inst.Name(), nil
}

// EnableAPReplicas marks n RO replicas per DN group as AP-serving
// targets (Fig. 9 configs 3-6: "we use one to four dedicated RO nodes
// respectively, and reroute the reads in TPC-H to them"). n = 0 routes
// AP back to the RW leader.
func (c *Cluster) EnableAPReplicas(n int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for group, inst := range c.dns {
		ros := inst.ROs()
		if n > len(ros) {
			return fmt.Errorf("core: DN %s has %d ROs, want %d", group, len(ros), n)
		}
		names := make([]string, 0, n)
		for i := 0; i < n; i++ {
			names = append(names, ros[i].Name())
		}
		c.apTargets[inst.Name()] = names
	}
	c.colIdxEpoch.Add(1)
	return nil
}

// EnableColumnIndexes builds in-memory column indexes for a logical
// table on every AP-serving RO replica.
func (c *Cluster) EnableColumnIndexes(table string) error {
	t, err := c.GMS.Table(table)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, inst := range c.dns {
		targets := c.apTargets[inst.Name()]
		if len(targets) == 0 {
			continue
		}
		targetSet := make(map[string]bool, len(targets))
		for _, n := range targets {
			targetSet[n] = true
		}
		for _, ro := range inst.ROs() {
			if !targetSet[ro.Name()] {
				continue
			}
			var ids []uint32
			for shard := 0; shard < t.Shards; shard++ {
				dnName, err := c.GMS.DNForShard(table, shard)
				if err == nil && dnName == inst.Name() {
					ids = append(ids, t.PhysicalTableID(shard))
				}
			}
			if len(ids) == 0 {
				continue
			}
			if err := ro.EnableColumnIndex(ids, 1); err != nil {
				return err
			}
		}
	}
	c.colIdxEpoch.Add(1)
	return nil
}

// statsAdapter exposes committed row counts to the optimizer by summing
// physical shard counts on the owning DNs.
type statsAdapter struct{ c *Cluster }

// RowCount implements optimizer.Stats.
func (s statsAdapter) RowCount(table string) int64 {
	t, err := s.c.GMS.Table(table)
	if err != nil {
		return 0
	}
	var total int64
	for shard := 0; shard < t.Shards; shard++ {
		dnName, err := s.c.GMS.DNForShard(table, shard)
		if err != nil {
			continue
		}
		s.c.mu.Lock()
		var inst *dn.Instance
		for _, i := range s.c.dns {
			if i.Name() == dnName {
				inst = i
				break
			}
		}
		s.c.mu.Unlock()
		if inst == nil {
			continue
		}
		if tbl, err := inst.Engine().Table(t.PhysicalTableID(shard)); err == nil {
			total += tbl.RowCount()
		}
	}
	return total
}

// errUnsupported wraps statement-dispatch misses.
var errUnsupported = errors.New("core: unsupported statement")

// waitConverged blocks until every DN group's ROs have applied redo up
// to the group's current DLSN (test/bench helper).
func (c *Cluster) WaitROConvergence(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		lagging := false
		c.mu.Lock()
		for _, inst := range c.dns {
			dlsn := inst.Paxos().DLSN()
			for _, ro := range inst.ROs() {
				if ro.AppliedLSN() < dlsn {
					lagging = true
				}
			}
		}
		c.mu.Unlock()
		if !lagging {
			return nil
		}
		if time.Now().After(deadline) {
			return errors.New("core: RO convergence timeout")
		}
		time.Sleep(time.Millisecond)
	}
}
