package core

import (
	"fmt"

	"repro/internal/advisor"
	"repro/internal/gms"
	"repro/internal/hotspot"
	"repro/internal/mt"
	"repro/internal/simnet"
)

// This file wires the §VIII DBA/developer features into the cluster
// surface: index recommendation, anti-hotspot planning and automated
// traffic control.

// Advise runs the SQL Advisor over a query workload against the
// cluster's live catalog and statistics.
func (cn *CN) Advise(queries []string, opts advisor.Options) (advisor.Recommendation, error) {
	adv := advisor.New(cn.cluster.GMS, statsAdapter{cn.cluster}, opts)
	return adv.Analyze(queries)
}

// HotShardPlan inspects a table's observed per-shard load and returns
// mitigation actions (migrate moderate outliers, split extreme ones).
func (c *Cluster) HotShardPlan(table string, factor float64) ([]hotspot.ShardAction, error) {
	if _, err := c.GMS.Table(table); err != nil {
		return nil, err
	}
	return hotspot.PlanShards(c.GMS.ShardLoad(table), factor), nil
}

// RebalancePlan exposes GMS's load-balancing plan (partition-group moves
// onto under-loaded DNs, e.g. after registering new ones).
func (c *Cluster) RebalancePlan() []gms.MigrationStep {
	return c.GMS.PlanRebalance()
}

// EnableTrafficControl attaches an automated traffic controller to every
// CN: each statement is fingerprinted into a SQL class and metered;
// classes whose rate spikes far above their learned baseline get their
// concurrency clamped (§VIII, Automated Traffic Control).
func (c *Cluster) EnableTrafficControl() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, cn := range c.cns {
		cn.traffic = hotspot.NewController()
	}
}

// ErrThrottled is returned when traffic control rejects a statement of
// an anomalous class.
var ErrThrottled = fmt.Errorf("core: statement throttled by traffic control")

// TenantCluster builds a PolarDB-MT cluster sharing this cluster's
// network fabric — the §V substrate for SaaS multi-tenancy and the
// Fig. 8 scaling path. (PolarDB-MT instances are a deployment variant
// of the DN layer; they are managed side by side with sharded tables.)
func (c *Cluster) TenantCluster() *mt.Cluster {
	return mt.NewCluster(c.Net)
}

// DCOf is a convenience for examples: the DC of a named endpoint.
func (c *Cluster) DCOf(name string) (simnet.DC, bool) { return c.Net.DCOf(name) }
