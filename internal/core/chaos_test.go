package core

// Cluster-level chaos tests: the fault-injection fabric driven through
// Config.FaultPlan and the background recovery loop. The txn package
// proves the 2PC crash windows at the protocol level; these tests prove
// the full stack — SQL in, CN coordinator crashed mid-commit, GMS-driven
// recovery loop (leader-aware routing included) settling the branches
// with no manual intervention.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/dn"
	"repro/internal/simnet"
)

// totalInDoubt sums undecided 2PC branches across every live instance.
func totalInDoubt(c *Cluster) int {
	c.mu.Lock()
	insts := make([]*dn.Instance, 0, len(c.dns))
	for _, inst := range c.dns {
		insts = append(insts, inst)
	}
	for _, fs := range c.followers {
		insts = append(insts, fs...)
	}
	c.mu.Unlock()
	n := 0
	for _, inst := range insts {
		if c.Net.IsDown(inst.Name()) {
			continue
		}
		n += inst.InDoubtBranches()
	}
	return n
}

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// otherSession returns a session on a CN different from avoid (whose
// endpoint is crashed in these tests).
func otherSession(t *testing.T, c *Cluster, avoid string) *Session {
	t.Helper()
	for _, cn := range c.CNs() {
		if cn.name != avoid {
			return cn.NewSession()
		}
	}
	t.Fatalf("no CN other than %s", avoid)
	return nil
}

func countRows(t *testing.T, s *Session, table string) int64 {
	t.Helper()
	res, err := s.Execute("SELECT COUNT(*) FROM " + table)
	if err != nil {
		t.Fatalf("count: %v", err)
	}
	return res.Rows[0][0].AsInt()
}

// The CN dies right after shipping the commit-point record of a
// multi-group INSERT. The background recovery loop alone must commit the
// remaining PREPARED branches — every row becomes visible, no branch
// stays in doubt.
func TestChaosCoordinatorCrashAfterCommitPoint(t *testing.T) {
	c := newTestCluster(t, Config{DNGroups: 2,
		InDoubtTimeout: 50 * time.Millisecond, RecoveryInterval: 25 * time.Millisecond})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, `CREATE TABLE pairs (id BIGINT, v BIGINT, PRIMARY KEY(id)) PARTITIONS 4`)

	cnName := s.cn.name
	c.Net.CrashAfterSend(cnName, func(to string, msg any) bool {
		cr, ok := msg.(dn.CommitReq)
		return ok && cr.CommitPoint
	})
	// Eight rows over four shards on two groups: guaranteed 2PC.
	if _, err := s.Execute(`INSERT INTO pairs (id, v) VALUES (0,1),(1,1),(2,1),(3,1),(4,1),(5,1),(6,1),(7,1)`); err == nil {
		t.Fatal("INSERT succeeded despite the coordinator crashing mid-commit")
	}

	s2 := otherSession(t, c, cnName)
	waitCond(t, 5*time.Second, "recovery loop to commit the branches", func() bool {
		return countRows(t, s2, "pairs") == 8 && totalInDoubt(c) == 0
	})
}

// Same crash, one protocol step earlier: the CN dies while fanning out
// PREPARE, before any commit point exists. Presumed abort — recovery must
// leave the table exactly as it was.
func TestChaosCoordinatorCrashBeforeCommitPoint(t *testing.T) {
	c := newTestCluster(t, Config{DNGroups: 2,
		InDoubtTimeout: 50 * time.Millisecond, RecoveryInterval: 25 * time.Millisecond})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, `CREATE TABLE pairs (id BIGINT, v BIGINT, PRIMARY KEY(id)) PARTITIONS 4`)
	mustExec(t, s, `INSERT INTO pairs (id, v) VALUES (100,9),(101,9),(102,9),(103,9)`)

	cnName := s.cn.name
	c.Net.CrashAfterSend(cnName, func(to string, msg any) bool {
		_, ok := msg.(dn.PrepareReq)
		return ok
	})
	if _, err := s.Execute(`INSERT INTO pairs (id, v) VALUES (0,1),(1,1),(2,1),(3,1),(4,1),(5,1),(6,1),(7,1)`); err == nil {
		t.Fatal("INSERT succeeded despite the coordinator crashing in prepare")
	}

	s2 := otherSession(t, c, cnName)
	waitCond(t, 5*time.Second, "recovery loop to abort the branches", func() bool {
		return totalInDoubt(c) == 0
	})
	if n := countRows(t, s2, "pairs"); n != 4 {
		t.Fatalf("row count after presumed abort = %d, want the 4 seed rows only", n)
	}
}

// The hardest window: the CN crashes after the commit point AND the
// primary group's leader dies before anyone resolves. The new leader
// inherits the commit point through Paxos replay, the recovery loop
// re-routes resolution to it (the prepare records name the dead
// instance), and every branch still commits.
func TestChaosPrimaryFailoverResolvesInheritedBranches(t *testing.T) {
	if testing.Short() {
		t.Skip("waits for a real election timeout")
	}
	c := newTestCluster(t, Config{DCs: 3, MultiDC: true, DNGroups: 2,
		InDoubtTimeout: 50 * time.Millisecond, RecoveryInterval: 25 * time.Millisecond})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, `CREATE TABLE pairs (id BIGINT, v BIGINT, PRIMARY KEY(id)) PARTITIONS 4`)

	cnName := s.cn.name
	c.Net.CrashAfterSend(cnName, func(to string, msg any) bool {
		cr, ok := msg.(dn.CommitReq)
		return ok && cr.CommitPoint
	})
	if _, err := s.Execute(`INSERT INTO pairs (id, v) VALUES (0,1),(1,1),(2,1),(3,1),(4,1),(5,1),(6,1),(7,1)`); err == nil {
		t.Fatal("INSERT succeeded despite the coordinator crashing mid-commit")
	}

	// The primary group handled the commit point and committed its branch
	// (zero in-doubt); the other group is stuck PREPARED. Kill the
	// primary group's leader before resolution runs.
	primaryGroup := ""
	for _, g := range []string{"dng0", "dng1"} {
		inst, err := c.DNGroup(g)
		if err != nil {
			t.Fatal(err)
		}
		if inst.InDoubtBranches() == 0 {
			primaryGroup = g
		}
	}
	if primaryGroup == "" {
		t.Fatal("no group committed its branch; commit point never landed")
	}
	if _, err := c.FailDNLeader(primaryGroup); err != nil {
		t.Fatal(err)
	}

	// Recovery must: re-elect + re-route the primary group, then resolve
	// the surviving group's branch against the NEW leader's replayed
	// commit point.
	s2 := otherSession(t, c, cnName)
	waitCond(t, 20*time.Second, "failover + inherited-branch resolution", func() bool {
		return totalInDoubt(c) == 0 && countRows(t, s2, "pairs") == 8
	})
}

// Seeded soak: every link drops and duplicates a few percent of messages
// while multi-shard transactions run. The invariant is atomicity, not
// success: each statement's row pair must be all-present or all-absent
// once faults stop and recovery drains the in-doubt set.
func TestChaosSeededFaultSoakPreservesAtomicity(t *testing.T) {
	c := newTestCluster(t, Config{DNGroups: 2,
		InDoubtTimeout: 100 * time.Millisecond, RecoveryInterval: 50 * time.Millisecond,
		FaultPlan: &simnet.FaultPlan{
			Seed:        42,
			Default:     simnet.LinkFaults{Drop: 0.03, Dup: 0.03},
			CallTimeout: 300 * time.Millisecond,
		}})
	s := c.CN(simnet.DC1).NewSession()

	// DDL under faults may fail transiently; retry until it lands.
	var err error
	for try := 0; try < 20; try++ {
		if _, err = s.Execute(`CREATE TABLE soak (id BIGINT, v BIGINT, PRIMARY KEY(id)) PARTITIONS 4`); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("CREATE TABLE never succeeded: %v", err)
	}

	const stmts = 40
	for i := 0; i < stmts; i++ {
		// Each statement writes a pair (i, i+1000); ids spread over all
		// four shards, so many pairs span both DN groups.
		_, _ = s.Execute(fmt.Sprintf("INSERT INTO soak (id, v) VALUES (%d, 1), (%d, 1)", i, i+1000))
	}

	// Stop the chaos, let recovery settle everything.
	c.Net.ClearFaults()
	waitCond(t, 10*time.Second, "in-doubt branches to drain", func() bool {
		c.RecoverInDoubt()
		return totalInDoubt(c) == 0
	})

	res, err := s.Execute("SELECT id FROM soak")
	if err != nil {
		t.Fatalf("verification scan: %v", err)
	}
	present := make(map[int64]bool, len(res.Rows))
	for _, row := range res.Rows {
		present[row[0].AsInt()] = true
	}
	committed := 0
	for i := int64(0); i < stmts; i++ {
		if present[i] != present[i+1000] {
			t.Fatalf("statement %d is torn: id %d present=%v, id %d present=%v",
				i, i, present[i], i+1000, present[i+1000])
		}
		if present[i] {
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("soak committed nothing; faults are drowning the protocol")
	}
	t.Logf("soak: %d/%d statements committed atomically", committed, stmts)
}
