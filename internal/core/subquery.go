package core

import (
	"fmt"
	"strings"

	"repro/internal/sql"
	"repro/internal/types"
)

// maxInSubqueryRows bounds IN-subquery materialization; beyond this the
// rewritten IN list would dominate planning time and memory.
const maxInSubqueryRows = 100_000

// rewriteSubqueries replaces every uncorrelated subquery in the
// expression with the literals its execution produced: scalar subqueries
// become a single literal, IN-subqueries become an IN list. This is
// CN-side subquery unnesting — the subquery runs as an ordinary
// distributed query (possibly MPP) before the outer statement plans.
// Correlated subqueries fail inside the inner execution when their
// free column references do not bind.
func (s *Session) rewriteSubqueries(e sql.Expr) (sql.Expr, error) {
	if e == nil {
		return nil, nil
	}
	switch n := e.(type) {
	case *sql.Subquery:
		v, err := s.scalarSubquery(n)
		if err != nil {
			return nil, err
		}
		return &sql.Literal{Val: v}, nil
	case *sql.InList:
		if inner, err := s.rewriteSubqueries(n.E); err != nil {
			return nil, err
		} else {
			n.E = inner
		}
		if n.Sub == nil {
			for i, item := range n.Items {
				it, err := s.rewriteSubqueries(item)
				if err != nil {
					return nil, err
				}
				n.Items[i] = it
			}
			return n, nil
		}
		rows, err := s.subqueryRows(n.Sub)
		if err != nil {
			return nil, err
		}
		if len(rows) > maxInSubqueryRows {
			return nil, fmt.Errorf("core: IN subquery produced %d rows (limit %d)", len(rows), maxInSubqueryRows)
		}
		if len(rows) == 0 {
			// x IN (empty) is FALSE, x NOT IN (empty) is TRUE, for any x.
			return &sql.Literal{Val: types.Bool(n.Not)}, nil
		}
		items := make([]sql.Expr, len(rows))
		for i, r := range rows {
			items[i] = &sql.Literal{Val: r[0]}
		}
		n.Items, n.Sub = items, nil
		return n, nil
	case *sql.Exists:
		return s.rewriteExists(n)
	case *sql.BinaryOp:
		var err error
		if n.L, err = s.rewriteSubqueries(n.L); err != nil {
			return nil, err
		}
		if n.R, err = s.rewriteSubqueries(n.R); err != nil {
			return nil, err
		}
		return n, nil
	case *sql.UnaryOp:
		var err error
		if n.E, err = s.rewriteSubqueries(n.E); err != nil {
			return nil, err
		}
		return n, nil
	case *sql.Between:
		var err error
		if n.E, err = s.rewriteSubqueries(n.E); err != nil {
			return nil, err
		}
		if n.Lo, err = s.rewriteSubqueries(n.Lo); err != nil {
			return nil, err
		}
		if n.Hi, err = s.rewriteSubqueries(n.Hi); err != nil {
			return nil, err
		}
		return n, nil
	case *sql.IsNull:
		var err error
		if n.E, err = s.rewriteSubqueries(n.E); err != nil {
			return nil, err
		}
		return n, nil
	case *sql.CaseExpr:
		var err error
		for i := range n.Whens {
			if n.Whens[i].Cond, err = s.rewriteSubqueries(n.Whens[i].Cond); err != nil {
				return nil, err
			}
			if n.Whens[i].Result, err = s.rewriteSubqueries(n.Whens[i].Result); err != nil {
				return nil, err
			}
		}
		if n.Else, err = s.rewriteSubqueries(n.Else); err != nil {
			return nil, err
		}
		return n, nil
	case *sql.FuncCall:
		var err error
		for i := range n.Args {
			if n.Args[i], err = s.rewriteSubqueries(n.Args[i]); err != nil {
				return nil, err
			}
		}
		return n, nil
	default:
		return e, nil
	}
}

// rewriteExists unnests [NOT] EXISTS:
//
//   - fully uncorrelated: execute the inner SELECT and substitute the
//     boolean outcome;
//   - correlated through exactly one equality `inner.col = outer.col`
//     (the overwhelmingly common form — TPC-H Q4, Q22): rewrite to
//     `outer.col [NOT] IN (SELECT inner.col FROM ... WHERE <residual>)`,
//     which the IN-subquery path then executes;
//   - anything else (inequality correlation, multiple correlated
//     conjuncts) is reported unsupported.
func (s *Session) rewriteExists(ex *sql.Exists) (sql.Expr, error) {
	inner := ex.Sub.Sel
	local := s.subqueryScope(inner)
	var correlated []*sql.BinaryOp
	var residual []sql.Expr
	unsupported := false
	for _, c := range conjuncts(inner.Where) {
		refs := sql.ColumnRefs(c)
		outerRefs := 0
		for _, r := range refs {
			if !local(r) {
				outerRefs++
			}
		}
		if outerRefs == 0 {
			residual = append(residual, c)
			continue
		}
		b, ok := c.(*sql.BinaryOp)
		if !ok || b.Op != "=" || len(refs) != 2 || outerRefs != 1 {
			unsupported = true
			break
		}
		correlated = append(correlated, b)
	}
	switch {
	case unsupported || len(correlated) > 1:
		return nil, fmt.Errorf("core: unsupported correlated EXISTS (only a single equality correlation is handled)")
	case len(correlated) == 0:
		// Uncorrelated: the subquery's outcome is a constant.
		res, err := s.execSelect(inner)
		if err != nil {
			return nil, fmt.Errorf("core: EXISTS subquery: %w", err)
		}
		return &sql.Literal{Val: types.Bool((len(res.Rows) > 0) != ex.Not)}, nil
	}
	eq := correlated[0]
	innerCol, outerCol := eq.L, eq.R
	if c, ok := innerCol.(*sql.ColumnRef); !ok || !local(c) {
		innerCol, outerCol = outerCol, innerCol
	}
	rewritten := &sql.Select{
		Items: []sql.SelectItem{{Expr: innerCol}},
		From:  inner.From,
		Joins: inner.Joins,
		Where: andAll(residual),
		Limit: -1,
	}
	return s.rewriteSubqueries(&sql.InList{
		E:   outerCol,
		Sub: &sql.Subquery{Sel: rewritten},
		Not: ex.Not,
	})
}

// subqueryScope returns a predicate deciding whether a column reference
// binds inside the subquery's own FROM list (alias match, or bare name
// found in one of its tables' schemas).
func (s *Session) subqueryScope(sel *sql.Select) func(*sql.ColumnRef) bool {
	aliases := map[string]bool{}
	var tables []string
	add := func(tr sql.TableRef) {
		aliases[strings.ToLower(tr.AliasOrName())] = true
		tables = append(tables, tr.Name)
	}
	add(sel.From)
	for _, j := range sel.Joins {
		add(j.Table)
	}
	return func(c *sql.ColumnRef) bool {
		if c.Table != "" {
			return aliases[strings.ToLower(c.Table)]
		}
		for _, tn := range tables {
			if t, err := s.cn.cluster.GMS.Table(tn); err == nil &&
				t.Schema.ColIndex(c.Column) >= 0 {
				return true
			}
		}
		return false
	}
}

// conjuncts splits a WHERE tree on top-level ANDs.
func conjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.BinaryOp); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// andAll rebuilds a conjunction (nil for an empty set).
func andAll(cs []sql.Expr) sql.Expr {
	var out sql.Expr
	for _, c := range cs {
		if out == nil {
			out = c
		} else {
			out = &sql.BinaryOp{Op: "AND", L: out, R: c}
		}
	}
	return out
}

// scalarSubquery runs a subquery expected to produce one value: one
// column, at most one row (zero rows yield NULL, per SQL).
func (s *Session) scalarSubquery(sub *sql.Subquery) (types.Value, error) {
	rows, err := s.subqueryRows(sub)
	if err != nil {
		return types.Null(), err
	}
	switch len(rows) {
	case 0:
		return types.Null(), nil
	case 1:
		return rows[0][0], nil
	default:
		return types.Null(), fmt.Errorf("core: scalar subquery returned %d rows", len(rows))
	}
}

// subqueryRows executes an inner SELECT and checks it yields one column.
func (s *Session) subqueryRows(sub *sql.Subquery) ([]types.Row, error) {
	res, err := s.execSelect(sub.Sel)
	if err != nil {
		return nil, fmt.Errorf("core: subquery: %w", err)
	}
	if len(res.Columns) != 1 {
		return nil, fmt.Errorf("core: subquery selects %d columns, want 1", len(res.Columns))
	}
	return res.Rows, nil
}
