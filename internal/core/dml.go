package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/dn"
	"repro/internal/partition"
	"repro/internal/sql"
	"repro/internal/types"
)

// autoInc feeds implicit primary keys. One global sequence is enough for
// the simulation (GMS hosts sequences in production, §II-A).
var autoInc atomic.Int64

// execInsert evaluates row expressions, routes each row to its shard's
// DN, and maintains global secondary indexes in the same distributed
// transaction (§II-B: "the primary key index and related secondary
// indexes are updated in a single distributed transaction").
func (s *Session) execInsert(st *sql.Insert) (*Result, error) {
	t, err := s.cn.cluster.GMS.Table(st.Table)
	if err != nil {
		return nil, err
	}
	// Map the statement's column list to schema positions.
	colPos, err := insertColumnOrder(t, st.Columns)
	if err != nil {
		return nil, err
	}
	tx, done, err := s.txnFor()
	if err != nil {
		return nil, err
	}
	n, execErr := func() (int, error) {
		var batch *writeBatch
		if !s.cn.cluster.cfg.NoBatch {
			batch = newWriteBatch()
		}
		count := 0
		for _, exprRow := range st.Rows {
			if len(exprRow) != len(colPos) {
				return count, fmt.Errorf("core: INSERT arity %d, want %d", len(exprRow), len(colPos))
			}
			row := make(types.Row, len(t.Schema.Columns))
			for i, e := range exprRow {
				v, err := sql.Eval(e, nil)
				if err != nil {
					return count, err
				}
				row[colPos[i]] = v
			}
			if t.Schema.ImplicitPK {
				row[len(row)-1] = types.Int(autoInc.Add(1))
			}
			if batch != nil {
				if err := s.stageInsert(batch, t, row); err != nil {
					return count, err
				}
			} else if err := s.insertRow(tx, t, row); err != nil {
				return count, err
			}
			count++
		}
		if batch != nil {
			// One MultiWrite per touched DN carries the whole multi-row
			// INSERT including index maintenance.
			if err := batch.flush(tx); err != nil {
				return 0, err
			}
		}
		return count, nil
	}()
	if err := done(execErr); err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}

// insertRow routes one row plus its index rows.
func (s *Session) insertRow(tx txnLike, t *partition.Table, row types.Row) error {
	shard := t.ShardOfRow(row)
	dnName, err := s.cn.cluster.GMS.DNForShard(t.Name, shard)
	if err != nil {
		return err
	}
	if err := tx.Insert(dnName, t.PhysicalTableID(shard), row); err != nil {
		return err
	}
	s.cn.cluster.GMS.RecordLoad(t.Name, shard, 1)
	for _, gi := range t.Indexes {
		irow := gi.IndexRow(t, row)
		ishard := gi.ShardOfIndexRow(irow)
		idn, err := s.cn.cluster.GMS.DNForShard(t.Name, ishard)
		if err != nil {
			return err
		}
		if err := tx.Insert(idn, gi.PhysicalTableID(ishard), irow); err != nil {
			return err
		}
	}
	return nil
}

// txnLike abstracts txn.Tx for DML helpers.
type txnLike interface {
	Insert(dnName string, table uint32, row types.Row) error
	Update(dnName string, table uint32, row types.Row) error
	Delete(dnName string, table uint32, pk []byte) error
	Get(dnName string, table uint32, pk []byte) (types.Row, bool, error)
	Scan(dnName string, table uint32, index string, start, end []byte, limit int) ([]types.Row, error)
	MultiGet(dnName string, gets []dn.PointGet) ([]dn.ReadResp, error)
	MultiWrite(dnName string, writes []dn.WriteItem) error
}

// writeBatch accumulates one DML statement's mutations per DN so each
// touched DN receives a single MultiWrite RPC. Statement order is
// preserved within each DN — what matters for correctness, since two
// operations on the same key always route to the same DN (GSI
// delete-then-insert pairs stay ordered).
type writeBatch struct {
	order []string // first-staged DN order (deterministic fan-out)
	byDN  map[string][]dn.WriteItem
}

func newWriteBatch() *writeBatch {
	return &writeBatch{byDN: make(map[string][]dn.WriteItem)}
}

func (b *writeBatch) add(dnName string, item dn.WriteItem) {
	if _, ok := b.byDN[dnName]; !ok {
		b.order = append(b.order, dnName)
	}
	b.byDN[dnName] = append(b.byDN[dnName], item)
}

// flush issues one MultiWrite per DN, all DNs in parallel (the write
// analogue of the point-read fan-out). On error the statement fails and
// the caller's transaction handling aborts the branches, rolling back
// any partially applied batch.
func (b *writeBatch) flush(tx txnLike) error {
	switch len(b.order) {
	case 0:
		return nil
	case 1:
		return tx.MultiWrite(b.order[0], b.byDN[b.order[0]])
	}
	errs := make(chan error, len(b.order))
	for _, dnName := range b.order {
		go func(dnName string) { errs <- tx.MultiWrite(dnName, b.byDN[dnName]) }(dnName)
	}
	var firstErr error
	for range b.order {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// stageInsert stages one row plus its index rows into the batch
// (batched counterpart of insertRow).
func (s *Session) stageInsert(b *writeBatch, t *partition.Table, row types.Row) error {
	shard := t.ShardOfRow(row)
	dnName, err := s.cn.cluster.GMS.DNForShard(t.Name, shard)
	if err != nil {
		return err
	}
	b.add(dnName, dn.WriteItem{Table: t.PhysicalTableID(shard), Op: dn.OpInsert, Row: row})
	s.cn.cluster.GMS.RecordLoad(t.Name, shard, 1)
	for _, gi := range t.Indexes {
		irow := gi.IndexRow(t, row)
		ishard := gi.ShardOfIndexRow(irow)
		idn, err := s.cn.cluster.GMS.DNForShard(t.Name, ishard)
		if err != nil {
			return err
		}
		b.add(idn, dn.WriteItem{Table: gi.PhysicalTableID(ishard), Op: dn.OpInsert, Row: irow})
	}
	return nil
}

// insertColumnOrder maps an INSERT column list to schema positions.
func insertColumnOrder(t *partition.Table, cols []string) ([]int, error) {
	n := len(t.Schema.Columns)
	if t.Schema.ImplicitPK {
		n-- // hidden column is filled by the system
	}
	if len(cols) == 0 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	out := make([]int, len(cols))
	for i, c := range cols {
		idx := t.Schema.ColIndex(c)
		if idx < 0 {
			return nil, fmt.Errorf("core: unknown column %q in INSERT", c)
		}
		out[i] = idx
	}
	return out, nil
}

// matchRows finds the rows a WHERE clause selects: the PK fast path
// reads exactly the pinned rows; otherwise every shard is scanned with
// the filter pushed down.
func (s *Session) matchRows(tx txnLike, t *partition.Table, where sql.Expr) ([]types.Row, error) {
	filter, points, err := analyzeWhere(t, where)
	if err != nil {
		return nil, err
	}
	var out []types.Row
	if points != nil && !t.PartitionedByPK() {
		// Cannot infer shards from the PK; fall back to the scan path
		// with the whole WHERE re-attached as a filter.
		filter, points = where, nil
	}
	if points != nil {
		// Duplicate IN-list entries match a row once (MySQL semantics);
		// without dedup a DELETE would stage the same key twice and the
		// second delete would fail at the DN.
		seen := make(map[string]struct{}, len(points))
		uniq := points[:0]
		for _, pk := range points {
			if _, dup := seen[string(pk)]; dup {
				continue
			}
			seen[string(pk)] = struct{}{}
			uniq = append(uniq, pk)
		}
		points = uniq
	}
	if points != nil {
		results, err := s.pointGets(tx, t, points)
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			if !r.OK {
				continue
			}
			if filter != nil {
				v, err := sql.Eval(filter, r.Row)
				if err != nil {
					return nil, err
				}
				if !v.IsTruthy() {
					continue
				}
			}
			out = append(out, r.Row)
		}
		return out, nil
	}
	for shard := 0; shard < t.Shards; shard++ {
		dnName, err := s.cn.cluster.GMS.DNForShard(t.Name, shard)
		if err != nil {
			return nil, err
		}
		rows, err := s.scanShard(tx, dnName, t.PhysicalTableID(shard), filter)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// pointGets reads a set of PKs inside the transaction, returning one
// ReadResp per key in input order. Fast path: keys group by owning DN
// into one MultiGet each, all DNs in parallel; Config.NoBatch keeps the
// one-RPC-per-key baseline.
func (s *Session) pointGets(tx txnLike, t *partition.Table, points [][]byte) ([]dn.ReadResp, error) {
	results := make([]dn.ReadResp, len(points))
	if s.cn.cluster.cfg.NoBatch {
		for k, pk := range points {
			shard := t.ShardOfPK(pk)
			dnName, err := s.cn.cluster.GMS.DNForShard(t.Name, shard)
			if err != nil {
				return nil, err
			}
			row, ok, err := tx.Get(dnName, t.PhysicalTableID(shard), pk)
			if err != nil {
				return nil, err
			}
			results[k] = dn.ReadResp{Row: row, OK: ok}
		}
		return results, nil
	}
	groups := make(map[string]*pointGroup)
	var order []*pointGroup
	for k, pk := range points {
		shard := t.ShardOfPK(pk)
		dnName, err := s.cn.cluster.GMS.DNForShard(t.Name, shard)
		if err != nil {
			return nil, err
		}
		g := groups[dnName]
		if g == nil {
			g = &pointGroup{dn: dnName}
			groups[dnName] = g
			order = append(order, g)
		}
		g.gets = append(g.gets, dn.PointGet{Table: t.PhysicalTableID(shard), PK: pk})
		g.pos = append(g.pos, k)
	}
	fetch := func(g *pointGroup) error {
		rs, err := tx.MultiGet(g.dn, g.gets)
		if err != nil {
			return err
		}
		for i, r := range rs {
			results[g.pos[i]] = r
		}
		return nil
	}
	if len(order) == 1 {
		if err := fetch(order[0]); err != nil {
			return nil, err
		}
		return results, nil
	}
	errs := make(chan error, len(order))
	for _, g := range order {
		go func(g *pointGroup) { errs <- fetch(g) }(g)
	}
	var firstErr error
	for range order {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// scanShard runs a filtered shard scan inside the transaction.
func (s *Session) scanShard(tx txnLike, dnName string, physTable uint32, filter sql.Expr) ([]types.Row, error) {
	// The txnLike interface has no filter parameter; DN-side pushdown for
	// DML scans goes through the full Tx type.
	rows, err := tx.Scan(dnName, physTable, "", nil, nil, 0)
	if err != nil {
		return nil, err
	}
	if filter == nil {
		return rows, nil
	}
	var out []types.Row
	for _, row := range rows {
		v, err := sql.Eval(filter, row)
		if err != nil {
			return nil, err
		}
		if v.IsTruthy() {
			out = append(out, row)
		}
	}
	return out, nil
}

// analyzeWhere binds a WHERE clause to the schema layout and extracts
// full-PK point lookups. Returns (residual filter, point PKs).
func analyzeWhere(t *partition.Table, where sql.Expr) (sql.Expr, [][]byte, error) {
	if where == nil {
		return nil, nil, nil
	}
	// Bind columns to schema positions.
	var bindErr error
	sql.Walk(where, func(n sql.Expr) bool {
		if c, ok := n.(*sql.ColumnRef); ok {
			idx := t.Schema.ColIndex(c.Column)
			if idx < 0 {
				bindErr = fmt.Errorf("core: unknown column %q in %q", c.Column, t.Name)
				return false
			}
			if c.Table != "" && !strings.EqualFold(c.Table, t.Name) {
				bindErr = fmt.Errorf("core: qualifier %q does not match %q", c.Table, t.Name)
				return false
			}
			c.Index = idx
		}
		return true
	})
	if bindErr != nil {
		return nil, nil, bindErr
	}
	if len(t.Schema.PKCols) != 1 {
		// Composite PK: a conjunction of equality literals covering every
		// PK column pins one row. The whole WHERE stays as the residual
		// filter (re-checking the PK equalities on the fetched row is
		// cheap and keeps the rewrite trivially safe).
		eq := map[int]types.Value{}
		var collect func(e sql.Expr)
		collect = func(e sql.Expr) {
			b, ok := e.(*sql.BinaryOp)
			if !ok {
				return
			}
			if b.Op == "AND" {
				collect(b.L)
				collect(b.R)
				return
			}
			if b.Op != "=" {
				return
			}
			col, okc := b.L.(*sql.ColumnRef)
			lit, okl := b.R.(*sql.Literal)
			if !okc || !okl {
				col, okc = b.R.(*sql.ColumnRef)
				lit, okl = b.L.(*sql.Literal)
			}
			if okc && okl {
				eq[col.Index] = lit.Val
			}
		}
		collect(where)
		vals := make([]types.Value, 0, len(t.Schema.PKCols))
		for _, ci := range t.Schema.PKCols {
			v, ok := eq[ci]
			if !ok {
				return where, nil, nil
			}
			vals = append(vals, v)
		}
		return where, [][]byte{types.EncodeKey(nil, vals...)}, nil
	}
	pkIdx := t.Schema.PKCols[0]
	// Single top-level `pk = lit` or `pk IN (...)`, possibly ANDed with
	// residual conditions.
	var points [][]byte
	var strip func(e sql.Expr) sql.Expr
	strip = func(e sql.Expr) sql.Expr {
		switch n := e.(type) {
		case *sql.BinaryOp:
			if n.Op == "AND" {
				l := strip(n.L)
				r := strip(n.R)
				switch {
				case l == nil && r == nil:
					return nil
				case l == nil:
					return r
				case r == nil:
					return l
				default:
					return &sql.BinaryOp{Op: "AND", L: l, R: r}
				}
			}
			if n.Op == "=" && points == nil {
				if c, ok := n.L.(*sql.ColumnRef); ok && c.Index == pkIdx {
					if lit, ok := n.R.(*sql.Literal); ok {
						points = [][]byte{types.EncodeKey(nil, lit.Val)}
						return nil
					}
				}
				if c, ok := n.R.(*sql.ColumnRef); ok && c.Index == pkIdx {
					if lit, ok := n.L.(*sql.Literal); ok {
						points = [][]byte{types.EncodeKey(nil, lit.Val)}
						return nil
					}
				}
			}
			return e
		case *sql.InList:
			if points != nil || n.Not {
				return e
			}
			c, ok := n.E.(*sql.ColumnRef)
			if !ok || c.Index != pkIdx {
				return e
			}
			var pks [][]byte
			for _, item := range n.Items {
				lit, ok := item.(*sql.Literal)
				if !ok {
					return e
				}
				pks = append(pks, types.EncodeKey(nil, lit.Val))
			}
			points = pks
			return nil
		default:
			return e
		}
	}
	residual := strip(where)
	return residual, points, nil
}

// execUpdate applies SET assignments to matching rows, maintaining
// global indexes (delete old entry + insert new when indexed columns or
// coverage change).
func (s *Session) execUpdate(st *sql.Update) (*Result, error) {
	t, err := s.cn.cluster.GMS.Table(st.Table)
	if err != nil {
		return nil, err
	}
	if st.Where, err = s.rewriteSubqueries(st.Where); err != nil {
		return nil, err
	}
	// Bind SET expressions against the schema.
	sets := make([]struct {
		col int
		e   sql.Expr
	}, len(st.Sets))
	for i, a := range st.Sets {
		idx := t.Schema.ColIndex(a.Column)
		if idx < 0 {
			return nil, fmt.Errorf("core: unknown column %q", a.Column)
		}
		if containsPK(t, idx) {
			return nil, fmt.Errorf("core: updating primary key columns is not supported")
		}
		if err := bindToSchema(t, a.Value); err != nil {
			return nil, err
		}
		sets[i].col = idx
		sets[i].e = a.Value
	}
	tx, done, err := s.txnFor()
	if err != nil {
		return nil, err
	}
	n, execErr := func() (int, error) {
		rows, err := s.matchRows(tx, t, st.Where)
		if err != nil {
			return 0, err
		}
		var batch *writeBatch
		if !s.cn.cluster.cfg.NoBatch {
			batch = newWriteBatch()
		}
		for i, old := range rows {
			newRow := old.Clone()
			for _, a := range sets {
				v, err := sql.Eval(a.e, old)
				if err != nil {
					return i, err
				}
				newRow[a.col] = v
			}
			shard := t.ShardOfRow(newRow)
			dnName, err := s.cn.cluster.GMS.DNForShard(t.Name, shard)
			if err != nil {
				return i, err
			}
			if batch != nil {
				batch.add(dnName, dn.WriteItem{Table: t.PhysicalTableID(shard), Op: dn.OpUpdate, Row: newRow})
				if err := s.stageRefreshIndexes(batch, t, old, newRow); err != nil {
					return i, err
				}
				continue
			}
			if err := tx.Update(dnName, t.PhysicalTableID(shard), newRow); err != nil {
				return i, err
			}
			if err := s.refreshIndexes(tx, t, old, newRow); err != nil {
				return i, err
			}
		}
		if batch != nil {
			if err := batch.flush(tx); err != nil {
				return 0, err
			}
		}
		return len(rows), nil
	}()
	if err := done(execErr); err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}

func containsPK(t *partition.Table, col int) bool {
	for _, pk := range t.Schema.PKCols {
		if pk == col {
			return true
		}
	}
	return false
}

func bindToSchema(t *partition.Table, e sql.Expr) error {
	var bindErr error
	sql.Walk(e, func(n sql.Expr) bool {
		if c, ok := n.(*sql.ColumnRef); ok {
			idx := t.Schema.ColIndex(c.Column)
			if idx < 0 {
				bindErr = fmt.Errorf("core: unknown column %q", c.Column)
				return false
			}
			c.Index = idx
		}
		return true
	})
	return bindErr
}

// refreshIndexes maintains GSIs across an update.
func (s *Session) refreshIndexes(tx txnLike, t *partition.Table, old, new types.Row) error {
	for _, gi := range t.Indexes {
		oldIdx := gi.IndexRow(t, old)
		newIdx := gi.IndexRow(t, new)
		same := len(oldIdx) == len(newIdx)
		if same {
			for i := range oldIdx {
				if oldIdx[i].Compare(newIdx[i]) != 0 {
					same = false
					break
				}
			}
		}
		if same {
			continue
		}
		oshard := gi.ShardOfIndexRow(oldIdx)
		odn, err := s.cn.cluster.GMS.DNForShard(t.Name, oshard)
		if err != nil {
			return err
		}
		if err := tx.Delete(odn, gi.PhysicalTableID(oshard), gi.Schema.PKKey(oldIdx)); err != nil {
			return err
		}
		nshard := gi.ShardOfIndexRow(newIdx)
		ndn, err := s.cn.cluster.GMS.DNForShard(t.Name, nshard)
		if err != nil {
			return err
		}
		if err := tx.Insert(ndn, gi.PhysicalTableID(nshard), newIdx); err != nil {
			return err
		}
	}
	return nil
}

// stageRefreshIndexes is refreshIndexes' batched counterpart: the GSI
// delete-then-insert pair is staged in order (same key → same DN → the
// DN applies them in order).
func (s *Session) stageRefreshIndexes(b *writeBatch, t *partition.Table, old, new types.Row) error {
	for _, gi := range t.Indexes {
		oldIdx := gi.IndexRow(t, old)
		newIdx := gi.IndexRow(t, new)
		same := len(oldIdx) == len(newIdx)
		if same {
			for i := range oldIdx {
				if oldIdx[i].Compare(newIdx[i]) != 0 {
					same = false
					break
				}
			}
		}
		if same {
			continue
		}
		oshard := gi.ShardOfIndexRow(oldIdx)
		odn, err := s.cn.cluster.GMS.DNForShard(t.Name, oshard)
		if err != nil {
			return err
		}
		b.add(odn, dn.WriteItem{Table: gi.PhysicalTableID(oshard), Op: dn.OpDelete, PK: gi.Schema.PKKey(oldIdx)})
		nshard := gi.ShardOfIndexRow(newIdx)
		ndn, err := s.cn.cluster.GMS.DNForShard(t.Name, nshard)
		if err != nil {
			return err
		}
		b.add(ndn, dn.WriteItem{Table: gi.PhysicalTableID(nshard), Op: dn.OpInsert, Row: newIdx})
	}
	return nil
}

// execDelete removes matching rows and their index entries.
func (s *Session) execDelete(st *sql.Delete) (*Result, error) {
	t, err := s.cn.cluster.GMS.Table(st.Table)
	if err != nil {
		return nil, err
	}
	if st.Where, err = s.rewriteSubqueries(st.Where); err != nil {
		return nil, err
	}
	tx, done, err := s.txnFor()
	if err != nil {
		return nil, err
	}
	n, execErr := func() (int, error) {
		rows, err := s.matchRows(tx, t, st.Where)
		if err != nil {
			return 0, err
		}
		var batch *writeBatch
		if !s.cn.cluster.cfg.NoBatch {
			batch = newWriteBatch()
		}
		for i, row := range rows {
			shard := t.ShardOfRow(row)
			dnName, err := s.cn.cluster.GMS.DNForShard(t.Name, shard)
			if err != nil {
				return i, err
			}
			if batch != nil {
				batch.add(dnName, dn.WriteItem{Table: t.PhysicalTableID(shard), Op: dn.OpDelete, PK: t.Schema.PKKey(row)})
			} else if err := tx.Delete(dnName, t.PhysicalTableID(shard), t.Schema.PKKey(row)); err != nil {
				return i, err
			}
			for _, gi := range t.Indexes {
				irow := gi.IndexRow(t, row)
				ishard := gi.ShardOfIndexRow(irow)
				idn, err := s.cn.cluster.GMS.DNForShard(t.Name, ishard)
				if err != nil {
					return i, err
				}
				if batch != nil {
					batch.add(idn, dn.WriteItem{Table: gi.PhysicalTableID(ishard), Op: dn.OpDelete, PK: gi.Schema.PKKey(irow)})
				} else if err := tx.Delete(idn, gi.PhysicalTableID(ishard), gi.Schema.PKKey(irow)); err != nil {
					return i, err
				}
			}
		}
		if batch != nil {
			if err := batch.flush(tx); err != nil {
				return 0, err
			}
		}
		return len(rows), nil
	}()
	if err := done(execErr); err != nil {
		return nil, err
	}
	return &Result{Affected: n}, nil
}
