// Online shard migration and elastic scale-out: the execution layer the
// autopilot drives (paper §V "data redistribution" and §VIII
// anti-hotspot shard migration). A partition group moves between DN
// groups in three phases — online bulk copy, a short fenced drain, a
// diff-sync under the fence — then placement flips atomically in GMS.
// Every phase is idempotent, so a step that crashed half-way can simply
// be re-run: it resumes where it got to, or completes as a no-op if the
// placement already flipped.

package core

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"repro/internal/autopilot"
	"repro/internal/dn"
	"repro/internal/gms"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/types"
)

// migRetry is the migration control-plane ladder. Every call runs under
// the destination DN's shared circuit breaker and retry budget
// (Cluster.dnRetry), so a migration against a dead DN fails fast after
// the breaker opens instead of grinding a full ladder per table.
var migRetry = retry.Policy{Attempts: 4, Base: 5 * time.Millisecond, Cap: 50 * time.Millisecond, Jitter: 0.5}

// migratorName is the network endpoint the migration coordinator uses.
const migratorName = "migrator"

// migrationDrain is the pause between fencing a shard and the final
// diff-sync: in-flight statements that already resolved routing finish
// inside it (their writes are then caught by the diff-sync's snapshot).
const migrationDrain = 5 * time.Millisecond

// physTable is one physical shard table involved in a migration.
type physTable struct {
	id     uint32
	schema *types.Schema
}

// groupShardTables lists every physical table that must move with shard
// `shard` of a table group: the shard of each member table plus the
// shards of their global indexes (partition groups stay aligned, §II-B).
func (c *Cluster) groupShardTables(group string, shard int) ([]physTable, error) {
	tg, err := c.GMS.Group(group)
	if err != nil {
		return nil, err
	}
	var out []physTable
	for _, name := range tg.Tables {
		t, err := c.GMS.Table(name)
		if err != nil {
			return nil, err
		}
		out = append(out, physTable{id: t.PhysicalTableID(shard), schema: shardSchema(t.Schema, shard)})
		for _, gi := range t.Indexes {
			out = append(out, physTable{id: gi.PhysicalTableID(shard), schema: shardSchema(gi.Schema, shard)})
		}
	}
	return out, nil
}

// MigrateShard executes one migration step online. The protocol:
//
//  1. idempotency gate — if placement already points at step.To (a
//     previous attempt crashed after the flip), lift any leftover fence
//     and return success; if it points at neither endpoint, the step is
//     stale (wrapped gms.ErrStalePlacement) and must be re-planned;
//  2. create the destination physical tables (ErrTableExists = resumed);
//  3. bulk-copy a snapshot of every physical table through a real
//     distributed transaction while traffic keeps flowing;
//  4. fence the shard (DNForShard answers retryable ErrShardMoving),
//     wait out a short drain;
//  5. diff-sync source→destination under the fence: exact per-key
//     insert/update/delete so the destination converges even if it
//     holds stale rows from an earlier residence;
//  6. flip placement in GMS, bump the plan epoch, lift the fence.
//
// Any error leaves the fence as-is (a fenced shard stays paused, which
// is what makes re-running safe); callers either retry — resuming — or
// roll back via AbortShardMove.
func (c *Cluster) MigrateShard(step gms.MigrationStep) error {
	tg, err := c.GMS.Group(step.Group)
	if err != nil {
		return err
	}
	if step.Shard < 0 || step.Shard >= len(tg.Placement) {
		return fmt.Errorf("core: shard %d out of range for group %q", step.Shard, step.Group)
	}
	switch cur := tg.Placement[step.Shard]; cur {
	case step.To: // crashed after the flip: finish the cleanup
		c.GMS.EndMove(step.Group, step.Shard)
		c.colIdxEpoch.Add(1)
		return nil
	case step.From: // normal path
	default:
		return fmt.Errorf("%w: group %q shard %d is on %s, step wants %s→%s",
			gms.ErrStalePlacement, step.Group, step.Shard, cur, step.From, step.To)
	}
	pts, err := c.groupShardTables(step.Group, step.Shard)
	if err != nil {
		return err
	}
	for _, pt := range pts {
		pt := pt
		if err := c.dnRetry.DoDest(obs.Wall, migRetry, step.To, time.Time{}, txn.Retryable, func() error {
			_, err := c.Net.Call(migratorName, step.To,
				dn.CreateTableReq{ID: pt.id, Schema: pt.schema})
			if errors.Is(err, storage.ErrTableExists) {
				return nil
			}
			return err
		}); err != nil {
			return fmt.Errorf("core: create table %d on %s: %w", pt.id, step.To, err)
		}
	}
	// Phase 1: online bulk copy (traffic still flowing to the source).
	if err := c.syncShardTables(step, pts); err != nil {
		return fmt.Errorf("core: bulk copy %s/%d: %w", step.Group, step.Shard, err)
	}
	// Phase 2: fence + drain.
	c.GMS.StartMove(step.Group, step.Shard)
	time.Sleep(migrationDrain)
	// Phase 3: authoritative diff-sync under the fence.
	if err := c.syncShardTables(step, pts); err != nil {
		return fmt.Errorf("core: fenced sync %s/%d: %w", step.Group, step.Shard, err)
	}
	// Phase 4: flip placement, invalidate plans, lift the fence.
	if err := c.GMS.ApplyMigration(step); err != nil {
		return err
	}
	c.colIdxEpoch.Add(1)
	c.GMS.EndMove(step.Group, step.Shard)
	return nil
}

// AbortShardMove rolls back a step that will not be retried: it lifts
// the fence so traffic resumes against the unchanged source placement.
// Rows already copied to the destination are inert (nothing routes to
// them) and are re-synced if the move is ever re-planned.
func (c *Cluster) AbortShardMove(step gms.MigrationStep) error {
	c.GMS.EndMove(step.Group, step.Shard)
	c.colIdxEpoch.Add(1)
	return nil
}

// syncShardTables brings the destination's copy of every physical table
// to the source's current snapshot through one distributed transaction
// per table: scan both sides, then apply the exact per-key difference
// (the engine's insert/update/delete are strict about key existence).
func (c *Cluster) syncShardTables(step gms.MigrationStep, pts []physTable) error {
	for _, pt := range pts {
		// A whole-table sync is idempotent (the diff is recomputed from
		// fresh scans each try, and an in-doubt commit that actually
		// landed just makes the next diff empty), so transient transport
		// faults retry the table under the destination's breaker/budget.
		pt := pt
		if err := c.dnRetry.DoDest(obs.Wall, migRetry, step.To, time.Time{}, txn.Retryable, func() error {
			return c.syncOneTable(step, pt)
		}); err != nil {
			return err
		}
	}
	return nil
}

func (c *Cluster) syncOneTable(step gms.MigrationStep, pt physTable) error {
	tx, err := c.migrator.Begin()
	if err != nil {
		return err
	}
	srcRows, err := tx.Scan(step.From, pt.id, "", nil, nil, 0)
	if err != nil {
		_ = tx.Abort()
		return err
	}
	dstRows, err := tx.Scan(step.To, pt.id, "", nil, nil, 0)
	if err != nil {
		_ = tx.Abort()
		return err
	}
	have := make(map[string]types.Row, len(dstRows))
	for _, r := range dstRows {
		have[string(pt.schema.PKKey(r))] = r
	}
	var writes []dn.WriteItem
	for _, r := range srcRows {
		pk := pt.schema.PKKey(r)
		old, ok := have[string(pk)]
		switch {
		case !ok:
			writes = append(writes, dn.WriteItem{Table: pt.id, Op: dn.OpInsert, Row: r})
		case !bytes.Equal(types.EncodeRow(nil, old), types.EncodeRow(nil, r)):
			writes = append(writes, dn.WriteItem{Table: pt.id, Op: dn.OpUpdate, Row: r})
		}
		delete(have, string(pk))
	}
	for pk := range have { // rows the source no longer has
		writes = append(writes, dn.WriteItem{Table: pt.id, Op: dn.OpDelete, PK: []byte(pk)})
	}
	if len(writes) == 0 {
		_ = tx.Abort() // read-only: nothing to commit
		return nil
	}
	if err := tx.MultiWrite(step.To, writes); err != nil {
		_ = tx.Abort()
		return err
	}
	if _, err := tx.Commit(); err != nil {
		return err
	}
	return nil
}

// AddDNGroup provisions one more (initially empty) DN group at runtime —
// elastic scale-out. Its zero load drags the cluster mean down, which is
// what attracts the next hot-shard migration to it.
func (c *Cluster) AddDNGroup() (string, error) {
	c.mu.Lock()
	g := len(c.dns)
	c.mu.Unlock()
	if err := c.addDNGroup(g); err != nil {
		return "", err
	}
	return fmt.Sprintf("dng%d", g), nil
}

// --- autopilot.Target over the cluster ---

// elasticTarget adapts the cluster to the autopilot's Target interface.
type elasticTarget struct{ c *Cluster }

// ElasticTarget exposes the cluster as an autopilot target (shard
// migration between DN groups).
func (c *Cluster) ElasticTarget() autopilot.Target { return elasticTarget{c} }

func (e elasticTarget) Tables() []string {
	ts := e.c.GMS.Tables()
	out := make([]string, 0, len(ts))
	for _, t := range ts {
		out = append(out, t.Name)
	}
	return out
}

func (e elasticTarget) ShardLoads(table string) []int64 {
	return e.c.GMS.ShardLoad(table)
}

func (e elasticTarget) Placement(table string) (string, []string, error) {
	t, err := e.c.GMS.Table(table)
	if err != nil {
		return "", nil, err
	}
	tg, err := e.c.GMS.Group(t.Group)
	if err != nil {
		return "", nil, err
	}
	return t.Group, tg.Placement, nil
}

func (e elasticTarget) Nodes() []string {
	dns := e.c.GMS.DNs()
	out := make([]string, 0, len(dns))
	for _, d := range dns {
		out = append(out, d.Name)
	}
	return out
}

func (e elasticTarget) Migrate(step gms.MigrationStep) error { return e.c.MigrateShard(step) }
func (e elasticTarget) Abort(step gms.MigrationStep) error   { return e.c.AbortShardMove(step) }

// SplitShard is unsupported: tables here hash over a fixed shard count,
// so the controller degrades splits to migrations (§VIII ladder).
func (e elasticTarget) SplitShard(string, int) error { return autopilot.ErrUnsupported }

func (e elasticTarget) AddNode() (string, error) { return e.c.AddDNGroup() }

func (e elasticTarget) PlanRebalance() []gms.MigrationStep { return e.c.GMS.PlanRebalance() }
