package core

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/obs"
	"repro/internal/simnet"
)

// TestAdmissionStressConcurrentExecute hammers one CN with far more
// concurrent statements than the admission controller allows. Run under
// -race it checks the controller's concurrency accounting through the
// real Execute path: every statement either succeeds or sheds with the
// retryable ErrOverloaded (nothing wedges, nothing fails opaquely), and
// the admission counters reconcile with what the clients observed.
func TestAdmissionStressConcurrentExecute(t *testing.T) {
	c := newTestCluster(t, Config{
		Metrics: true,
		Admission: &admission.Config{
			MaxConcurrent: 4,
			MaxQueue:      8,
			MaxQueueWait:  5 * time.Millisecond,
			TenantSlots:   3,
		},
	})
	seed := c.CN(simnet.DC1).NewSession()
	seedUsers(t, seed, 200)

	const workers = 32
	const perWorker = 25
	var ok, shed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := c.CN(simnet.DC1).NewSession()
			if w%2 == 0 {
				s.SetTenant("tenant-even")
			} else {
				s.SetTenant("tenant-odd")
			}
			for i := 0; i < perWorker; i++ {
				var err error
				if i%5 == 4 {
					// AP-shaped aggregate: exercises the AP class and the
					// memory-admission path under the same limits.
					_, err = s.Execute("SELECT city, COUNT(*) FROM users GROUP BY city")
				} else {
					_, err = s.Execute("SELECT name FROM users WHERE id = 42")
				}
				switch {
				case err == nil:
					ok.Add(1)
				case errors.Is(err, admission.ErrOverloaded):
					shed.Add(1)
				default:
					t.Errorf("worker %d: unexpected error: %v", w, err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("workers wedged under admission limits")
	}
	if ok.Load() == 0 {
		t.Fatal("no statement was admitted")
	}
	t.Logf("admitted ok=%d shed=%d", ok.Load(), shed.Load())
	snap := c.MetricsSnapshot()
	if !strings.Contains(snap, "admission.admitted") {
		t.Fatalf("admission counters missing from snapshot:\n%s", snap)
	}
}

// TestStatementTimeoutDeadlineExceeded checks the deadline plumbing end
// to end: a session whose statement timeout has already lapsed by the
// time the branch RPC would go out surfaces obs.ErrDeadlineExceeded
// instead of executing, and a session-level negative override disables
// a cluster-wide timeout.
func TestStatementTimeoutDeadlineExceeded(t *testing.T) {
	c := newTestCluster(t, Config{StatementTimeout: time.Nanosecond})
	// Seeding needs a working session: override the absurd cluster-wide
	// timeout away for it.
	seed := c.CN(simnet.DC1).NewSession()
	seed.SetStatementTimeout(-1)
	seedUsers(t, seed, 50)

	s := c.CN(simnet.DC1).NewSession() // inherits the 1ns cluster timeout
	if _, err := s.Execute("SELECT name FROM users WHERE id = 7"); !errors.Is(err, obs.ErrDeadlineExceeded) {
		t.Fatalf("want ErrDeadlineExceeded, got %v", err)
	}
	if _, err := s.Execute("INSERT INTO users (id, name, city, balance) VALUES (9000, 'x', 'y', 1)"); !errors.Is(err, obs.ErrDeadlineExceeded) {
		t.Fatalf("DML: want ErrDeadlineExceeded, got %v", err)
	}

	// A generous per-session override beats the cluster default.
	s.SetStatementTimeout(10 * time.Second)
	if _, err := s.Execute("SELECT name FROM users WHERE id = 7"); err != nil {
		t.Fatalf("override should succeed: %v", err)
	}
}

// TestAdmissionDisabledIsInert pins the defaults-off contract: with no
// Admission config and no StatementTimeout, sessions never see
// ErrOverloaded or ErrDeadlineExceeded regardless of concurrency.
func TestAdmissionDisabledIsInert(t *testing.T) {
	c := newTestCluster(t, Config{})
	seed := c.CN(simnet.DC1).NewSession()
	seedUsers(t, seed, 100)
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := c.CN(simnet.DC1).NewSession()
			for i := 0; i < 20; i++ {
				if _, err := s.Execute("SELECT COUNT(*) FROM users"); err != nil {
					t.Errorf("defaults-off execute failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
