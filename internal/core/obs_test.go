package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

// distinctSpanNames returns the trace's distinct span names with prefix.
func distinctSpanNames(names []string, prefix string) []string {
	var out []string
	for _, n := range names {
		if strings.HasPrefix(n, prefix) {
			out = append(out, n)
		}
	}
	return out
}

// TestTraceSpanTree drives one multi-shard SELECT and one 2PC write
// through a tracing cluster and asserts the span tree shape: CN→DN
// fan-out for the read, prepare → commit-point → commit phases per
// participating DN for the write, with nesting intact.
func TestTraceSpanTree(t *testing.T) {
	c := newTestCluster(t, Config{
		Tracing: true,
		// Force TP classification so the scan fans out through
		// branch-scoped RPCs (the traced path).
		TPCostThreshold: 1e12,
	})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 100)

	// Multi-shard SELECT: every shard is scanned via one branch RPC.
	res := mustExec(t, s, "SELECT id FROM users WHERE balance >= 0")
	if res.Trace == nil {
		t.Fatal("Result.Trace nil with Tracing on")
	}
	names := res.Trace.SpanNames()
	if len(res.Trace.Find("plan")) == 0 {
		t.Fatalf("no plan span; spans = %v", names)
	}
	scans := distinctSpanNames(names, "rpc scan dn=")
	if len(scans) < 2 {
		t.Fatalf("SELECT fan-out touched %d DNs (%v), want >= 2", len(scans), names)
	}
	if s.LastTrace() != res.Trace {
		t.Fatal("LastTrace does not return the statement trace")
	}

	// 2PC write: touch both DN groups inside one explicit transaction.
	if err := s.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	for i := 1000; i < 1016; i++ {
		mustExec(t, s, "INSERT INTO users (id, name, city, balance) VALUES ("+itoa(i)+", 'x', 'c', 1)")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	tr := s.LastTrace()
	if tr == nil {
		t.Fatal("no COMMIT trace")
	}
	var commit *obs.Span
	for _, sp := range tr.Find("commit") {
		if sp.Name() == "commit" {
			commit = sp
			break
		}
	}
	if commit == nil {
		t.Fatalf("no commit span; spans = %v", tr.SpanNames())
	}
	names = tr.SpanNames()
	prepares := distinctSpanNames(names, "prepare dn=")
	if len(prepares) < 2 {
		t.Fatalf("prepare spans on %d DNs (%v), want >= 2", len(prepares), names)
	}
	points := distinctSpanNames(names, "commit-point dn=")
	if len(points) != 1 {
		t.Fatalf("commit-point spans = %v, want exactly one DN", points)
	}
	// The primary branch's phase-two commit rides the commit-point RPC,
	// so plain "commit dn=" spans cover exactly the non-primary branches:
	// commit-point DNs + commit DNs together must equal the prepare DNs.
	phase2 := distinctSpanNames(names, "commit dn=")
	if len(points)+len(phase2) != len(prepares) {
		t.Fatalf("commit coverage: point=%v phase2=%v prepares=%v", points, phase2, prepares)
	}
	// Nesting: every 2PC phase hangs under the commit span.
	for _, prefix := range []string{"prepare dn=", "commit-point dn=", "commit dn="} {
		if len(commit.FindUnder(prefix)) == 0 {
			t.Fatalf("no %q span nested under commit", prefix)
		}
	}
	if d := commit.Duration(); d <= 0 {
		t.Fatalf("commit span duration = %v", d)
	}
}

func itoa(i int) string {
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

// TestTracingOffProducesNoTrace pins the gating: without Config.Tracing
// no trace is allocated anywhere on the statement path.
func TestTracingOffProducesNoTrace(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 20)
	res := mustExec(t, s, "SELECT id FROM users WHERE id = 1")
	if res.Trace != nil || s.LastTrace() != nil {
		t.Fatal("trace allocated with Tracing off")
	}
}

// TestExplainAnalyze runs EXPLAIN and EXPLAIN ANALYZE over an aggregate
// query (the Fig. 10 shape) and asserts per-operator actuals appear.
func TestExplainAnalyze(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 200)

	res := mustExec(t, s, "EXPLAIN SELECT city, SUM(balance) FROM users GROUP BY city")
	if len(res.Columns) != 1 || res.Columns[0] != "EXPLAIN" {
		t.Fatalf("EXPLAIN columns = %v", res.Columns)
	}
	if len(res.Rows) < 2 || !strings.HasPrefix(res.Rows[0][0].AsString(), "-- class=") {
		t.Fatalf("EXPLAIN output = %v", res.Rows)
	}
	for _, row := range res.Rows {
		if strings.Contains(row[0].AsString(), "actual") {
			t.Fatalf("plain EXPLAIN leaked actuals: %q", row[0].AsString())
		}
	}

	res = mustExec(t, s, "EXPLAIN ANALYZE SELECT city, SUM(balance) FROM users GROUP BY city")
	var sawAgg, sawScanActuals bool
	for _, row := range res.Rows {
		line := row[0].AsString()
		if strings.Contains(line, "HashAgg") && strings.Contains(line, "actual rows=") {
			sawAgg = true
		}
		if strings.Contains(line, "Scan(") && strings.Contains(line, "actual rows=200") {
			sawScanActuals = true
		}
	}
	if !sawAgg || !sawScanActuals {
		var b strings.Builder
		for _, row := range res.Rows {
			b.WriteString(row[0].AsString() + "\n")
		}
		t.Fatalf("EXPLAIN ANALYZE missing actuals (agg=%v scan=%v):\n%s", sawAgg, sawScanActuals, b.String())
	}
}

// TestMetricsSnapshotAndSlowQueryLog exercises the registry wiring and
// the slow-query log end to end.
func TestMetricsSnapshotAndSlowQueryLog(t *testing.T) {
	c := newTestCluster(t, Config{
		Metrics:            true,
		SlowQueryThreshold: time.Nanosecond, // everything is slow
	})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 50)
	mustExec(t, s, "SELECT id FROM users WHERE id = 7")
	mustExec(t, s, "SELECT id FROM users WHERE id = 7")

	snap := c.MetricsSnapshot()
	for _, want := range []string{"rpc.calls", "rpc.intra_dc", "txn.commit", "plancache.hit", "plancache.hits", "vector.pool_gets", "executor.exchange_waits"} {
		if !strings.Contains(snap, want) {
			t.Fatalf("MetricsSnapshot missing %q:\n%s", want, snap)
		}
	}
	if c.Metrics() == nil {
		t.Fatal("Metrics() nil with Metrics on")
	}
	if c.Metrics().Counter("txn.commit").Value() == 0 {
		t.Fatal("txn.commit counter never incremented")
	}

	slow := c.SlowQueries()
	if len(slow) == 0 {
		t.Fatal("slow-query log empty with 1ns threshold")
	}
	last := slow[len(slow)-1]
	if !strings.Contains(last.SQL, "SELECT id FROM users") || last.Duration <= 0 || last.CN == "" {
		t.Fatalf("slow entry = %+v", last)
	}
}
