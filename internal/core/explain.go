package core

import (
	"fmt"
	"strings"

	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/sql"
	"repro/internal/types"
)

// execExplain serves EXPLAIN [ANALYZE] <select>. Plain EXPLAIN renders
// the chosen physical plan without executing; ANALYZE executes the query
// with every operator wrapped in an instrumented shim and annotates each
// plan node with actual rows-out and wall time (§VI-B's plan surface,
// used to read the Fig. 10 query shapes).
func (s *Session) execExplain(st *sql.Explain) (*Result, error) {
	sel, ok := st.Stmt.(*sql.Select)
	if !ok {
		return nil, fmt.Errorf("%w: EXPLAIN %T", errUnsupported, st.Stmt)
	}
	var err error
	if sel.Where, err = s.rewriteSubqueries(sel.Where); err != nil {
		return nil, err
	}
	if sel.Having, err = s.rewriteSubqueries(sel.Having); err != nil {
		return nil, err
	}
	plan, err := s.cn.planFor(sel, s.trace())
	if err != nil {
		return nil, err
	}
	var text string
	if st.Analyze {
		analyze := make(map[optimizer.Node]*obs.OpStats)
		if _, err := s.runPlan(plan, analyze); err != nil {
			return nil, err
		}
		text = plan.ExplainAnalyze(func(n optimizer.Node) string {
			return analyze[n].Summary()
		})
	} else {
		text = plan.Explain()
	}
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	rows := make([]types.Row, len(lines))
	for i, l := range lines {
		rows[i] = types.Row{types.Str(l)}
	}
	return &Result{Columns: []string{"EXPLAIN"}, Rows: rows, Plan: plan}, nil
}
