package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/advisor"
	"repro/internal/simnet"
)

func newTestCluster(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	return c
}

func mustExec(t *testing.T, s *Session, query string) *Result {
	t.Helper()
	res, err := s.Execute(query)
	if err != nil {
		t.Fatalf("Execute(%q): %v", query, err)
	}
	return res
}

func seedUsers(t *testing.T, s *Session, n int) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE users (id BIGINT, name VARCHAR(32), city VARCHAR(16), balance BIGINT, PRIMARY KEY(id)) PARTITIONS 4`)
	for i := 0; i < n; i += 50 {
		var sb strings.Builder
		sb.WriteString("INSERT INTO users (id, name, city, balance) VALUES ")
		for j := i; j < i+50 && j < n; j++ {
			if j > i {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'user%d', 'city%d', %d)", j, j, j%5, j*10)
		}
		mustExec(t, s, sb.String())
	}
}

func TestCreateInsertPointSelect(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 100)

	res := mustExec(t, s, "SELECT name, balance FROM users WHERE id = 42")
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "user42" || res.Rows[0][1].AsInt() != 420 {
		t.Fatalf("point select = %v", res.Rows)
	}
	if res.Plan.IsAP {
		t.Fatal("point query classified AP")
	}
	// Missing key.
	res = mustExec(t, s, "SELECT name FROM users WHERE id = 424242")
	if len(res.Rows) != 0 {
		t.Fatalf("ghost row: %v", res.Rows)
	}
}

func TestCrossShardFilterScan(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 200)
	res := mustExec(t, s, "SELECT id FROM users WHERE balance >= 1900 ORDER BY id")
	if len(res.Rows) != 10 {
		t.Fatalf("filter scan = %d rows", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 190 || res.Rows[9][0].AsInt() != 199 {
		t.Fatalf("order = %v ... %v", res.Rows[0], res.Rows[9])
	}
}

func TestAggregationAcrossShards(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 200)
	res := mustExec(t, s, `
		SELECT city, COUNT(*) AS cnt, SUM(balance) AS total
		FROM users GROUP BY city ORDER BY city`)
	if len(res.Rows) != 5 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	// city0 holds ids 0,5,10,...,195 → 40 rows, sum = 10*(0+5+...+195).
	if res.Rows[0][1].AsInt() != 40 {
		t.Fatalf("city0 count = %v", res.Rows[0])
	}
	var want int64
	for i := int64(0); i < 200; i += 5 {
		want += i * 10
	}
	if res.Rows[0][2].AsInt() != want {
		t.Fatalf("city0 sum = %v, want %d", res.Rows[0][2], want)
	}
}

func TestJoinAcrossTables(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 50)
	mustExec(t, s, `CREATE TABLE orders (oid BIGINT, uid BIGINT, amount BIGINT, PRIMARY KEY(oid)) PARTITIONS 4`)
	for i := 0; i < 100; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO orders (oid, uid, amount) VALUES (%d, %d, %d)", i, i%50, i))
	}
	res := mustExec(t, s, `
		SELECT u.name, SUM(o.amount) AS total
		FROM orders o JOIN users u ON o.uid = u.id
		WHERE u.city = 'city0'
		GROUP BY u.name ORDER BY total DESC LIMIT 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("join rows = %d", len(res.Rows))
	}
	// user45 has orders 45 and 95: total 140 — the max among city0 users.
	if res.Rows[0][0].AsString() != "user45" || res.Rows[0][1].AsInt() != 140 {
		t.Fatalf("top = %v", res.Rows[0])
	}
}

func TestUpdateAndDelete(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 50)

	res := mustExec(t, s, "UPDATE users SET balance = balance + 1000 WHERE id = 7")
	if res.Affected != 1 {
		t.Fatalf("update affected = %d", res.Affected)
	}
	got := mustExec(t, s, "SELECT balance FROM users WHERE id = 7")
	if got.Rows[0][0].AsInt() != 1070 {
		t.Fatalf("balance = %v", got.Rows[0])
	}
	// Non-PK where: all city1 rows.
	res = mustExec(t, s, "UPDATE users SET city = 'moved' WHERE city = 'city1'")
	if res.Affected != 10 {
		t.Fatalf("bulk update affected = %d", res.Affected)
	}
	res = mustExec(t, s, "DELETE FROM users WHERE city = 'moved'")
	if res.Affected != 10 {
		t.Fatalf("delete affected = %d", res.Affected)
	}
	left := mustExec(t, s, "SELECT COUNT(*) FROM users")
	if left.Rows[0][0].AsInt() != 40 {
		t.Fatalf("remaining = %v", left.Rows[0])
	}
}

func TestExplicitTransactionAtomicity(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 20)

	// Cross-shard transfer inside one transaction.
	if err := s.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "UPDATE users SET balance = balance - 50 WHERE id = 1")
	mustExec(t, s, "UPDATE users SET balance = balance + 50 WHERE id = 2")
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, s, "SELECT SUM(balance) FROM users WHERE id IN (1, 2)")
	if res.Rows[0][0].AsInt() != 30 {
		t.Fatalf("sum = %v", res.Rows[0])
	}

	// Rollback discards everything.
	s.BeginTxn()
	mustExec(t, s, "UPDATE users SET balance = 0 WHERE id = 1")
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, s, "SELECT balance FROM users WHERE id = 1")
	if res.Rows[0][0].AsInt() == 0 {
		t.Fatal("rolled-back write visible")
	}
}

func TestInsertArityAndColumnErrors(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, "CREATE TABLE t (id INT, v TEXT, PRIMARY KEY(id))")
	if _, err := s.Execute("INSERT INTO t (id) VALUES (1, 'x')"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := s.Execute("INSERT INTO t (id, ghost) VALUES (1, 'x')"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, err := s.Execute("INSERT INTO ghost VALUES (1)"); err == nil {
		t.Fatal("unknown table accepted")
	}
	// Duplicate key.
	mustExec(t, s, "INSERT INTO t (id, v) VALUES (1, 'a')")
	if _, err := s.Execute("INSERT INTO t (id, v) VALUES (1, 'b')"); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestImplicitPrimaryKey(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, "CREATE TABLE logs (msg TEXT) PARTITIONS 4")
	for i := 0; i < 20; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO logs (msg) VALUES ('m%d')", i))
	}
	res := mustExec(t, s, "SELECT COUNT(*) FROM logs")
	if res.Rows[0][0].AsInt() != 20 {
		t.Fatalf("count = %v", res.Rows[0])
	}
}

func TestGlobalSecondaryIndexMaintained(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 30)
	mustExec(t, s, "CREATE GLOBAL INDEX idx_city ON users (city)")

	// The hidden table holds one entry per base row, partitioned by city.
	gmsTable, err := c.GMS.Table("users")
	if err != nil {
		t.Fatal(err)
	}
	if len(gmsTable.Indexes) != 1 {
		t.Fatal("GSI not registered")
	}
	gi := gmsTable.Indexes[0]
	countIndexRows := func() int {
		tx, _ := c.CN(simnet.DC1).coord.Begin()
		defer tx.Abort()
		total := 0
		for shard := 0; shard < gi.Shards; shard++ {
			dnName, _ := c.GMS.DNForShard("users", shard)
			rows, err := tx.Scan(dnName, gi.PhysicalTableID(shard), "", nil, nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			total += len(rows)
		}
		return total
	}
	if got := countIndexRows(); got != 30 {
		t.Fatalf("index rows after backfill = %d", got)
	}
	// New inserts, updates to the indexed column, and deletes all
	// maintain the hidden table.
	mustExec(t, s, "INSERT INTO users (id, name, city, balance) VALUES (100, 'new', 'cityX', 5)")
	if got := countIndexRows(); got != 31 {
		t.Fatalf("index rows after insert = %d", got)
	}
	mustExec(t, s, "UPDATE users SET city = 'cityY' WHERE id = 100")
	if got := countIndexRows(); got != 31 {
		t.Fatalf("index rows after update = %d", got)
	}
	mustExec(t, s, "DELETE FROM users WHERE id = 100")
	if got := countIndexRows(); got != 30 {
		t.Fatalf("index rows after delete = %d", got)
	}
}

func TestAPOnReplicasWithSessionConsistency(t *testing.T) {
	c := newTestCluster(t, Config{ROsPerDN: 1, TPCostThreshold: 1})
	if err := c.EnableAPReplicas(1); err != nil {
		t.Fatal(err)
	}
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 100)

	// TPCostThreshold=1 makes the aggregate AP → routed to the RO just
	// after the writes: session consistency must still show all rows.
	res := mustExec(t, s, "SELECT COUNT(*) FROM users")
	if !res.Plan.IsAP {
		t.Fatal("aggregate not classified AP")
	}
	if res.Rows[0][0].AsInt() != 100 {
		t.Fatalf("AP count = %v (stale replica?)", res.Rows[0])
	}
}

func TestColumnIndexAPPath(t *testing.T) {
	c := newTestCluster(t, Config{ROsPerDN: 1, TPCostThreshold: 1})
	if err := c.EnableAPReplicas(1); err != nil {
		t.Fatal(err)
	}
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 100)
	if err := c.WaitROConvergence(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableColumnIndexes("users"); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, s, "SELECT city, SUM(balance), COUNT(*) FROM users GROUP BY city ORDER BY city")
	if len(res.Rows) != 5 {
		t.Fatalf("groups = %d", len(res.Rows))
	}
	if res.Rows[0][2].AsInt() != 20 {
		t.Fatalf("city0 count = %v", res.Rows[0])
	}
	// The plan actually chose the column index.
	usesCol := strings.Contains(res.Plan.Explain(), "store=colindex")
	if !usesCol {
		t.Fatalf("plan did not choose the column index:\n%s", res.Plan.Explain())
	}
}

func TestTSOOracleCluster(t *testing.T) {
	c := newTestCluster(t, Config{Oracle: OracleTSO})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 30)
	res := mustExec(t, s, "SELECT COUNT(*) FROM users")
	if res.Rows[0][0].AsInt() != 30 {
		t.Fatalf("count = %v", res.Rows[0])
	}
	if c.Net.MessageCount("tso") == 0 {
		t.Fatal("TSO never consulted")
	}
}

func TestMultiDCCluster(t *testing.T) {
	c := newTestCluster(t, Config{DCs: 3, MultiDC: true, DNGroups: 3})
	s := c.CN(simnet.DC2).NewSession()
	seedUsers(t, s, 60)
	res := mustExec(t, s, "SELECT COUNT(*) FROM users")
	if res.Rows[0][0].AsInt() != 60 {
		t.Fatalf("count = %v", res.Rows[0])
	}
	// Leaders are spread across DCs.
	dcs := map[simnet.DC]bool{}
	for _, g := range []string{"dng0", "dng1", "dng2"} {
		inst, err := c.DNGroup(g)
		if err != nil {
			t.Fatal(err)
		}
		if !inst.IsLeader() {
			t.Fatalf("%s leader instance is not leading", g)
		}
		dcs[inst.DC()] = true
	}
	if len(dcs) != 3 {
		t.Fatalf("leaders in %d DCs", len(dcs))
	}
}

func TestCNLocalityAndScaleOut(t *testing.T) {
	c := newTestCluster(t, Config{DCs: 2, CNsPerDC: 1})
	if cn := c.CN(simnet.DC2); cn.DC() != simnet.DC2 {
		t.Fatalf("locality pick = %s", cn.Name())
	}
	before := len(c.CNs())
	c.AddCN(simnet.DC1)
	if len(c.CNs()) != before+1 {
		t.Fatal("AddCN did not register")
	}
}

func TestHavingAndArithmetic(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 100)
	res := mustExec(t, s, `
		SELECT city, AVG(balance) AS avg_bal
		FROM users GROUP BY city HAVING AVG(balance) > 480
		ORDER BY avg_bal DESC`)
	// Balances are id*10; city c has ids c, c+5, ... avg depends on c.
	// city4: ids 4,9,...,99 → avg = 10*(4+9+...+99)/20 = 515.
	if len(res.Rows) == 0 {
		t.Fatal("no groups passed HAVING")
	}
	if res.Rows[0][0].AsString() != "city4" {
		t.Fatalf("top group = %v", res.Rows[0])
	}
	for _, r := range res.Rows {
		if r[1].AsFloat() <= 480 {
			t.Fatalf("HAVING leak: %v", r)
		}
	}
}

func TestSelectStarAndLimit(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 20)
	res := mustExec(t, s, "SELECT * FROM users ORDER BY id LIMIT 5")
	if len(res.Rows) != 5 || len(res.Columns) != 4 {
		t.Fatalf("star/limit: %d rows, %d cols", len(res.Rows), len(res.Columns))
	}
	if res.Rows[4][0].AsInt() != 4 {
		t.Fatalf("order = %v", res.Rows[4])
	}
}

func TestTwoSessionsConflict(t *testing.T) {
	c := newTestCluster(t, Config{})
	s1 := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s1, 10)
	s2 := c.CN(simnet.DC1).NewSession()

	s1.BeginTxn()
	s2.BeginTxn()
	mustExec(t, s1, "UPDATE users SET balance = 1 WHERE id = 3")
	if _, err := s2.Execute("UPDATE users SET balance = 2 WHERE id = 3"); err == nil {
		t.Fatal("write-write conflict not detected")
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	s2.Rollback()
	res := mustExec(t, s1, "SELECT balance FROM users WHERE id = 3")
	if res.Rows[0][0].AsInt() != 1 {
		t.Fatalf("winner's write lost: %v", res.Rows[0])
	}
}

func TestAdvisorThroughCN(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 100)
	rec, err := c.CN(simnet.DC1).Advise([]string{
		"SELECT name FROM users WHERE city = 'city1'",
		"SELECT balance FROM users WHERE city = 'city2'",
		"SELECT COUNT(*) FROM users WHERE city = 'city0' AND balance > 100",
	}, advisor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Chosen) == 0 {
		t.Fatal("no recommendation for a repeated city filter")
	}
	if rec.Chosen[0].Table != "users" || rec.Chosen[0].Columns[0] != "city" {
		t.Fatalf("top = %+v", rec.Chosen[0])
	}
	// The recommended DDL actually applies.
	for _, ddl := range rec.DDL() {
		mustExec(t, s, ddl)
	}
	gmsTable, _ := c.GMS.Table("users")
	if len(gmsTable.Indexes) == 0 {
		t.Fatal("recommended index not created")
	}
}

func TestHotShardPlanThroughCluster(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 50)
	// Hammer one shard with point reads to skew the load counters.
	for i := 0; i < 300; i++ {
		mustExec(t, s, "SELECT name FROM users WHERE id = 7")
	}
	actions, err := c.HotShardPlan("users", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) == 0 {
		t.Fatal("hot shard not detected")
	}
	if _, err := c.HotShardPlan("ghost", 2.0); err == nil {
		t.Fatal("unknown table accepted")
	}
}

func TestTrafficControlThrottlesBurst(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 20)
	c.EnableTrafficControl()

	tc := c.CN(simnet.DC1).traffic
	tc.AnomalyFactor = 2 // quicker detection for the test
	tc.SetWindow(20 * time.Millisecond)

	// Calm baseline for one statement class (a slow-ish scan, the §VIII
	// "slow SQL without proper indexes").
	burstQ := func(i int) string {
		return fmt.Sprintf("SELECT COUNT(*) FROM users WHERE balance >= %d AND name LIKE 'u%%'", i%3)
	}
	for w := 0; w < 16; w++ {
		mustExec(t, s, burstQ(w))
		time.Sleep(25 * time.Millisecond)
	}
	// Burst the same class massively from many connections; once the
	// anomaly is detected the class's concurrency is clamped and excess
	// requests fail with ErrThrottled.
	throttled := 0
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sess := c.CN(simnet.DC1).NewSession()
			for i := 0; i < 400; i++ {
				_, err := sess.Execute(burstQ(i))
				if errors.Is(err, ErrThrottled) {
					mu.Lock()
					throttled++
					mu.Unlock()
				} else if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if throttled == 0 {
		t.Fatal("burst was never throttled")
	}
	// Other classes unaffected.
	mustExec(t, s, "SELECT COUNT(*) FROM users")
}

func TestPartitionWiseJoinCorrectness(t *testing.T) {
	c := newTestCluster(t, Config{DNGroups: 2, TPCostThreshold: 1})
	s := c.CN(simnet.DC1).NewSession()
	// Two tables in one table group joined on the partition key: the
	// planner marks the join partition-wise and core executes it as
	// per-shard fragments. Results must match exactly.
	mustExec(t, s, `CREATE TABLE po (id BIGINT, total BIGINT, PRIMARY KEY(id)) PARTITIONS 4 TABLEGROUP g1`)
	mustExec(t, s, `CREATE TABLE pl (id BIGINT, qty BIGINT, PRIMARY KEY(id)) PARTITIONS 4 TABLEGROUP g1`)
	for lo := 0; lo < 200; lo += 50 {
		so := "INSERT INTO po (id, total) VALUES "
		sl := "INSERT INTO pl (id, qty) VALUES "
		for i := lo; i < lo+50; i++ {
			if i > lo {
				so += ", "
				sl += ", "
			}
			so += fmt.Sprintf("(%d, %d)", i, i*2)
			sl += fmt.Sprintf("(%d, %d)", i, i%7)
		}
		mustExec(t, s, so)
		mustExec(t, s, sl)
	}
	res := mustExec(t, s, `
		SELECT COUNT(*), SUM(po.total + pl.qty)
		FROM po JOIN pl ON po.id = pl.id
		WHERE po.total >= 100`)
	// Model: rows with total=2i >= 100 → i >= 50 → 150 rows.
	var wantCount, wantSum int64
	for i := int64(50); i < 200; i++ {
		wantCount++
		wantSum += i*2 + i%7
	}
	if res.Rows[0][0].AsInt() != wantCount || res.Rows[0][1].AsInt() != wantSum {
		t.Fatalf("partition-wise join = %v, want (%d, %d)", res.Rows[0], wantCount, wantSum)
	}
	// The plan really is partition-wise.
	if !strings.Contains(res.Plan.Explain(), "partition-wise") {
		t.Fatalf("plan not partition-wise:\n%s", res.Plan.Explain())
	}
}

func TestGSIRoutedQueries(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 200)
	mustExec(t, s, "CREATE GLOBAL INDEX idx_city ON users (city)")

	// Equality on the indexed column routes through the hidden table:
	// one shard read instead of a broadcast scan.
	res := mustExec(t, s, "SELECT id, balance FROM users WHERE city = 'city2' ORDER BY id")
	if len(res.Rows) != 40 {
		t.Fatalf("gsi query rows = %d", len(res.Rows))
	}
	for i, r := range res.Rows {
		if r[0].AsInt() != int64(i*5+2) {
			t.Fatalf("row %d = %v", i, r)
		}
	}
	if !strings.Contains(res.Plan.Explain(), "gsi=idx_city") {
		t.Fatalf("plan did not use the GSI:\n%s", res.Plan.Explain())
	}

	// Residual conditions still apply on top of the index route.
	res = mustExec(t, s, "SELECT COUNT(*) FROM users WHERE city = 'city2' AND balance >= 1000")
	var want int64
	for i := int64(2); i < 200; i += 5 {
		if i*10 >= 1000 {
			want++
		}
	}
	if res.Rows[0][0].AsInt() != want {
		t.Fatalf("gsi+residual = %v, want %d", res.Rows[0], want)
	}

	// The index stays correct under updates and deletes.
	mustExec(t, s, "UPDATE users SET city = 'city2' WHERE id = 3")
	mustExec(t, s, "DELETE FROM users WHERE id = 7")
	res = mustExec(t, s, "SELECT COUNT(*) FROM users WHERE city = 'city2'")
	if res.Rows[0][0].AsInt() != 40 { // +1 moved in (id 3), -1 deleted (id 7 was city2)
		t.Fatalf("post-dml gsi count = %v", res.Rows[0])
	}
}

func TestClusteredGSIAvoidsBaseLookups(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 100)
	mustExec(t, s, "CREATE CLUSTERED INDEX cidx_city ON users (city)")
	res := mustExec(t, s, "SELECT id, name, balance FROM users WHERE city = 'city3' ORDER BY id")
	if len(res.Rows) != 20 {
		t.Fatalf("clustered gsi rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].AsString() != "user3" || res.Rows[0][2].AsInt() != 30 {
		t.Fatalf("row = %v", res.Rows[0])
	}
	if !strings.Contains(res.Plan.Explain(), "clustered-gsi=cidx_city") {
		t.Fatalf("plan:\n%s", res.Plan.Explain())
	}
}

func TestGSIInsideTransactionSeesOwnWrites(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 20)
	mustExec(t, s, "CREATE GLOBAL INDEX idx_city ON users (city)")
	if err := s.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "INSERT INTO users (id, name, city, balance) VALUES (999, 'tx', 'cityZ', 1)")
	res := mustExec(t, s, "SELECT name FROM users WHERE city = 'cityZ'")
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "tx" {
		t.Fatalf("own write invisible through GSI: %v", res.Rows)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM users WHERE city = 'cityZ'")
	if res.Rows[0][0].AsInt() != 0 {
		t.Fatal("rolled-back row visible through GSI")
	}
}

func TestClusterWithPolarFSFlushesPages(t *testing.T) {
	c := newTestCluster(t, Config{WithPolarFS: true, DNGroups: 2})
	if c.FS == nil {
		t.Fatal("PolarFS not provisioned")
	}
	s := c.CN(simnet.DC1).NewSession()
	seedUsers(t, s, 100)
	// The background flusher writes dirty pages to the DN volumes; the
	// volumes must grow beyond zero provisioned chunks.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		vol, err := c.FS.Volume("vol-dng0-a")
		if err != nil {
			t.Fatal(err)
		}
		if vol.Chunks() > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no pages reached PolarFS")
}

func TestMultiDCTSOCluster(t *testing.T) {
	// TSO-SI in a 3-DC Paxos deployment: the worst case the paper argues
	// against — every timestamp crosses to DC1 — must still be correct.
	c := newTestCluster(t, Config{DCs: 3, MultiDC: true, DNGroups: 3, Oracle: OracleTSO})
	s := c.CN(simnet.DC3).NewSession()
	seedUsers(t, s, 40)
	if err := s.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "UPDATE users SET balance = balance - 5 WHERE id = 1")
	mustExec(t, s, "UPDATE users SET balance = balance + 5 WHERE id = 2")
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, s, "SELECT SUM(balance) FROM users")
	var want int64
	for i := int64(0); i < 40; i++ {
		want += i * 10
	}
	if res.Rows[0][0].AsInt() != want {
		t.Fatalf("sum = %v, want %d", res.Rows[0], want)
	}
}

func TestPartitionByNonPKEndToEnd(t *testing.T) {
	c := newTestCluster(t, Config{DNGroups: 2, TPCostThreshold: 1})
	s := c.CN(simnet.DC1).NewSession()
	// lineitem-style child partitioned by the FK, not the PK: the join
	// on the shared partition key becomes partition-wise even though
	// the keys are different columns of each table.
	mustExec(t, s, `CREATE TABLE ord (oid BIGINT, status BIGINT, PRIMARY KEY(oid)) PARTITIONS 4 TABLEGROUP g_ol`)
	mustExec(t, s, `CREATE TABLE item (iid BIGINT, oid BIGINT, qty BIGINT, PRIMARY KEY(iid)) PARTITIONS 4 BY (oid) TABLEGROUP g_ol`)
	for i := 0; i < 60; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO ord (oid, status) VALUES (%d, %d)", i, i%3))
	}
	for i := 0; i < 180; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO item (iid, oid, qty) VALUES (%d, %d, %d)", i, i%60, i%5))
	}
	res := mustExec(t, s, `
		SELECT COUNT(*), SUM(item.qty)
		FROM ord JOIN item ON ord.oid = item.oid
		WHERE ord.status = 1`)
	var wantCount, wantSum int64
	for i := int64(0); i < 180; i++ {
		if (i%60)%3 == 1 {
			wantCount++
			wantSum += i % 5
		}
	}
	if res.Rows[0][0].AsInt() != wantCount || res.Rows[0][1].AsInt() != wantSum {
		t.Fatalf("join = %v, want (%d, %d)", res.Rows[0], wantCount, wantSum)
	}
	if !strings.Contains(res.Plan.Explain(), "partition-wise") {
		t.Fatalf("FK-aligned join not partition-wise:\n%s", res.Plan.Explain())
	}

	// Point predicates on the PK of a non-PK-partitioned table must NOT
	// use PK shard pruning (the PK no longer determines the shard) —
	// reads, updates, and deletes all have to stay correct.
	res = mustExec(t, s, "SELECT qty FROM item WHERE iid = 77")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 77%5 {
		t.Fatalf("pk read on BY-partitioned table = %v", res.Rows)
	}
	mustExec(t, s, "UPDATE item SET qty = 99 WHERE iid = 77")
	res = mustExec(t, s, "SELECT qty FROM item WHERE iid = 77")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 99 {
		t.Fatalf("pk update on BY-partitioned table = %v", res.Rows)
	}
	mustExec(t, s, "DELETE FROM item WHERE iid = 77")
	if res = mustExec(t, s, "SELECT COUNT(*) FROM item WHERE iid = 77"); res.Rows[0][0].AsInt() != 0 {
		t.Fatal("pk delete on BY-partitioned table left the row behind")
	}

	// Partition-key equality prunes to a single shard.
	res = mustExec(t, s, "SELECT COUNT(*) FROM item WHERE oid = 13")
	if res.Rows[0][0].AsInt() != 3 {
		t.Fatalf("partition-key count = %v", res.Rows[0])
	}
	if !strings.Contains(res.Plan.Explain(), "shards=[") {
		t.Fatalf("partition-key equality not pruned to one shard:\n%s", res.Plan.Explain())
	}
}

func TestCompositePKPointOperations(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, `CREATE TABLE wh_stock (wh BIGINT, item BIGINT, qty BIGINT,
		PRIMARY KEY(wh, item)) PARTITIONS 4`)
	for w := 0; w < 5; w++ {
		for i := 0; i < 20; i++ {
			mustExec(t, s, fmt.Sprintf(
				"INSERT INTO wh_stock (wh, item, qty) VALUES (%d, %d, %d)", w, i, w*100+i))
		}
	}
	// Full-PK equality plans as a single point lookup on one shard.
	res := mustExec(t, s, "SELECT qty FROM wh_stock WHERE wh = 3 AND item = 7")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 307 {
		t.Fatalf("composite point read = %v", res.Rows)
	}
	if ex := res.Plan.Explain(); !strings.Contains(ex, "point×1") {
		t.Fatalf("composite PK equality not planned as a point:\n%s", ex)
	}
	// Reversed literal order and extra residual conjunct still match.
	res = mustExec(t, s, "SELECT qty FROM wh_stock WHERE 7 = item AND wh = 3 AND qty > 0")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 307 {
		t.Fatalf("composite point with residual = %v", res.Rows)
	}
	// Partial PK equality must NOT be treated as a point.
	res = mustExec(t, s, "SELECT COUNT(*) FROM wh_stock WHERE wh = 3")
	if res.Rows[0][0].AsInt() != 20 {
		t.Fatalf("partial-PK count = %v", res.Rows[0])
	}
	// DML point paths.
	mustExec(t, s, "UPDATE wh_stock SET qty = 9999 WHERE wh = 2 AND item = 4")
	res = mustExec(t, s, "SELECT qty FROM wh_stock WHERE wh = 2 AND item = 4")
	if res.Rows[0][0].AsInt() != 9999 {
		t.Fatalf("composite point update = %v", res.Rows)
	}
	mustExec(t, s, "DELETE FROM wh_stock WHERE wh = 2 AND item = 4")
	if res = mustExec(t, s, "SELECT COUNT(*) FROM wh_stock"); res.Rows[0][0].AsInt() != 99 {
		t.Fatalf("count after delete = %v", res.Rows[0])
	}
	// A residual predicate that fails keeps the row untouched.
	mustExec(t, s, "UPDATE wh_stock SET qty = 0 WHERE wh = 1 AND item = 1 AND qty > 100000")
	res = mustExec(t, s, "SELECT qty FROM wh_stock WHERE wh = 1 AND item = 1")
	if res.Rows[0][0].AsInt() != 101 {
		t.Fatalf("guarded update changed the row: %v", res.Rows)
	}
}

func TestGMSReroutesAfterDNLeaderFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("waits for a real election timeout")
	}
	c := newTestCluster(t, Config{DCs: 3, MultiDC: true, DNGroups: 1})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, `CREATE TABLE acct (id BIGINT, bal BIGINT, PRIMARY KEY(id)) PARTITIONS 4`)
	for i := 0; i < 40; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO acct (id, bal) VALUES (%d, %d)", i, i*10))
	}

	old, err := c.FailDNLeader("dng0")
	if err != nil {
		t.Fatal(err)
	}
	// The next auto-commit statement hits the dead leader, GMS
	// health-checks the group, waits out the election, repoints the
	// placement, and the statement retries transparently.
	res := mustExec(t, s, "SELECT COUNT(*) FROM acct")
	if res.Rows[0][0].AsInt() != 40 {
		t.Fatalf("post-failover count = %v", res.Rows[0])
	}
	newDN, err := c.GMS.DNForShard("acct", 0)
	if err != nil {
		t.Fatal(err)
	}
	if newDN == old {
		t.Fatalf("placement still points at the failed leader %s", old)
	}
	// Writes work against the new leader and survive a full read-back.
	mustExec(t, s, "INSERT INTO acct (id, bal) VALUES (100, 1)")
	mustExec(t, s, "UPDATE acct SET bal = 777 WHERE id = 7")
	res = mustExec(t, s, "SELECT SUM(bal) FROM acct")
	want := int64(1)
	for i := int64(0); i < 40; i++ {
		if i == 7 {
			want += 777
		} else {
			want += i * 10
		}
	}
	if res.Rows[0][0].AsInt() != want {
		t.Fatalf("post-failover sum = %v, want %d", res.Rows[0], want)
	}
	// HealDNRouting is idempotent once routing is correct.
	if healed := c.HealDNRouting(); len(healed) != 0 {
		t.Fatalf("second heal re-routed %v", healed)
	}
}

func TestSubqueries(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, `CREATE TABLE dept (id BIGINT, region VARCHAR(16), PRIMARY KEY(id)) PARTITIONS 4`)
	mustExec(t, s, `CREATE TABLE emp (id BIGINT, dept BIGINT, sal BIGINT, PRIMARY KEY(id)) PARTITIONS 4`)
	for d := 0; d < 6; d++ {
		region := "east"
		if d%2 == 1 {
			region = "west"
		}
		mustExec(t, s, fmt.Sprintf("INSERT INTO dept (id, region) VALUES (%d, '%s')", d, region))
	}
	for i := 0; i < 60; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO emp (id, dept, sal) VALUES (%d, %d, %d)", i, i%6, 1000+i*10))
	}

	// IN subquery: employees in east-region departments (dept 0,2,4 →
	// 30 employees).
	res := mustExec(t, s, `SELECT COUNT(*) FROM emp WHERE dept IN (SELECT id FROM dept WHERE region = 'east')`)
	if res.Rows[0][0].AsInt() != 30 {
		t.Fatalf("IN subquery count = %v", res.Rows[0])
	}
	// NOT IN subquery: the complement.
	res = mustExec(t, s, `SELECT COUNT(*) FROM emp WHERE dept NOT IN (SELECT id FROM dept WHERE region = 'east')`)
	if res.Rows[0][0].AsInt() != 30 {
		t.Fatalf("NOT IN subquery count = %v", res.Rows[0])
	}
	// Scalar subquery: above-average salary. avg = 1000+59*10/2 = 1295;
	// sal > 1295 → ids 30..59 → 30 rows.
	res = mustExec(t, s, `SELECT COUNT(*) FROM emp WHERE sal > (SELECT AVG(sal) FROM emp)`)
	if res.Rows[0][0].AsInt() != 30 {
		t.Fatalf("scalar subquery count = %v", res.Rows[0])
	}
	// Nested: IN subquery whose inner WHERE itself has a scalar subquery.
	res = mustExec(t, s, `SELECT COUNT(*) FROM emp WHERE dept IN
		(SELECT id FROM dept WHERE id < (SELECT MAX(id) FROM dept))`)
	if res.Rows[0][0].AsInt() != 50 {
		t.Fatalf("nested subquery count = %v", res.Rows[0])
	}
	// Empty IN source is FALSE; empty NOT IN source is TRUE.
	res = mustExec(t, s, `SELECT COUNT(*) FROM emp WHERE dept IN (SELECT id FROM dept WHERE region = 'north')`)
	if res.Rows[0][0].AsInt() != 0 {
		t.Fatalf("empty IN = %v", res.Rows[0])
	}
	res = mustExec(t, s, `SELECT COUNT(*) FROM emp WHERE dept NOT IN (SELECT id FROM dept WHERE region = 'north')`)
	if res.Rows[0][0].AsInt() != 60 {
		t.Fatalf("empty NOT IN = %v", res.Rows[0])
	}
	// Zero-row scalar subquery yields NULL → comparison never true.
	res = mustExec(t, s, `SELECT COUNT(*) FROM emp WHERE sal > (SELECT MIN(sal) FROM emp WHERE sal > 99999)`)
	if res.Rows[0][0].AsInt() != 0 {
		t.Fatalf("null scalar compare = %v", res.Rows[0])
	}
	// Multi-row scalar subquery errors.
	if _, err := s.Execute(`SELECT id FROM emp WHERE sal = (SELECT sal FROM emp WHERE dept = 1)`); err == nil {
		t.Fatal("multi-row scalar subquery accepted")
	}
	// Correlated subquery (free outer reference) errors clearly.
	if _, err := s.Execute(`SELECT id FROM emp e WHERE sal > (SELECT AVG(sal) FROM emp WHERE dept = e.dept)`); err == nil {
		t.Fatal("correlated subquery accepted")
	}
	// Subqueries in DML WHERE clauses.
	mustExec(t, s, `UPDATE emp SET sal = 0 WHERE dept IN (SELECT id FROM dept WHERE region = 'west')`)
	res = mustExec(t, s, `SELECT COUNT(*) FROM emp WHERE sal = 0`)
	if res.Rows[0][0].AsInt() != 30 {
		t.Fatalf("update-with-subquery affected = %v", res.Rows[0])
	}
	mustExec(t, s, `DELETE FROM emp WHERE sal < (SELECT MAX(sal) FROM emp) AND sal = 0`)
	res = mustExec(t, s, `SELECT COUNT(*) FROM emp`)
	if res.Rows[0][0].AsInt() != 30 {
		t.Fatalf("delete-with-subquery remaining = %v", res.Rows[0])
	}
}

func TestExistsDecorrelation(t *testing.T) {
	c := newTestCluster(t, Config{})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, `CREATE TABLE ord2 (oid BIGINT, pri VARCHAR(8), PRIMARY KEY(oid)) PARTITIONS 4`)
	mustExec(t, s, `CREATE TABLE li2 (lid BIGINT, oid BIGINT, late BIGINT, PRIMARY KEY(lid)) PARTITIONS 4`)
	for i := 0; i < 30; i++ {
		pri := "LOW"
		if i%3 == 0 {
			pri = "HIGH"
		}
		mustExec(t, s, fmt.Sprintf("INSERT INTO ord2 (oid, pri) VALUES (%d, '%s')", i, pri))
	}
	// Orders 0..19 have line items; late ones only on even orders.
	for i := 0; i < 40; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO li2 (lid, oid, late) VALUES (%d, %d, %d)", i, i/2, (i/2)%2))
	}

	// Correlated EXISTS (single equality + residual): orders having a
	// late line item → odd oids 1..19 → 10.
	res := mustExec(t, s, `SELECT COUNT(*) FROM ord2 o WHERE EXISTS
		(SELECT * FROM li2 l WHERE l.oid = o.oid AND l.late = 1)`)
	if res.Rows[0][0].AsInt() != 10 {
		t.Fatalf("EXISTS count = %v", res.Rows[0])
	}
	// NOT EXISTS anti form: orders with no line items at all → 20..29.
	res = mustExec(t, s, `SELECT COUNT(*) FROM ord2 o WHERE NOT EXISTS
		(SELECT * FROM li2 l WHERE l.oid = o.oid)`)
	if res.Rows[0][0].AsInt() != 10 {
		t.Fatalf("NOT EXISTS count = %v", res.Rows[0])
	}
	// Bare (unaliased) columns decorrelate via schema lookup.
	res = mustExec(t, s, `SELECT COUNT(*) FROM ord2 WHERE EXISTS
		(SELECT * FROM li2 WHERE li2.oid = ord2.oid AND late = 1) AND pri = 'HIGH'`)
	if res.Rows[0][0].AsInt() != 3 { // odd oids {1..19} ∩ HIGH {0,3,6..} = {3,9,15}
		t.Fatalf("EXISTS+residual count = %v", res.Rows[0])
	}
	// Uncorrelated EXISTS folds to a constant.
	res = mustExec(t, s, `SELECT COUNT(*) FROM ord2 WHERE EXISTS (SELECT * FROM li2 WHERE late = 99)`)
	if res.Rows[0][0].AsInt() != 0 {
		t.Fatalf("uncorrelated empty EXISTS = %v", res.Rows[0])
	}
	// Correlated inequality is rejected, not silently wrong.
	if _, err := s.Execute(`SELECT COUNT(*) FROM ord2 o WHERE EXISTS
		(SELECT * FROM li2 l WHERE l.oid < o.oid)`); err == nil {
		t.Fatal("inequality-correlated EXISTS accepted")
	}
}
