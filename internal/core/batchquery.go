package core

import (
	"fmt"

	"repro/internal/dn"
	"repro/internal/executor"
	"repro/internal/htap"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/vector"
)

// This file is the batch-mode (vectorized) twin of query.go's operator
// lowering: AP-classified plans with Plan.Vectorized set execute as
// BatchOperator trees exchanging ~1024-row column-major batches. Every
// build function mirrors its row-mode counterpart exactly — same shard
// fan-out, same gather order, same fragment scheduling — so the two
// modes are equivalent by construction; plan shapes without a batch
// kernel (GSI routes, point lookups, nested-loop joins) bridge through
// the row operators via RowToBatch.

// buildBatchOperator lowers a plan node to a batch operator tree,
// wrapping each node with an instrumented shim when the query runs under
// EXPLAIN ANALYZE (ctx.analyze non-nil), mirroring buildOperator.
func (cn *CN) buildBatchOperator(node optimizer.Node, ctx *queryCtx) (executor.BatchOperator, error) {
	op, err := cn.lowerBatchOperator(node, ctx)
	if err != nil || ctx.analyze == nil {
		return op, err
	}
	return executor.InstrumentBatch(op, ctx.statsFor(node)), nil
}

// lowerBatchOperator is the uninstrumented lowering behind
// buildBatchOperator.
func (cn *CN) lowerBatchOperator(node optimizer.Node, ctx *queryCtx) (executor.BatchOperator, error) {
	switch n := node.(type) {
	case *optimizer.ScanNode:
		return cn.buildBatchScan(n, ctx)
	case *optimizer.FilterNode:
		in, err := cn.buildBatchOperator(n.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &executor.BatchFilter{Input: in, Pred: n.Pred}, nil
	case *optimizer.ProjectNode:
		in, err := cn.buildBatchOperator(n.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &executor.BatchProject{Input: in, Exprs: n.Exprs, Names: n.Names}, nil
	case *optimizer.SortNode:
		in, err := cn.buildBatchOperator(n.Input, ctx)
		if err != nil {
			return nil, err
		}
		op := &executor.BatchSort{Input: in}
		for _, k := range n.Keys {
			op.Keys = append(op.Keys, executor.SortKey{Expr: k.Expr, Desc: k.Desc})
		}
		return op, nil
	case *optimizer.LimitNode:
		in, err := cn.buildBatchOperator(n.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &executor.BatchLimit{Input: in, N: n.N}, nil
	case *optimizer.JoinNode:
		if op, ok, err := cn.buildBatchPartitionWiseJoin(n, ctx); err != nil {
			return nil, err
		} else if ok {
			return op, nil
		}
		left, err := cn.buildBatchOperator(n.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := cn.buildBatchOperator(n.Right, ctx)
		if err != nil {
			return nil, err
		}
		if len(n.LeftKeys) > 0 {
			return &executor.BatchHashJoin{Left: left, Right: right,
				LeftKeys: n.LeftKeys, RightKeys: n.RightKeys,
				Residual: n.On, Outer: n.Outer}, nil
		}
		// Nested-loop joins have no batch kernel: bridge through the row
		// implementation (rare in AP plans — equi-joins dominate).
		return &executor.RowToBatch{Op: &executor.NestedLoopJoin{
			Left: &executor.BatchToRow{Op: left}, Right: &executor.BatchToRow{Op: right},
			On: n.On, Outer: n.Outer}}, nil
	case *optimizer.AggNode:
		return cn.buildBatchAgg(n, ctx)
	default:
		return nil, fmt.Errorf("core: cannot execute plan node %T in batch mode", node)
	}
}

// buildBatchAgg mirrors buildAgg: the MPP two-phase split when the input
// is a scan, a complete-mode hash aggregation otherwise.
func (cn *CN) buildBatchAgg(n *optimizer.AggNode, ctx *queryCtx) (executor.BatchOperator, error) {
	scan, scanInput := n.Input.(*optimizer.ScanNode)
	if n.TwoPhase && scanInput && len(scan.PointLookups) == 0 && scan.GSI == nil {
		return cn.buildBatchTwoPhaseAgg(n, scan, ctx)
	}
	in, err := cn.buildBatchOperator(n.Input, ctx)
	if err != nil {
		return nil, err
	}
	return &executor.BatchHashAgg{Input: in, GroupBy: n.GroupBy,
		Aggs: aggSpecs(n.Aggs), Mode: executor.AggComplete, Names: n.Names}, nil
}

// buildBatchTwoPhaseAgg fans one partial-aggregation batch fragment out
// per shard; partial states flow back as batches through bounded
// exchange queues and merge in a final-mode batch aggregation.
func (cn *CN) buildBatchTwoPhaseAgg(n *optimizer.AggNode, scan *optimizer.ScanNode, ctx *queryCtx) (executor.BatchOperator, error) {
	shards := scan.Shards
	if shards == nil {
		for i := 0; i < scan.Table.Shards; i++ {
			shards = append(shards, i)
		}
	}
	pushed := cn.pushableAgg(n, scan, ctx)
	scheds := []*htap.Scheduler{cn.sched}
	if ctx.mpp {
		scheds = nil
		for _, other := range cn.cluster.CNs() {
			scheds = append(scheds, other.sched)
		}
	}
	var assignments []executor.BatchFragmentAssignment
	for i, shard := range shards {
		src, err := cn.batchShardSource(scan, shard, ctx, pushed)
		if err != nil {
			return nil, err
		}
		var frag executor.BatchOperator = src
		if st := ctx.statsFor(scan); st != nil {
			// Mirror buildTwoPhaseAgg: the scan's stats slot is shared by
			// every shard fragment, summing rows across the fan-out.
			frag = executor.InstrumentBatch(src, st)
		}
		if pushed == nil {
			frag = &executor.BatchHashAgg{Input: frag, GroupBy: n.GroupBy,
				Aggs: aggSpecs(n.Aggs), Mode: executor.AggPartial}
		}
		assignments = append(assignments, executor.BatchFragmentAssignment{
			Op: frag, Sched: scheds[i%len(scheds)],
		})
	}
	gather := executor.RunBatchFragmentsUntil(ctx.group, assignments, executor.DefaultQueueHighWater, obs.Wall, ctx.s.deadline())
	finalGroup := finalGroupRefs(len(n.GroupBy))
	return &executor.BatchHashAgg{Input: gather, GroupBy: finalGroup,
		Aggs: aggSpecs(n.Aggs), Mode: executor.AggFinal, Names: n.Names}, nil
}

// buildBatchPartitionWiseJoin is the batch twin of
// buildPartitionWiseJoin: one shard-local batch hash join per partition
// group, no redistribution.
func (cn *CN) buildBatchPartitionWiseJoin(n *optimizer.JoinNode, ctx *queryCtx) (executor.BatchOperator, bool, error) {
	if !n.PartitionWise || len(n.LeftKeys) == 0 {
		return nil, false, nil
	}
	ls, lok := n.Left.(*optimizer.ScanNode)
	rs, rok := n.Right.(*optimizer.ScanNode)
	if !lok || !rok || len(ls.PointLookups) > 0 || len(rs.PointLookups) > 0 {
		return nil, false, nil
	}
	if ls.Table.Shards != rs.Table.Shards {
		return nil, false, nil
	}
	scheds := []*htap.Scheduler{cn.sched}
	if ctx.mpp {
		scheds = nil
		for _, other := range cn.cluster.CNs() {
			scheds = append(scheds, other.sched)
		}
	}
	var assignments []executor.BatchFragmentAssignment
	for shard := 0; shard < ls.Table.Shards; shard++ {
		var leftSrc, rightSrc executor.BatchOperator
		var err error
		leftSrc, err = cn.batchShardSource(ls, shard, ctx, nil)
		if err != nil {
			return nil, false, err
		}
		rightSrc, err = cn.batchShardSource(rs, shard, ctx, nil)
		if err != nil {
			return nil, false, err
		}
		if st := ctx.statsFor(ls); st != nil {
			leftSrc = executor.InstrumentBatch(leftSrc, st)
		}
		if st := ctx.statsFor(rs); st != nil {
			rightSrc = executor.InstrumentBatch(rightSrc, st)
		}
		frag := &executor.BatchHashJoin{Left: leftSrc, Right: rightSrc,
			LeftKeys: n.LeftKeys, RightKeys: n.RightKeys,
			Residual: n.On, Outer: n.Outer}
		assignments = append(assignments, executor.BatchFragmentAssignment{
			Op: frag, Sched: scheds[shard%len(scheds)]})
	}
	g := executor.RunBatchFragmentsUntil(ctx.group, assignments, executor.DefaultQueueHighWater, obs.Wall, ctx.s.deadline())
	g.Cols = n.Columns()
	return g, true, nil
}

// buildBatchScan lowers a table scan to batch sources. GSI routes and
// point lookups are row-shaped (scattered point reads) and bridge
// through the row scan; multi-shard AP scans fan out one batch fragment
// per shard, exactly like the row path.
func (cn *CN) buildBatchScan(scan *optimizer.ScanNode, ctx *queryCtx) (executor.BatchOperator, error) {
	cols := scan.Columns()
	if scan.GSI != nil || len(scan.PointLookups) > 0 || ctx.tx != nil {
		op, err := cn.buildScan(scan, ctx)
		if err != nil {
			return nil, err
		}
		return &executor.RowToBatch{Op: op}, nil
	}
	shards := scan.Shards
	if shards == nil {
		for i := 0; i < scan.Table.Shards; i++ {
			shards = append(shards, i)
		}
	}
	var assignments []executor.BatchFragmentAssignment
	for _, shard := range shards {
		src, err := cn.batchShardSource(scan, shard, ctx, nil)
		if err != nil {
			return nil, err
		}
		assignments = append(assignments, executor.BatchFragmentAssignment{Op: src, Sched: cn.sched})
	}
	g := executor.RunBatchFragmentsUntil(ctx.group, assignments, executor.DefaultQueueHighWater, obs.Wall, ctx.s.deadline())
	g.Cols = cols
	return g, nil
}

// batchShardSource builds the batch source for one shard of an AP scan:
// the DN columnarizes once at the source (WantBatch) — or answers
// zero-copy from its column index — and the batch crosses simnet
// without a pivot back to rows. Leader-fallback reads (no AP replica)
// scan rows through an ephemeral branch and columnarize CN-side.
func (cn *CN) batchShardSource(scan *optimizer.ScanNode, shard int, ctx *queryCtx, pushed *dn.PushAgg) (executor.BatchOperator, error) {
	if ctx.tx != nil {
		src, err := cn.shardSource(scan, shard, ctx, pushed)
		if err != nil {
			return nil, err
		}
		return &executor.RowToBatch{Op: src}, nil
	}
	dnName, err := cn.cluster.GMS.DNForShard(scan.Table.Name, shard)
	if err != nil {
		return nil, err
	}
	cn.cluster.GMS.RecordLoad(scan.Table.Name, shard, 1)
	physTable := scan.Table.PhysicalTableID(shard)
	cols := scan.Columns()

	target, minLSN := cn.apTarget(ctx, dnName)
	if target == dnName {
		// AP load routed to the RW leader (shared-resource configs):
		// row scan through an ephemeral branch, columnarized here.
		fetched := false
		return &executor.BatchCallbackSource{Cols: cols, Fetch: func() (*vector.Batch, error) {
			if fetched {
				return nil, nil
			}
			fetched = true
			tmp, err := cn.coord.Begin()
			if err != nil {
				return nil, err
			}
			defer tmp.Abort()
			rows, err := tmp.ScanReq(dnName, dn.ScanReq{
				Table: physTable, Filter: scan.Filter, Projection: scan.Projection,
			})
			if err != nil {
				return nil, err
			}
			if len(rows) == 0 {
				return nil, nil
			}
			return vector.FromRows(rows, len(rows[0])), nil
		}}, nil
	}
	req := dn.ROScanReq{
		Table: physTable, SnapshotTS: ctx.snapshot, MinLSN: minLSN,
		Filter: scan.Filter, Projection: scan.Projection,
		UseColumnIndex: scan.UseColumnIndex, Aggregate: pushed,
		WantBatch: true,
	}
	fetched := false
	return &executor.BatchCallbackSource{Cols: cols, Fetch: func() (*vector.Batch, error) {
		if fetched {
			return nil, nil
		}
		fetched = true
		resp, err := cn.coord.ScanROBatch(target, req)
		if err != nil {
			return nil, err
		}
		if resp.Batch != nil {
			return resp.Batch, nil
		}
		if len(resp.Rows) == 0 {
			return nil, nil
		}
		return vector.FromRows(resp.Rows, len(resp.Rows[0])), nil
	}}, nil
}
