package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/simnet"
	"repro/internal/types"
)

// TestRandomizedQueriesMatchModel is a differential test: randomly
// generated filters, aggregations and orderings run through the full
// distributed pipeline (parser → optimizer → routing → DN scans with
// pushdown → executor) and must match a direct in-memory evaluation
// over the same rows.
func TestRandomizedQueriesMatchModel(t *testing.T) {
	c := newTestCluster(t, Config{DNGroups: 2})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, `CREATE TABLE m (id BIGINT, a BIGINT, b BIGINT, g VARCHAR(4), PRIMARY KEY(id)) PARTITIONS 4`)

	type row struct {
		id, a, b int64
		g        string
	}
	rng := rand.New(rand.NewSource(99))
	var model []row
	const n = 300
	stmt := "INSERT INTO m (id, a, b, g) VALUES "
	for i := 0; i < n; i++ {
		r := row{id: int64(i), a: int64(rng.Intn(50)), b: int64(rng.Intn(1000) - 500),
			g: fmt.Sprintf("g%d", rng.Intn(4))}
		model = append(model, r)
		if i > 0 {
			stmt += ", "
		}
		stmt += fmt.Sprintf("(%d, %d, %d, '%s')", r.id, r.a, r.b, r.g)
	}
	mustExec(t, s, stmt)

	// 1. Random range/equality filters with COUNT + SUM cross-check.
	for trial := 0; trial < 30; trial++ {
		lo := int64(rng.Intn(50))
		hi := lo + int64(rng.Intn(30))
		bcut := int64(rng.Intn(1000) - 500)
		g := fmt.Sprintf("g%d", rng.Intn(4))
		var variants = []struct {
			where string
			match func(row) bool
		}{
			{fmt.Sprintf("a BETWEEN %d AND %d", lo, hi),
				func(r row) bool { return r.a >= lo && r.a <= hi }},
			{fmt.Sprintf("a >= %d AND b < %d", lo, bcut),
				func(r row) bool { return r.a >= lo && r.b < bcut }},
			{fmt.Sprintf("g = '%s' OR a < %d", g, lo),
				func(r row) bool { return r.g == g || r.a < lo }},
			{fmt.Sprintf("NOT (a > %d) AND g <> '%s'", hi, g),
				func(r row) bool { return !(r.a > hi) && r.g != g }},
			{fmt.Sprintf("a IN (%d, %d, %d)", lo, lo+3, lo+7),
				func(r row) bool { return r.a == lo || r.a == lo+3 || r.a == lo+7 }},
		}
		v := variants[trial%len(variants)]
		var wantCount, wantSum int64
		for _, r := range model {
			if v.match(r) {
				wantCount++
				wantSum += r.b
			}
		}
		res := mustExec(t, s, fmt.Sprintf("SELECT COUNT(*), SUM(b) FROM m WHERE %s", v.where))
		gotCount := res.Rows[0][0].AsInt()
		if gotCount != wantCount {
			t.Fatalf("WHERE %s: count %d, want %d", v.where, gotCount, wantCount)
		}
		if wantCount > 0 {
			if gotSum := res.Rows[0][1].AsInt(); gotSum != wantSum {
				t.Fatalf("WHERE %s: sum %d, want %d", v.where, gotSum, wantSum)
			}
		}
	}

	// 2. Grouped aggregation matches a model group-by.
	res := mustExec(t, s, "SELECT g, COUNT(*), SUM(a), MIN(b), MAX(b) FROM m GROUP BY g ORDER BY g")
	type agg struct {
		count, sum, minB, maxB int64
	}
	want := map[string]*agg{}
	for _, r := range model {
		a, ok := want[r.g]
		if !ok {
			a = &agg{minB: 1 << 62, maxB: -(1 << 62)}
			want[r.g] = a
		}
		a.count++
		a.sum += r.a
		if r.b < a.minB {
			a.minB = r.b
		}
		if r.b > a.maxB {
			a.maxB = r.b
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("groups: %d vs %d", len(res.Rows), len(want))
	}
	for _, rrow := range res.Rows {
		w := want[rrow[0].AsString()]
		if rrow[1].AsInt() != w.count || rrow[2].AsInt() != w.sum ||
			rrow[3].AsInt() != w.minB || rrow[4].AsInt() != w.maxB {
			t.Fatalf("group %s: got %v want %+v", rrow[0].AsString(), rrow, *w)
		}
	}

	// 3. ORDER BY + LIMIT matches a model sort.
	res = mustExec(t, s, "SELECT id FROM m ORDER BY b DESC, id LIMIT 10")
	sorted := append([]row(nil), model...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].b != sorted[j].b {
			return sorted[i].b > sorted[j].b
		}
		return sorted[i].id < sorted[j].id
	})
	for i := 0; i < 10; i++ {
		if res.Rows[i][0].AsInt() != sorted[i].id {
			t.Fatalf("order[%d] = %v, want %d", i, res.Rows[i][0], sorted[i].id)
		}
	}

	// 4. Mutations keep the model in sync: random updates then recheck.
	for trial := 0; trial < 10; trial++ {
		id := int64(rng.Intn(n))
		delta := int64(rng.Intn(100))
		mustExec(t, s, fmt.Sprintf("UPDATE m SET b = b + %d WHERE id = %d", delta, id))
		model[id].b += delta
	}
	var wantTotal int64
	for _, r := range model {
		wantTotal += r.b
	}
	res = mustExec(t, s, "SELECT SUM(b) FROM m")
	if res.Rows[0][0].AsInt() != wantTotal {
		t.Fatalf("post-update sum %v, want %d", res.Rows[0][0], wantTotal)
	}
}

// TestRandomizedJoinMatchesModel cross-checks a two-table equi-join
// against a nested-loop model evaluation.
func TestRandomizedJoinMatchesModel(t *testing.T) {
	c := newTestCluster(t, Config{DNGroups: 2})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, `CREATE TABLE l (id BIGINT, k BIGINT, v BIGINT, PRIMARY KEY(id)) PARTITIONS 4`)
	mustExec(t, s, `CREATE TABLE r (id BIGINT, k BIGINT, w BIGINT, PRIMARY KEY(id)) PARTITIONS 4`)
	rng := rand.New(rand.NewSource(7))
	type lr struct{ id, k, v int64 }
	var ls, rs []lr
	stmtL := "INSERT INTO l (id, k, v) VALUES "
	for i := 0; i < 120; i++ {
		e := lr{int64(i), int64(rng.Intn(20)), int64(rng.Intn(100))}
		ls = append(ls, e)
		if i > 0 {
			stmtL += ", "
		}
		stmtL += fmt.Sprintf("(%d, %d, %d)", e.id, e.k, e.v)
	}
	mustExec(t, s, stmtL)
	stmtR := "INSERT INTO r (id, k, w) VALUES "
	for i := 0; i < 80; i++ {
		e := lr{int64(i), int64(rng.Intn(20)), int64(rng.Intn(100))}
		rs = append(rs, e)
		if i > 0 {
			stmtR += ", "
		}
		stmtR += fmt.Sprintf("(%d, %d, %d)", e.id, e.k, e.v)
	}
	mustExec(t, s, stmtR)

	// Model: inner join on k with a residual range filter.
	var wantCount, wantSum int64
	for _, a := range ls {
		for _, b := range rs {
			if a.k == b.k && a.v > 20 {
				wantCount++
				wantSum += a.v + b.v // b.w column holds e.v (inserted above)
			}
		}
	}
	res := mustExec(t, s, `
		SELECT COUNT(*), SUM(l.v + r.w) FROM l JOIN r ON l.k = r.k WHERE l.v > 20`)
	if res.Rows[0][0].AsInt() != wantCount {
		t.Fatalf("join count %v, want %d", res.Rows[0][0], wantCount)
	}
	if wantCount > 0 && res.Rows[0][1].AsInt() != wantSum {
		t.Fatalf("join sum %v, want %d", res.Rows[0][1], wantSum)
	}
}

var _ = types.Int // keep types import for helper reuse
