package core_test

// Row/batch/encoded equivalence harness (the batch engine's correctness
// gate): every TPC-H query runs on three identically seeded clusters —
// one forced to row-at-a-time operators via Config.VectorizedOff, one
// with the vectorized batch engine over raw (unencoded) column vectors
// via Config.CompressionOff, and one with the defaults, where the batch
// engine executes directly on dictionary/RLE/bit-packed vectors — and
// the results must match across all three. Queries with ORDER BY compare
// positionally; the rest compare as multisets. Floats get a small
// epsilon: partial-aggregate merge order is deterministic per mode but
// the column-index pushdown path may fold in a different order than the
// CN-side fold.

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/colindex"
	"repro/internal/core"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/workload/tpch"
)

const equivEps = 1e-6

// equivCluster builds a loaded TPC-H cluster with AP replicas serving
// column indexes on the scan-heavy tables.
func equivCluster(t *testing.T, vectorizedOff, compressionOff bool) *core.Session {
	t.Helper()
	// The low TP/AP threshold pushes the scan-heavy queries into the AP
	// class at this small scale factor (point lookups cost 10 and stay TP).
	c, err := core.NewCluster(core.Config{
		ROsPerDN: 1, VectorizedOff: vectorizedOff, CompressionOff: compressionOff,
		TPCostThreshold: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Stop)
	s := c.CN(simnet.DC1).NewSession()
	if err := tpch.Load(s, tpch.Config{SF: 0.05, Partitions: 4, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableAPReplicas(1); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitROConvergence(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	for _, tbl := range []string{"lineitem", "orders"} {
		if err := c.EnableColumnIndexes(tbl); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// canonKey renders a row for multiset comparison, rounding floats so an
// epsilon-sized difference cannot reorder the canonical sort.
func canonKey(r types.Row) string {
	var b strings.Builder
	for _, v := range r {
		if v.K == types.KindFloat {
			fmt.Fprintf(&b, "|%.4f", v.F)
		} else {
			fmt.Fprintf(&b, "|%v", v)
		}
	}
	return b.String()
}

func sameValue(a, b types.Value) bool {
	if a.IsNull() || b.IsNull() {
		return a.IsNull() == b.IsNull()
	}
	if a.K == types.KindFloat || b.K == types.KindFloat {
		diff := a.AsFloat() - b.AsFloat()
		if diff < 0 {
			diff = -diff
		}
		scale := a.AsFloat()
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		return diff <= equivEps*scale
	}
	return a.Compare(b) == 0
}

func assertEquivalent(t *testing.T, label string, ordered bool, row, batch []types.Row) {
	t.Helper()
	if len(row) != len(batch) {
		t.Fatalf("%s: row mode %d rows, batch mode %d rows", label, len(row), len(batch))
	}
	if !ordered {
		row = append([]types.Row(nil), row...)
		batch = append([]types.Row(nil), batch...)
		sort.Slice(row, func(i, j int) bool { return canonKey(row[i]) < canonKey(row[j]) })
		sort.Slice(batch, func(i, j int) bool { return canonKey(batch[i]) < canonKey(batch[j]) })
	}
	for i := range row {
		if len(row[i]) != len(batch[i]) {
			t.Fatalf("%s row %d: width %d vs %d", label, i, len(row[i]), len(batch[i]))
		}
		for j := range row[i] {
			if !sameValue(row[i][j], batch[i][j]) {
				t.Fatalf("%s row %d col %d: row-mode %v vs batch-mode %v",
					label, i, j, row[i][j], batch[i][j])
			}
		}
	}
}

// TestTPCHRowBatchEquivalence runs all 22 queries in three execution
// modes — row-at-a-time, batch over raw vectors, and batch directly on
// encoded vectors — and asserts identical results.
func TestTPCHRowBatchEquivalence(t *testing.T) {
	rowSess := equivCluster(t, true, true)
	batchSess := equivCluster(t, false, true)
	encSess := equivCluster(t, false, false)
	colindex.ResetScanStats()
	sawBatch := false
	for _, q := range tpch.Queries() {
		rowRes, err := rowSess.Execute(q.SQL)
		if err != nil {
			t.Fatalf("Q%d row mode: %v", q.ID, err)
		}
		if rowRes.Plan.Vectorized {
			t.Fatalf("Q%d: VectorizedOff cluster produced a batch plan", q.ID)
		}
		batchRes, err := batchSess.Execute(q.SQL)
		if err != nil {
			t.Fatalf("Q%d batch mode: %v", q.ID, err)
		}
		if batchRes.Plan.Vectorized {
			sawBatch = true
		}
		encRes, err := encSess.Execute(q.SQL)
		if err != nil {
			t.Fatalf("Q%d encoded mode: %v", q.ID, err)
		}
		ordered := strings.Contains(strings.ToUpper(q.SQL), "ORDER BY")
		assertEquivalent(t, fmt.Sprintf("Q%d (%s)", q.ID, q.Name), ordered, rowRes.Rows, batchRes.Rows)
		assertEquivalent(t, fmt.Sprintf("Q%d (%s) encoded", q.ID, q.Name), ordered, rowRes.Rows, encRes.Rows)
	}
	if !sawBatch {
		t.Fatal("no query executed in batch mode; the AP default is not wired")
	}
	if st := colindex.ScanStats(); st.EncodedScans == 0 {
		t.Fatal("no column-index scan touched an encoded vector; the encoded leg is not exercising compression")
	}
}

// TestBatchModeSelection checks the optimizer's mode choice: AP plans
// vectorize by default, TP point reads stay row-at-a-time.
func TestBatchModeSelection(t *testing.T) {
	s := equivCluster(t, false, false)
	res, err := s.Execute("SELECT COUNT(*) FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.IsAP || !res.Plan.Vectorized {
		t.Fatalf("full scan should be AP+batch, got AP=%v batch=%v", res.Plan.IsAP, res.Plan.Vectorized)
	}
	if !strings.Contains(res.Plan.Explain(), "exec=batch") {
		t.Fatalf("explain missing exec=batch:\n%s", res.Plan.Explain())
	}
	res, err = s.Execute("SELECT o_totalprice FROM orders WHERE o_orderkey = 1")
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.IsAP || res.Plan.Vectorized {
		t.Fatalf("point read should be TP+row, got AP=%v batch=%v", res.Plan.IsAP, res.Plan.Vectorized)
	}
}
