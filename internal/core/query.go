package core

import (
	"fmt"
	"time"

	"repro/internal/admission"
	"repro/internal/dn"
	"repro/internal/executor"
	"repro/internal/hlc"
	"repro/internal/htap"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/retry"
	"repro/internal/sql"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/wal"
)

// apMemRetry backs an AP query off briefly when its working-memory
// reservation is rejected: three quick jittered tries ride out a
// transient squeeze (TP preemption, a big AP query finishing) without
// holding the statement hostage.
var apMemRetry = retry.Policy{Attempts: 3, Base: 2 * time.Millisecond, Cap: 10 * time.Millisecond, Jitter: 0.5}

// queryCtx carries per-query execution state through operator building.
type queryCtx struct {
	s        *Session
	tx       *txn.Tx       // TP reads (branch-scoped); nil in AP mode
	snapshot hlc.Timestamp // AP snapshot
	ap       bool
	group    htap.Group // pool classification (isolation-off forces TP)
	mpp      bool
	// analyze, when non-nil, requests EXPLAIN ANALYZE instrumentation:
	// operator lowering wraps every node and records its rows-out and
	// wall time here. Populated during (single-goroutine) lowering only.
	analyze map[optimizer.Node]*obs.OpStats
}

// statsFor returns (creating on demand) the stats slot for a plan node;
// nil when the query is not being analyzed.
func (ctx *queryCtx) statsFor(n optimizer.Node) *obs.OpStats {
	if ctx.analyze == nil {
		return nil
	}
	st := ctx.analyze[n]
	if st == nil {
		st = &obs.OpStats{}
		ctx.analyze[n] = st
	}
	return st
}

// execSelect plans and runs a SELECT.
func (s *Session) execSelect(sel *sql.Select) (*Result, error) {
	var err error
	if sel.Where, err = s.rewriteSubqueries(sel.Where); err != nil {
		return nil, err
	}
	if sel.Having, err = s.rewriteSubqueries(sel.Having); err != nil {
		return nil, err
	}
	plan, err := s.cn.planFor(sel, s.trace())
	if err != nil {
		return nil, err
	}
	rows, err := s.runPlan(plan, nil)
	if err != nil {
		return nil, err
	}
	return &Result{Columns: plan.Root.Columns(), Rows: rows, Plan: plan}, nil
}

// runPlan executes a physical plan under the HTAP routing rules: TP
// plans read through transaction branches on RW leaders in the TP pool;
// AP plans read RO replicas at a snapshot in the AP pool (unless
// isolation is off, Fig. 9 config 1).
func (s *Session) runPlan(plan *optimizer.Plan, analyze map[optimizer.Node]*obs.OpStats) ([]types.Row, error) {
	// SELECTs take their admission slot here, after the optimizer has
	// classified the plan: AP plans queue (and brown out) behind TP.
	release, err := s.admit(plan.IsAP)
	if err != nil {
		return nil, err
	}
	defer release()
	ctx := &queryCtx{s: s, ap: plan.IsAP, mpp: plan.MPP, analyze: analyze}
	ctx.group = htap.GroupTP
	if plan.IsAP && !s.cn.cluster.cfg.IsolationOff {
		ctx.group = htap.GroupAP
	}
	if plan.IsAP {
		snap, err := s.cn.coord.Oracle().SnapshotTS()
		if err != nil {
			return nil, err
		}
		ctx.snapshot = snap
	} else {
		tx, done, err := s.txnFor()
		if err != nil {
			return nil, err
		}
		defer func() {
			// Read-only execution: the auto-commit path releases branches.
			_ = done(nil)
		}()
		ctx.tx = tx
	}
	// AP queries reserve working memory from the CN's AP region before
	// running; TP preemption may shrink that region (§VI-D). A rejected
	// reservation is transient overload — TP preemption shrinks the
	// region and finishing AP queries give memory back — so it backs off
	// briefly and, if still starved, sheds as a retryable ErrOverloaded
	// counted with the other admission sheds, rather than surfacing an
	// opaque fatal error.
	if plan.IsAP {
		est := int64(plan.Root.EstRows())*96 + 4096
		memErr := retry.DoUntil(obs.Wall, apMemRetry, s.deadline(),
			func(error) bool { return true },
			func() error { return s.cn.sched.Mem.Reserve(ctx.group, est) })
		if memErr != nil {
			s.cn.admMetrics.Shed.Add(1)
			return nil, fmt.Errorf("core: AP memory admission: %w: %v", admission.ErrOverloaded, memErr)
		}
		defer s.cn.sched.Mem.Release(ctx.group, est)
	}
	// Shard fetches and partial aggregation run as scheduled fragment
	// jobs in the classified pool (quota-gated for AP, §VI-D); the final
	// merge pulls from their bounded exchange queues on this goroutine,
	// so a blocked consumer can never starve the workers its producers
	// need. AP plans default to the vectorized batch engine; row mode
	// remains the TP path and the Config.VectorizedOff baseline.
	if plan.Vectorized {
		root, err := s.cn.buildBatchOperator(plan.Root, ctx)
		if err != nil {
			return nil, err
		}
		return executor.CollectBatch(root)
	}
	root, err := s.cn.buildOperator(plan.Root, ctx)
	if err != nil {
		return nil, err
	}
	return executor.Collect(root)
}

// buildOperator lowers a plan node to an executor operator tree,
// wrapping each node with an instrumented shim when the query runs under
// EXPLAIN ANALYZE (ctx.analyze non-nil). Plain queries lower directly.
func (cn *CN) buildOperator(node optimizer.Node, ctx *queryCtx) (executor.Operator, error) {
	op, err := cn.lowerOperator(node, ctx)
	if err != nil || ctx.analyze == nil {
		return op, err
	}
	return executor.Instrument(op, ctx.statsFor(node)), nil
}

// lowerOperator is the uninstrumented lowering behind buildOperator.
func (cn *CN) lowerOperator(node optimizer.Node, ctx *queryCtx) (executor.Operator, error) {
	switch n := node.(type) {
	case *optimizer.ScanNode:
		return cn.buildScan(n, ctx)
	case *optimizer.FilterNode:
		in, err := cn.buildOperator(n.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &executor.Filter{Input: in, Pred: n.Pred}, nil
	case *optimizer.ProjectNode:
		in, err := cn.buildOperator(n.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &executor.Project{Input: in, Exprs: n.Exprs, Names: n.Names}, nil
	case *optimizer.SortNode:
		in, err := cn.buildOperator(n.Input, ctx)
		if err != nil {
			return nil, err
		}
		op := &executor.Sort{Input: in}
		for _, k := range n.Keys {
			op.Keys = append(op.Keys, executor.SortKey{Expr: k.Expr, Desc: k.Desc})
		}
		return op, nil
	case *optimizer.LimitNode:
		in, err := cn.buildOperator(n.Input, ctx)
		if err != nil {
			return nil, err
		}
		return &executor.Limit{Input: in, N: n.N}, nil
	case *optimizer.JoinNode:
		if op, ok, err := cn.buildPartitionWiseJoin(n, ctx); err != nil {
			return nil, err
		} else if ok {
			return op, nil
		}
		left, err := cn.buildOperator(n.Left, ctx)
		if err != nil {
			return nil, err
		}
		right, err := cn.buildOperator(n.Right, ctx)
		if err != nil {
			return nil, err
		}
		if len(n.LeftKeys) > 0 {
			return &executor.HashJoin{Left: left, Right: right,
				LeftKeys: n.LeftKeys, RightKeys: n.RightKeys,
				Residual: n.On, Outer: n.Outer}, nil
		}
		return &executor.NestedLoopJoin{Left: left, Right: right, On: n.On, Outer: n.Outer}, nil
	case *optimizer.AggNode:
		return cn.buildAgg(n, ctx)
	default:
		return nil, fmt.Errorf("core: cannot execute plan node %T", node)
	}
}

// aggSpecs converts optimizer aggregates to executor specs.
func aggSpecs(items []optimizer.AggItem) []executor.AggSpec {
	out := make([]executor.AggSpec, len(items))
	for i, a := range items {
		out[i] = executor.AggSpec{Func: a.Func, Arg: a.Arg, Star: a.Star, Distinct: a.Distinct}
	}
	return out
}

// buildAgg lowers aggregation, using the MPP two-phase split when the
// input is a scan: per-shard fragments compute partial aggregates near
// the data (or fully inside the column index), and the coordinator
// merges (§VI-C).
func (cn *CN) buildAgg(n *optimizer.AggNode, ctx *queryCtx) (executor.Operator, error) {
	scan, scanInput := n.Input.(*optimizer.ScanNode)
	if n.TwoPhase && scanInput && len(scan.PointLookups) == 0 && scan.GSI == nil {
		return cn.buildTwoPhaseAgg(n, scan, ctx)
	}
	in, err := cn.buildOperator(n.Input, ctx)
	if err != nil {
		return nil, err
	}
	return &executor.HashAgg{Input: in, GroupBy: n.GroupBy,
		Aggs: aggSpecs(n.Aggs), Mode: executor.AggComplete, Names: n.Names}, nil
}

// buildTwoPhaseAgg fans one partial-aggregation fragment out per shard.
func (cn *CN) buildTwoPhaseAgg(n *optimizer.AggNode, scan *optimizer.ScanNode, ctx *queryCtx) (executor.Operator, error) {
	shards := scan.Shards
	if shards == nil {
		for i := 0; i < scan.Table.Shards; i++ {
			shards = append(shards, i)
		}
	}
	pushed := cn.pushableAgg(n, scan, ctx)
	scheds := []*htap.Scheduler{cn.sched}
	if ctx.mpp {
		// MPP: spread fragments across every CN's scheduler (§VI-C Task
		// Scheduler distributing tasks to CN nodes).
		scheds = nil
		for _, other := range cn.cluster.CNs() {
			scheds = append(scheds, other.sched)
		}
	}
	var assignments []executor.FragmentAssignment
	for i, shard := range shards {
		src, err := cn.shardSource(scan, shard, ctx, pushed)
		if err != nil {
			return nil, err
		}
		var frag executor.Operator = src
		if st := ctx.statsFor(scan); st != nil {
			// The scan never passes through buildOperator here (fragments
			// consume shard sources directly), so attach its stats to each
			// source; the shared slot sums rows across shards.
			frag = executor.Instrument(src, st)
		}
		if pushed == nil {
			// Partial aggregation runs in the fragment, near its shard.
			frag = &executor.HashAgg{Input: frag, GroupBy: n.GroupBy,
				Aggs: aggSpecs(n.Aggs), Mode: executor.AggPartial}
		}
		assignments = append(assignments, executor.FragmentAssignment{
			Op: frag, Sched: scheds[i%len(scheds)],
		})
	}
	gather := executor.RunFragments(ctx.group, assignments)
	finalGroup := finalGroupRefs(len(n.GroupBy))
	return &executor.HashAgg{Input: gather, GroupBy: finalGroup,
		Aggs: aggSpecs(n.Aggs), Mode: executor.AggFinal, Names: n.Names}, nil
}

// finalGroupRefs builds the final-merge group keys: after the partial
// phase, group columns land at positions 0..k-1.
func finalGroupRefs(k int) []sql.Expr {
	out := make([]sql.Expr, k)
	for i := range out {
		out[i] = &sql.ColumnRef{Column: fmt.Sprintf("g%d", i), Index: i}
	}
	return out
}

// pushableAgg decides whether the whole partial aggregation can be
// pushed into the column index (§VI-E): AP column-index scan, group-by
// and aggregate arguments all plain schema columns, no DISTINCT.
func (cn *CN) pushableAgg(n *optimizer.AggNode, scan *optimizer.ScanNode, ctx *queryCtx) *dn.PushAgg {
	if !ctx.ap || !scan.UseColumnIndex {
		return nil
	}
	pa := &dn.PushAgg{}
	for _, g := range n.GroupBy {
		c, ok := g.(*sql.ColumnRef)
		if !ok || c.Index < 0 {
			return nil
		}
		pa.GroupBy = append(pa.GroupBy, c.Index)
	}
	for _, a := range n.Aggs {
		if a.Distinct {
			return nil
		}
		spec := dn.PushAggSpec{Func: a.Func, Star: a.Star}
		if !a.Star {
			if c, ok := a.Arg.(*sql.ColumnRef); ok && c.Index >= 0 {
				spec.Col = c.Index
			} else if boundExpr(a.Arg) {
				// Scalar expressions over schema columns push down too
				// (§VI-E offloads e.g. SUM(l_extendedprice*(1-l_discount))).
				spec.Expr = a.Arg
			} else {
				return nil
			}
		}
		pa.Aggs = append(pa.Aggs, spec)
	}
	return pa
}

// boundExpr reports whether every column reference in e is bound.
func boundExpr(e sql.Expr) bool {
	ok := true
	sql.Walk(e, func(n sql.Expr) bool {
		if c, isRef := n.(*sql.ColumnRef); isRef && c.Index < 0 {
			ok = false
			return false
		}
		if f, isF := n.(*sql.FuncCall); isF && f.IsAggregate() {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// buildPartitionWiseJoin executes a partition-wise join (§II-B): both
// sides share a table group and join on the partition key, so shard i
// of the left table only ever matches shard i of the right. Each
// partition group becomes one join fragment running near its data — no
// redistribution, no cross-shard build table.
func (cn *CN) buildPartitionWiseJoin(n *optimizer.JoinNode, ctx *queryCtx) (executor.Operator, bool, error) {
	if !n.PartitionWise || len(n.LeftKeys) == 0 {
		return nil, false, nil
	}
	ls, lok := n.Left.(*optimizer.ScanNode)
	rs, rok := n.Right.(*optimizer.ScanNode)
	if !lok || !rok || len(ls.PointLookups) > 0 || len(rs.PointLookups) > 0 {
		return nil, false, nil
	}
	if ls.Table.Shards != rs.Table.Shards {
		return nil, false, nil
	}
	scheds := []*htap.Scheduler{cn.sched}
	if ctx.mpp {
		scheds = nil
		for _, other := range cn.cluster.CNs() {
			scheds = append(scheds, other.sched)
		}
	}
	var assignments []executor.FragmentAssignment
	for shard := 0; shard < ls.Table.Shards; shard++ {
		var leftSrc, rightSrc executor.Operator
		var err error
		leftSrc, err = cn.shardSource(ls, shard, ctx, nil)
		if err != nil {
			return nil, false, err
		}
		rightSrc, err = cn.shardSource(rs, shard, ctx, nil)
		if err != nil {
			return nil, false, err
		}
		if st := ctx.statsFor(ls); st != nil {
			leftSrc = executor.Instrument(leftSrc, st)
		}
		if st := ctx.statsFor(rs); st != nil {
			rightSrc = executor.Instrument(rightSrc, st)
		}
		frag := &executor.HashJoin{Left: leftSrc, Right: rightSrc,
			LeftKeys: n.LeftKeys, RightKeys: n.RightKeys,
			Residual: n.On, Outer: n.Outer}
		assignments = append(assignments, executor.FragmentAssignment{
			Op: frag, Sched: scheds[shard%len(scheds)]})
	}
	g := executor.RunFragments(ctx.group, assignments)
	g.Cols = n.Columns()
	return g, true, nil
}

// buildScan lowers a table scan: GSI routes, point lookups, or
// per-shard sources gathered together.
func (cn *CN) buildScan(scan *optimizer.ScanNode, ctx *queryCtx) (executor.Operator, error) {
	cols := scan.Columns()
	if scan.GSI != nil {
		rows, err := cn.gsiRows(scan, ctx)
		if err != nil {
			return nil, err
		}
		return executor.NewRowsSource(cols, rows), nil
	}
	if len(scan.PointLookups) > 0 {
		rows, err := cn.pointRows(scan, ctx)
		if err != nil {
			return nil, err
		}
		return executor.NewRowsSource(cols, rows), nil
	}
	shards := scan.Shards
	if shards == nil {
		for i := 0; i < scan.Table.Shards; i++ {
			shards = append(shards, i)
		}
	}
	if ctx.tx != nil {
		if len(shards) == 1 || cn.cluster.cfg.NoBatch {
			// Single shard, or legacy mode: sequential shard scans inside
			// the transaction.
			inputs := make([]executor.Operator, 0, len(shards))
			for _, shard := range shards {
				src, err := cn.shardSource(scan, shard, ctx, nil)
				if err != nil {
					return nil, err
				}
				inputs = append(inputs, src)
			}
			if len(inputs) == 1 {
				return inputs[0], nil
			}
			return &executor.Gather{Cols: cols, Inputs: inputs}, nil
		}
		// TP fast path: fan the shard scans out in parallel under the
		// transaction (one branch RPC per shard, concurrently — the same
		// shape as the 2PC prepare fan-out), so a multi-shard TP statement
		// pays one round trip, not one per shard.
		fetched := false
		return &executor.CallbackSource{Cols: cols, Fetch: func() ([]types.Row, error) {
			if fetched {
				return nil, nil
			}
			fetched = true
			return cn.parallelTxScan(scan, shards, ctx)
		}}, nil
	}
	// AP path: each shard fetch is a scheduled fragment so the CN's
	// quota gates the heavy work.
	var assignments []executor.FragmentAssignment
	for _, shard := range shards {
		src, err := cn.shardSource(scan, shard, ctx, nil)
		if err != nil {
			return nil, err
		}
		assignments = append(assignments, executor.FragmentAssignment{Op: src, Sched: cn.sched})
	}
	g := executor.RunFragments(ctx.group, assignments)
	g.Cols = cols
	return g, nil
}

// parallelTxScan runs one branch-scoped ScanReq per shard concurrently
// and concatenates the results in shard order (deterministic output).
func (cn *CN) parallelTxScan(scan *optimizer.ScanNode, shards []int, ctx *queryCtx) ([]types.Row, error) {
	type shardTarget struct {
		dn    string
		table uint32
	}
	targets := make([]shardTarget, len(shards))
	for i, shard := range shards {
		dnName, err := cn.cluster.GMS.DNForShard(scan.Table.Name, shard)
		if err != nil {
			return nil, err
		}
		cn.cluster.GMS.RecordLoad(scan.Table.Name, shard, 1)
		targets[i] = shardTarget{dn: dnName, table: scan.Table.PhysicalTableID(shard)}
	}
	rows := make([][]types.Row, len(targets))
	errs := make(chan error, len(targets))
	for i, tg := range targets {
		go func(i int, tg shardTarget) {
			rs, err := ctx.tx.ScanReq(tg.dn, dn.ScanReq{
				Table: tg.table, Filter: scan.Filter, Projection: scan.Projection,
			})
			rows[i] = rs
			errs <- err
		}(i, tg)
	}
	var firstErr error
	for range targets {
		if err := <-errs; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	out := []types.Row{}
	for _, rs := range rows {
		out = append(out, rs...)
	}
	return out, nil
}

// pointGroup collects one DN's share of a multi-point statement,
// remembering each key's position in statement order.
type pointGroup struct {
	dn   string
	gets []dn.PointGet
	pos  []int
}

// pointRows fetches the scan's pinned primary keys. Fast path: keys are
// grouped by owning DN and each group goes out as ONE MultiGet RPC, all
// DNs in parallel — a statement touching K keys on N DNs pays N round
// trips instead of K (the Fig. 7 point-read path). Results are
// reassembled in statement key order, so output matches the per-key path
// exactly.
func (cn *CN) pointRows(scan *optimizer.ScanNode, ctx *queryCtx) ([]types.Row, error) {
	if cn.cluster.cfg.NoBatch {
		return cn.pointRowsSeq(scan, ctx)
	}
	groups := make(map[string]*pointGroup)
	var order []*pointGroup // deterministic first-seen fan-out order
	for k, pk := range scan.PointLookups {
		shard := scan.Table.ShardOfPK(pk)
		dnName, err := cn.cluster.GMS.DNForShard(scan.Table.Name, shard)
		if err != nil {
			return nil, err
		}
		cn.cluster.GMS.RecordLoad(scan.Table.Name, shard, 1)
		g := groups[dnName]
		if g == nil {
			g = &pointGroup{dn: dnName}
			groups[dnName] = g
			order = append(order, g)
		}
		g.gets = append(g.gets, dn.PointGet{Table: scan.Table.PhysicalTableID(shard), PK: pk})
		g.pos = append(g.pos, k)
	}
	// results is indexed by statement key position; concurrent fetches
	// write disjoint entries.
	results := make([]dn.ReadResp, len(scan.PointLookups))
	fetch := func(g *pointGroup) error {
		var rs []dn.ReadResp
		var err error
		if ctx.tx != nil {
			rs, err = ctx.tx.MultiGet(g.dn, g.gets)
		} else {
			target, minLSN := cn.apTarget(ctx, g.dn)
			if target == g.dn {
				// No RO: read through an ephemeral branch on the leader.
				tmp, terr := cn.coord.Begin()
				if terr != nil {
					return terr
				}
				rs, err = tmp.MultiGet(g.dn, g.gets)
				_ = tmp.Abort()
			} else {
				rs, err = cn.coord.MultiGetRO(target, g.gets, ctx.snapshot, minLSN)
			}
		}
		if err != nil {
			return err
		}
		for i, r := range rs {
			results[g.pos[i]] = r
		}
		return nil
	}
	if len(order) == 1 {
		if err := fetch(order[0]); err != nil {
			return nil, err
		}
	} else {
		errs := make(chan error, len(order))
		for _, g := range order {
			go func(g *pointGroup) { errs <- fetch(g) }(g)
		}
		var firstErr error
		for range order {
			if err := <-errs; err != nil && firstErr == nil {
				firstErr = err
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}
	var out []types.Row
	for _, r := range results {
		if !r.OK {
			continue
		}
		// The pushed filter may carry residual conditions beyond the PK.
		if scan.Filter != nil {
			v, err := sql.Eval(scan.Filter, r.Row)
			if err != nil {
				return nil, err
			}
			if !v.IsTruthy() {
				continue
			}
		}
		out = append(out, r.Row)
	}
	return out, nil
}

// pointRowsSeq is the legacy per-key path (Config.NoBatch): one RPC per
// key, kept as the equivalence baseline for the fast path.
func (cn *CN) pointRowsSeq(scan *optimizer.ScanNode, ctx *queryCtx) ([]types.Row, error) {
	var out []types.Row
	for _, pk := range scan.PointLookups {
		shard := scan.Table.ShardOfPK(pk)
		dnName, err := cn.cluster.GMS.DNForShard(scan.Table.Name, shard)
		if err != nil {
			return nil, err
		}
		cn.cluster.GMS.RecordLoad(scan.Table.Name, shard, 1)
		var row types.Row
		var ok bool
		if ctx.tx != nil {
			row, ok, err = ctx.tx.Get(dnName, scan.Table.PhysicalTableID(shard), pk)
		} else {
			target, minLSN := cn.apTarget(ctx, dnName)
			if target == dnName {
				// No RO: read through an ephemeral branch on the leader.
				tmp, terr := cn.coord.Begin()
				if terr != nil {
					return nil, terr
				}
				row, ok, err = tmp.Get(dnName, scan.Table.PhysicalTableID(shard), pk)
				_ = tmp.Abort()
			} else {
				row, ok, err = cn.coord.ReadRO(target, scan.Table.PhysicalTableID(shard), pk, ctx.snapshot, minLSN)
			}
		}
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		// The pushed filter may carry residual conditions beyond the PK.
		if scan.Filter != nil {
			v, err := sql.Eval(scan.Filter, row)
			if err != nil {
				return nil, err
			}
			if !v.IsTruthy() {
				continue
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// gsiRows executes a scan routed through a global secondary index
// (§II-B): read the pinned hidden-table shard by prefix range, then
// either remap clustered index rows straight into base layout or fetch
// base rows by primary key (scattered reads). The original filter runs
// against the reconstructed base rows (the GSI equality prefix is
// implied by the lookup; residual conditions still apply).
func (cn *CN) gsiRows(scan *optimizer.ScanNode, ctx *queryCtx) ([]types.Row, error) {
	gi := scan.GSI
	shard := gi.ShardOfIndexedValues(scan.GSIVals...)
	dnName, err := cn.cluster.GMS.DNForShard(scan.Table.Name, shard)
	if err != nil {
		return nil, err
	}
	cn.cluster.GMS.RecordLoad(scan.Table.Name, shard, 1)
	start := types.EncodeKey(nil, scan.GSIVals...)
	end := types.PrefixSuccessor(start)

	fetch := func(table uint32, target string, req dn.ScanReq) ([]types.Row, error) {
		if ctx.tx != nil {
			req.Table = table
			return ctx.tx.ScanReq(dnName, req)
		}
		if target == dnName {
			tmp, err := cn.coord.Begin()
			if err != nil {
				return nil, err
			}
			defer tmp.Abort()
			req.Table = table
			return tmp.ScanReq(dnName, req)
		}
		return cn.coord.ScanROReq(target, dn.ROScanReq{
			Table: table, Start: req.Start, End: req.End,
			SnapshotTS: ctx.snapshot, MinLSN: ctx.s.minLSNFor(dnName),
		})
	}
	target := dnName
	if ctx.tx == nil {
		target, _ = cn.apTarget(ctx, dnName)
	}
	irows, err := fetch(gi.PhysicalTableID(shard), target, dn.ScanReq{Start: start, End: end})
	if err != nil {
		return nil, err
	}

	var out []types.Row
	keep := func(row types.Row) (bool, error) {
		if scan.Filter == nil {
			return true, nil
		}
		v, err := sql.Eval(scan.Filter, row)
		if err != nil {
			return false, err
		}
		return v.IsTruthy(), nil
	}
	for _, irow := range irows {
		if base, ok := gi.BaseRowFromIndexRow(scan.Table, irow); ok {
			// Clustered: every column is in the index row.
			if ok2, err := keep(base); err != nil {
				return nil, err
			} else if ok2 {
				out = append(out, base)
			}
			continue
		}
		// Non-clustered: scattered read of the base row by primary key.
		pkVals := gi.BasePKFromIndexRow(scan.Table, irow)
		pk := types.EncodeKey(nil, pkVals...)
		bshard := scan.Table.ShardOfPK(pk)
		bdn, err := cn.cluster.GMS.DNForShard(scan.Table.Name, bshard)
		if err != nil {
			return nil, err
		}
		var row types.Row
		var found bool
		if ctx.tx != nil {
			row, found, err = ctx.tx.Get(bdn, scan.Table.PhysicalTableID(bshard), pk)
		} else {
			btarget, minLSN := cn.apTarget(ctx, bdn)
			if btarget == bdn {
				tmp, terr := cn.coord.Begin()
				if terr != nil {
					return nil, terr
				}
				row, found, err = tmp.Get(bdn, scan.Table.PhysicalTableID(bshard), pk)
				_ = tmp.Abort()
			} else {
				row, found, err = cn.coord.ReadRO(btarget, scan.Table.PhysicalTableID(bshard), pk, ctx.snapshot, minLSN)
			}
		}
		if err != nil {
			return nil, err
		}
		if !found {
			continue // index entry for a row deleted since (verified out)
		}
		if ok2, err := keep(row); err != nil {
			return nil, err
		} else if ok2 {
			out = append(out, row)
		}
	}
	return out, nil
}

// apTarget picks the replica serving AP reads for a DN group: a
// dedicated RO (round-robin) if configured, else the leader itself
// (Fig. 9 configs 1-2).
func (cn *CN) apTarget(ctx *queryCtx, dnName string) (string, wal.LSN) {
	c := cn.cluster
	c.mu.Lock()
	targets := c.apTargets[dnName]
	var target string
	if len(targets) > 0 {
		target = targets[int(cn.roCounter.Add(1))%len(targets)]
	}
	c.mu.Unlock()
	if target == "" {
		return dnName, 0
	}
	return target, ctx.s.minLSNFor(dnName)
}

// shardSource builds the row source for one shard of a scan, with
// filter/projection pushdown and (for AP column-index scans) optional
// pushed aggregation.
func (cn *CN) shardSource(scan *optimizer.ScanNode, shard int, ctx *queryCtx, pushed *dn.PushAgg) (executor.Operator, error) {
	dnName, err := cn.cluster.GMS.DNForShard(scan.Table.Name, shard)
	if err != nil {
		return nil, err
	}
	cn.cluster.GMS.RecordLoad(scan.Table.Name, shard, 1)
	physTable := scan.Table.PhysicalTableID(shard)
	cols := scan.Columns()

	if ctx.tx != nil {
		// TP path: branch-scoped scan on the RW leader.
		fetched := false
		return &executor.CallbackSource{Cols: cols, Fetch: func() ([]types.Row, error) {
			if fetched {
				return nil, nil
			}
			fetched = true
			rows, err := ctx.tx.ScanReq(dnName, dn.ScanReq{
				Table: physTable, Filter: scan.Filter, Projection: scan.Projection,
			})
			if err != nil {
				return nil, err
			}
			if rows == nil {
				rows = []types.Row{}
			}
			return rows, nil
		}}, nil
	}

	// AP path: snapshot read on the AP target (RO or leader).
	target, minLSN := cn.apTarget(ctx, dnName)
	req := dn.ROScanReq{
		Table: physTable, SnapshotTS: ctx.snapshot, MinLSN: minLSN,
		Filter: scan.Filter, Projection: scan.Projection,
		UseColumnIndex: scan.UseColumnIndex, Aggregate: pushed,
	}
	if target == dnName {
		// AP load routed to the RW leader (shared-resource configs):
		// scan through an ephemeral branch.
		fetched := false
		return &executor.CallbackSource{Cols: cols, Fetch: func() ([]types.Row, error) {
			if fetched {
				return nil, nil
			}
			fetched = true
			tmp, err := cn.coord.Begin()
			if err != nil {
				return nil, err
			}
			defer tmp.Abort()
			rows, err := tmp.ScanReq(dnName, dn.ScanReq{
				Table: physTable, Filter: scan.Filter, Projection: scan.Projection,
			})
			if err != nil {
				return nil, err
			}
			if rows == nil {
				rows = []types.Row{}
			}
			return rows, nil
		}}, nil
	}
	fetched := false
	return &executor.CallbackSource{Cols: cols, Fetch: func() ([]types.Row, error) {
		if fetched {
			return nil, nil
		}
		fetched = true
		rows, err := cn.coord.ScanROReq(target, req)
		if err != nil {
			return nil, err
		}
		if rows == nil {
			rows = []types.Row{}
		}
		return rows, nil
	}}, nil
}
