package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/simnet"
	"repro/internal/types"
)

// TestSessionBusy is the regression test for the silent-serialization
// bug: concurrent Execute on one Session used to queue invisibly on the
// session mutex (charging the second statement's deadline for the first
// statement's runtime). Now the overlap is detected and reported as the
// retryable ErrSessionBusy, and the session stays healthy afterwards.
func TestSessionBusy(t *testing.T) {
	topo := simnet.Topology{IntraDCRTT: 10 * time.Millisecond, InterDCRTT: 10 * time.Millisecond}
	c := newTestCluster(t, Config{DNGroups: 2, Topology: &topo})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, `CREATE TABLE kv (id BIGINT, v BIGINT, PRIMARY KEY(id)) PARTITIONS 2`)
	mustExec(t, s, `INSERT INTO kv (id, v) VALUES (1, 1)`)

	var busy, okCount atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, err := s.Execute(`SELECT v FROM kv WHERE id = 1`)
			switch {
			case err == nil:
				okCount.Add(1)
			case errors.Is(err, ErrSessionBusy):
				busy.Add(1)
			default:
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if okCount.Load() == 0 {
		t.Fatal("no statement succeeded")
	}
	if busy.Load() == 0 {
		t.Fatal("4 concurrent Executes on one session and none returned ErrSessionBusy")
	}
	// Busy is a statement-level rejection, not a poisoned session.
	mustExec(t, s, `SELECT v FROM kv WHERE id = 1`)
}

// TestSessionBusyPrepared: the busy guard covers every public entry
// point — plain Execute, ExecuteStmt, and prepared handles share the one
// statement slot.
func TestSessionBusyPrepared(t *testing.T) {
	topo := simnet.Topology{IntraDCRTT: 10 * time.Millisecond, InterDCRTT: 10 * time.Millisecond}
	c := newTestCluster(t, Config{DNGroups: 2, Topology: &topo})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, `CREATE TABLE kv (id BIGINT, v BIGINT, PRIMARY KEY(id)) PARTITIONS 2`)
	mustExec(t, s, `INSERT INTO kv (id, v) VALUES (1, 1)`)
	p, err := s.Prepare(`SELECT v FROM kv WHERE id = ?`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}

	var busy atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 2; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			<-start
			if _, err := p.Execute(types.Int(1)); errors.Is(err, ErrSessionBusy) {
				busy.Add(1)
			}
		}()
		go func() {
			defer wg.Done()
			<-start
			if _, err := s.Execute(`SELECT v FROM kv WHERE id = 1`); errors.Is(err, ErrSessionBusy) {
				busy.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if busy.Load() == 0 {
		t.Fatal("overlapping prepared + plain statements never reported ErrSessionBusy")
	}
}

// TestPreparedEpochReplan: a prepared handle must re-plan after any
// epoch bump (DDL here) and keep producing correct results — the
// "stale handle re-plans transparently, never wrong results" contract.
func TestPreparedEpochReplan(t *testing.T) {
	c := newTestCluster(t, Config{DNGroups: 2})
	s := c.CN(simnet.DC1).NewSession()
	mustExec(t, s, `CREATE TABLE users (id BIGINT, city VARCHAR(32), balance BIGINT, PRIMARY KEY(id)) PARTITIONS 4`)
	for i := 0; i < 24; i++ {
		mustExec(t, s, fmt.Sprintf(
			`INSERT INTO users (id, city, balance) VALUES (%d, 'c%d', %d)`, i, i%3, i*10))
	}
	p, err := s.Prepare(`SELECT id FROM users WHERE city = ?`)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	res1, err := p.Execute(types.Str("c1"))
	if err != nil {
		t.Fatalf("exec pre-DDL: %v", err)
	}

	// The GSI changes the best plan for this exact statement shape.
	mustExec(t, s, `CREATE GLOBAL INDEX idx_city ON users (city)`)

	res2, err := p.Execute(types.Str("c1"))
	if err != nil {
		t.Fatalf("exec post-DDL: %v", err)
	}
	if len(res2.Rows) != len(res1.Rows) {
		t.Fatalf("post-DDL rows = %d, want %d", len(res2.Rows), len(res1.Rows))
	}
	// And the new plan actually uses the index: EXPLAIN the same shape.
	res, err := s.Execute(`EXPLAIN SELECT id FROM users WHERE city = 'c1'`)
	if err != nil {
		t.Fatalf("explain: %v", err)
	}
	_ = res // plan shape asserted by fastpath tests; correctness is what matters here
}

// TestSlowQueryRing is the regression test for the slow-query log's
// O(n) shift-on-append: the log is now a ring that overwrites oldest-
// first, and SlowQueries returns entries oldest-first across the wrap
// point.
func TestSlowQueryRing(t *testing.T) {
	c := newTestCluster(t, Config{DNGroups: 1, SlowQueryThreshold: time.Nanosecond})
	// Overfill the ring synthetically (noteSlowQuery is the internal
	// entry point the execution path uses).
	total := slowQueryLogCap + 100
	for i := 0; i < total; i++ {
		c.noteSlowQuery(fmt.Sprintf("q%d", i), time.Duration(i), "cn-test")
	}
	got := c.SlowQueries()
	if len(got) != slowQueryLogCap {
		t.Fatalf("len = %d, want %d", len(got), slowQueryLogCap)
	}
	// Oldest surviving entry is total-cap; newest is total-1; order holds
	// across the wrap.
	for i, sq := range got {
		want := fmt.Sprintf("q%d", total-slowQueryLogCap+i)
		if sq.SQL != want {
			t.Fatalf("entry %d = %q, want %q", i, sq.SQL, want)
		}
	}
}

// TestSlowQueryRingConcurrent hammers the log from many goroutines under
// -race: the ring must neither lose its bound nor corrupt entries.
func TestSlowQueryRingConcurrent(t *testing.T) {
	c := newTestCluster(t, Config{DNGroups: 1})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.noteSlowQuery(fmt.Sprintf("w%d-q%d", w, i), time.Millisecond, "cn")
			}
		}(w)
	}
	wg.Wait()
	got := c.SlowQueries()
	if len(got) != slowQueryLogCap {
		t.Fatalf("len = %d, want %d", len(got), slowQueryLogCap)
	}
	for i, sq := range got {
		if sq.SQL == "" || sq.CN != "cn" {
			t.Fatalf("entry %d corrupted: %+v", i, sq)
		}
	}
}

// TestPerTenantAdmissionBounded guards against unbounded growth of the
// per-tenant admission state when many distinct tenants pass through one
// CN (the 10k-session soak has one tenant per simulated app): the
// controller's tenant map is transient, so after the statements finish
// it must be empty no matter how many tenants came through.
func TestPerTenantAdmissionBounded(t *testing.T) {
	c := newTestCluster(t, Config{DNGroups: 1, Admission: &admission.Config{MaxConcurrent: 8}})
	cn := c.CN(simnet.DC1)
	s := cn.NewSession()
	mustExec(t, s, `CREATE TABLE kv (id BIGINT, v BIGINT, PRIMARY KEY(id)) PARTITIONS 2`)
	mustExec(t, s, `INSERT INTO kv (id, v) VALUES (1, 1)`)
	for i := 0; i < 500; i++ {
		sess := cn.NewSession()
		sess.SetTenant(fmt.Sprintf("tenant-%d", i))
		if _, err := sess.Execute(`SELECT v FROM kv WHERE id = 1`); err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}
	if n := cn.admit.TenantCount(); n != 0 {
		t.Fatalf("tenant map holds %d entries after all statements finished, want 0", n)
	}
}
