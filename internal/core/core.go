package core
