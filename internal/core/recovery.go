package core

// Cluster-level transaction recovery (paper §IV).
//
// CNs are stateless: a coordinator that dies mid-2PC leaves participant
// branches PREPARED with nobody driving them. Each DN's flusher already
// sweeps its own in-doubt branches, but only the cluster knows two
// things a DN cannot: whether a group's leader moved (so the "primary"
// name recorded at prepare time is stale) and which groups need healing
// at all. The GMS-driven recovery loop below closes that gap — the
// paper's health-check loop extended to transaction state: heal leader
// routing, then sweep every live instance with leader-aware primary
// routing so PREPARED branches resolve against the primary group's
// *current* leader even after failovers.

import (
	"time"

	"repro/internal/dn"
)

// recoveryLoop runs RecoverInDoubt every RecoveryInterval until Stop.
func (c *Cluster) recoveryLoop() {
	t := time.NewTicker(c.cfg.RecoveryInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stopCh:
			return
		case <-t.C:
			c.RecoverInDoubt()
		}
	}
}

// RecoverInDoubt runs one recovery sweep: heal DN leader routing, then
// resolve in-doubt transaction branches on every reachable instance.
// Exposed so tests can drive recovery deterministically instead of
// waiting out the background ticker. Returns branches resolved.
func (c *Cluster) RecoverInDoubt() int {
	c.HealDNRouting()
	c.mu.Lock()
	insts := make([]*dn.Instance, 0, len(c.dns))
	for _, inst := range c.dns {
		insts = append(insts, inst)
	}
	for _, fs := range c.followers {
		insts = append(insts, fs...)
	}
	c.mu.Unlock()
	resolved := 0
	for _, inst := range insts {
		if c.Net.IsDown(inst.Name()) {
			continue
		}
		resolved += inst.ResolveInDoubt(c.routePrimary)
	}
	c.recoveryRuns.Add(1)
	return resolved
}

// RecoveryRuns reports completed background/explicit recovery sweeps.
func (c *Cluster) RecoveryRuns() uint64 { return c.recoveryRuns.Load() }

// routePrimary maps a primary instance name recorded in a prepare record
// to that group's current leader. After a failover the recorded name
// points at a dead (or demoted) instance; the commit point it holds was
// majority-replicated, so the group's new leader can answer for it.
func (c *Cluster) routePrimary(primary string) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, inst := range c.dns {
		if inst.Name() == primary {
			return primary // still the leader: route unchanged
		}
	}
	for g, fs := range c.followers {
		for _, f := range fs {
			if f.Name() == primary {
				if l := c.dns[g]; l != nil {
					return l.Name()
				}
			}
		}
	}
	return primary // unknown name: ask it directly and let the RPC fail
}
