package core

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/dn"
	"repro/internal/gms"
	"repro/internal/hotspot"
	"repro/internal/htap"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/retry"
	"repro/internal/simnet"
	"repro/internal/sql"
	"repro/internal/txn"
	"repro/internal/types"
	"repro/internal/wal"
)

// CN is one computation node: SQL endpoint, HTAP optimizer, transaction
// coordinator and local scheduler (§II-A: "CN servers are stateless").
type CN struct {
	name    string
	dc      simnet.DC
	cluster *Cluster
	coord   *txn.Coordinator
	opt     *optimizer.Optimizer
	sched   *htap.Scheduler
	// roCounter round-robins AP reads across a DN's replicas, across
	// queries (per-query rotation would pin load to the first RO).
	roCounter atomic.Uint64
	// traffic, when non-nil, meters statements per SQL class and clamps
	// anomalous classes (§VIII automated traffic control).
	traffic *hotspot.Controller
	// admit, when non-nil, is the CN's admission gate (Config.Admission):
	// a bounded execution semaphore with priority classes, per-tenant
	// quotas, queue-wait shedding and AP brownout.
	admit *admission.Controller
	// admMetrics holds the admission instruments. They are the same
	// registry counters the controller uses, kept here so paths that
	// shed without consulting the controller (AP memory admission) land
	// in the same metrics. All fields are nil-safe when metrics are off.
	admMetrics admission.Metrics
	// planCache caches plan skeletons by statement fingerprint (nil when
	// Config.PlanCacheOff).
	planCache *optimizer.PlanCache
	// mPCHit/mPCMiss count plan-cache outcomes in the cluster registry
	// (nil when metrics are off; Counter methods are nil-safe).
	mPCHit, mPCMiss *obs.Counter
	// colIdxCache memoizes hasColumnIndex per table: the raw lookup walks
	// every DN, RO and shard under the cluster mutex, which is far too
	// expensive to repeat on every SELECT plan. Entries (colIdxAnswer,
	// keyed by table name) carry the cluster plan epoch, so any DDL or
	// routing change invalidates them. A sync.Map rather than a mutexed
	// map: every SELECT on the CN consults it, and at front-door session
	// counts a single mutex here was a measurable contention wall.
	colIdxCache sync.Map
}

// colIdxAnswer is one memoized hasColumnIndex result.
type colIdxAnswer struct {
	epoch uint64
	has   bool
}

// Name returns the CN endpoint name.
func (cn *CN) Name() string { return cn.name }

// DC returns the CN's datacenter.
func (cn *CN) DC() simnet.DC { return cn.dc }

// Scheduler exposes the CN's local scheduler (benchmarks).
func (cn *CN) Scheduler() *htap.Scheduler { return cn.sched }

// hasColumnIndex reports whether any AP target RO maintains a column
// index for the table (optimizer callback). Answers are cached per table
// and invalidated by the cluster plan epoch.
func (cn *CN) hasColumnIndex(table string) bool {
	epoch := cn.cluster.planEpoch()
	if v, ok := cn.colIdxCache.Load(table); ok {
		if a := v.(colIdxAnswer); a.epoch == epoch {
			return a.has
		}
	}
	has := cn.lookupColumnIndex(table)
	cn.colIdxCache.Store(table, colIdxAnswer{epoch: epoch, has: has})
	return has
}

// lookupColumnIndex is the uncached walk behind hasColumnIndex.
func (cn *CN) lookupColumnIndex(table string) bool {
	t, err := cn.cluster.GMS.Table(table)
	if err != nil {
		return false
	}
	c := cn.cluster
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, inst := range c.dns {
		for _, roName := range c.apTargets[inst.Name()] {
			for _, ro := range inst.ROs() {
				if ro.Name() != roName {
					continue
				}
				for shard := 0; shard < t.Shards; shard++ {
					if _, ok := ro.ColumnIndex(t.PhysicalTableID(shard)); ok {
						return true
					}
				}
			}
		}
	}
	return false
}

// planFor plans a SELECT through the fingerprinted plan cache: a hit
// skips the full optimizer pipeline and only re-binds parameters and
// recomputes value-dependent shard routing. Statements that cannot be
// fingerprinted (residual subqueries) plan directly. The caller must
// have rewritten subqueries already — fingerprints are taken over the
// post-rewrite AST so two queries whose subqueries resolved differently
// never share a skeleton.
func (cn *CN) planFor(sel *sql.Select, tr *obs.Trace) (*optimizer.Plan, error) {
	span := tr.StartSpan(nil, "plan")
	defer span.End()
	if cn.planCache == nil {
		span.Annotate("cache=off")
		return cn.opt.PlanSelect(sel)
	}
	fp, params, ok := sql.FingerprintSelect(sel)
	if !ok {
		span.Annotate("cache=uncacheable")
		return cn.opt.PlanSelect(sel)
	}
	epoch := cn.cluster.planEpoch()
	if plan := cn.planCache.Lookup(fp, epoch, params); plan != nil {
		cn.mPCHit.Inc()
		span.Annotate("cache=hit")
		return plan, nil
	}
	plan, err := cn.opt.PlanSelect(sel)
	if err != nil {
		return nil, err
	}
	cn.planCache.Store(fp, epoch, plan, params)
	cn.mPCMiss.Inc()
	span.Annotate("cache=miss")
	return plan, nil
}

// PlanCacheStats returns the CN's plan-cache hit/miss counters (zeros
// when the cache is disabled).
func (cn *CN) PlanCacheStats() (hits, misses uint64) {
	if cn.planCache == nil {
		return 0, 0
	}
	return cn.planCache.Stats()
}

// Result is a statement's outcome.
type Result struct {
	// Columns and Rows hold SELECT output.
	Columns []string
	Rows    []types.Row
	// Affected counts DML rows.
	Affected int
	// Plan carries the optimizer's plan for SELECTs (EXPLAIN surface).
	Plan *optimizer.Plan
	// Trace is the statement's span tree when Config.Tracing is on.
	Trace *obs.Trace
}

// Session is a client connection to a CN: it holds the open transaction
// (if any) and the session-consistency watermarks per DN group.
type Session struct {
	cn *CN
	mu sync.Mutex
	tx *txn.Tx
	// lsnByDN tracks the session's last write LSN per DN group so RO
	// reads can enforce read-your-writes (§II-C session consistency).
	lsnByDN map[string]wal.LSN
	// curTrace is the in-flight statement's trace (Config.Tracing only);
	// lastTrace keeps the most recently finished one for inspection.
	curTrace  *obs.Trace
	lastTrace *obs.Trace
	// tenant tags this session's statements for per-tenant admission
	// quotas ("" is a valid shared tenant).
	tenant string
	// stmtTimeout overrides Config.StatementTimeout for this session:
	// 0 inherits the cluster default, < 0 disables deadlines entirely.
	stmtTimeout time.Duration
	// curDeadline is the in-flight statement's absolute deadline (zero
	// when deadlines are off); set by Execute, read by every layer the
	// statement touches via deadline().
	curDeadline time.Time
	// inflight guards against concurrent statements on one session. The
	// old behavior — silently serializing on mu — charged the second
	// caller's queue time against its own statement deadline, invisibly.
	// Now the overlap is detected up front and reported as the retryable
	// ErrSessionBusy; the wire server gives each connection its own
	// session, so a slow statement can never wedge another connection.
	inflight atomic.Bool
}

// ErrSessionBusy reports concurrent use of one session: a statement was
// submitted while another was still executing. It is retryable — the
// session is healthy, the caller simply must wait for (or not overlap
// with) the in-flight statement. Sessions are single-statement by
// design; concurrency belongs at the connection level.
var ErrSessionBusy = errors.New("core: session busy: a statement is already executing (retryable)")

// beginStmt claims the session's single statement slot.
func (s *Session) beginStmt() error {
	if !s.inflight.CompareAndSwap(false, true) {
		return ErrSessionBusy
	}
	return nil
}

// endStmt releases the slot claimed by beginStmt.
func (s *Session) endStmt() { s.inflight.Store(false) }

// SetTenant tags the session for per-tenant admission quotas.
func (s *Session) SetTenant(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tenant = name
}

// SetStatementTimeout overrides the cluster statement timeout for this
// session: 0 inherits Config.StatementTimeout, negative disables
// deadlines for this session even when the cluster sets one.
func (s *Session) SetStatementTimeout(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stmtTimeout = d
}

// statementTimeout resolves the effective timeout for the next
// statement (0 = no deadline).
func (s *Session) statementTimeout() time.Duration {
	s.mu.Lock()
	o := s.stmtTimeout
	s.mu.Unlock()
	if o != 0 {
		if o < 0 {
			return 0
		}
		return o
	}
	return s.cn.cluster.cfg.StatementTimeout
}

// deadline returns the in-flight statement's absolute deadline (zero
// when deadlines are off).
func (s *Session) deadline() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curDeadline
}

// tenantName returns the session's admission tenant.
func (s *Session) tenantName() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tenant
}

// admit reserves an execution slot from the CN admission controller,
// classifying the statement by priority (TP auto-commit > TP in-txn >
// AP). The returned release must be called when execution finishes;
// with admission disabled it is a no-op and admit never sheds.
func (s *Session) admit(ap bool) (release func(), err error) {
	ac := s.cn.admit
	if ac == nil {
		return func() {}, nil
	}
	class := admission.TPAuto
	switch {
	case ap:
		class = admission.AP
	case s.InTxn():
		class = admission.TPTxn
	}
	return ac.Admit(s.tenantName(), class, s.deadline())
}

// LastTrace returns the span tree of the most recent traced statement
// (nil when tracing is off or nothing ran yet).
func (s *Session) LastTrace() *obs.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastTrace
}

// trace returns the in-flight statement trace (nil when tracing is off).
func (s *Session) trace() *obs.Trace {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.curTrace
}

// NewSession opens a session on this CN.
func (cn *CN) NewSession() *Session {
	return &Session{cn: cn, lsnByDN: make(map[string]wal.LSN)}
}

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tx != nil
}

// BeginTxn opens an explicit transaction.
func (s *Session) BeginTxn() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx != nil {
		return fmt.Errorf("core: transaction already open")
	}
	tx, err := s.cn.coord.Begin()
	if err != nil {
		return err
	}
	s.tx = tx
	return nil
}

// Commit commits the open transaction.
func (s *Session) Commit() error {
	s.mu.Lock()
	tx := s.tx
	s.tx = nil
	s.mu.Unlock()
	if tx == nil {
		return fmt.Errorf("core: no open transaction")
	}
	// COMMIT is its own statement: give the 2PC rounds a fresh deadline.
	if to := s.statementTimeout(); to > 0 {
		tx.SetDeadline(time.Now().Add(to))
	} else {
		tx.SetDeadline(time.Time{})
	}
	if s.cn.cluster.cfg.Tracing {
		// Explicit COMMIT gets its own trace: the 2PC phase spans
		// (prepare / commit-point / commit per DN) hang off its root.
		tr := obs.NewTrace("COMMIT", obs.Wall)
		tx.SetTrace(tr, nil)
		defer func() {
			tr.End()
			s.mu.Lock()
			s.lastTrace = tr
			s.mu.Unlock()
		}()
	}
	_, err := tx.Commit()
	s.absorb(tx)
	return err
}

// Rollback aborts the open transaction.
func (s *Session) Rollback() error {
	s.mu.Lock()
	tx := s.tx
	s.tx = nil
	s.mu.Unlock()
	if tx == nil {
		return fmt.Errorf("core: no open transaction")
	}
	return tx.Abort()
}

// absorb folds a finished transaction's branch LSNs into the session
// watermarks.
func (s *Session) absorb(tx *txn.Tx) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for dnName, lsn := range tx.BranchLSNs() {
		if lsn > s.lsnByDN[dnName] {
			s.lsnByDN[dnName] = lsn
		}
	}
}

// minLSNFor returns the session watermark for a DN group.
func (s *Session) minLSNFor(dnName string) wal.LSN {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lsnByDN[dnName]
}

// txnFor returns the open transaction or an auto-commit one; done must
// be called with the execution error.
func (s *Session) txnFor() (tx *txn.Tx, done func(error) error, err error) {
	s.mu.Lock()
	tr := s.curTrace
	dl := s.curDeadline
	if s.tx != nil {
		tx = s.tx
		s.mu.Unlock()
		if tr != nil {
			// Re-point the open transaction's spans at the current
			// statement's trace: each statement owns its own tree.
			tx.SetTrace(tr, nil)
		}
		// Each statement re-arms (or, at zero, clears) the transaction
		// deadline: deadlines are per statement, not per transaction.
		tx.SetDeadline(dl)
		return tx, func(execErr error) error { return execErr }, nil
	}
	s.mu.Unlock()
	tx, err = s.cn.coord.Begin()
	if err != nil {
		return nil, nil, err
	}
	if tr != nil {
		tx.SetTrace(tr, nil)
	}
	tx.SetDeadline(dl)
	return tx, func(execErr error) error {
		if execErr != nil {
			_ = tx.Abort()
			return execErr
		}
		if _, err := tx.Commit(); err != nil {
			return err
		}
		s.absorb(tx)
		return nil
	}, nil
}

// Execute parses and runs one SQL statement. Submitting a statement
// while another is still executing on the same session fails fast with
// ErrSessionBusy.
func (s *Session) Execute(query string) (*Result, error) {
	if err := s.beginStmt(); err != nil {
		return nil, err
	}
	defer s.endStmt()
	return s.run(query, nil)
}

// run is the statement pipeline shared by Execute and Prepared.Execute:
// traffic control, deadline arming, tracing, dispatch (with the
// auto-commit retry ladders) and slow-query logging. stmt, when non-nil,
// is the pre-parsed statement to run; query is always the statement text
// (traffic fingerprinting, traces and the slow-query log key on it). The
// caller must hold the session's statement slot (beginStmt).
func (s *Session) run(query string, stmt sql.Statement) (*Result, error) {
	if tc := s.cn.traffic; tc != nil {
		ok, release := tc.Admit(hotspot.Fingerprint(query))
		if !ok {
			return nil, ErrThrottled
		}
		defer release()
	}
	cfg := &s.cn.cluster.cfg
	// Arm the statement deadline before anything can block: it rides
	// every branch RPC as metadata and bounds admission queueing, 2PC
	// durability waits and batch-exchange parks downstream.
	var deadline time.Time
	if to := s.statementTimeout(); to > 0 {
		deadline = time.Now().Add(to)
	}
	s.mu.Lock()
	s.curDeadline = deadline
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.curDeadline = time.Time{}
		s.mu.Unlock()
	}()
	var tr *obs.Trace
	if cfg.Tracing {
		tr = obs.NewTrace(query, obs.Wall)
		s.mu.Lock()
		s.curTrace = tr
		s.mu.Unlock()
	}
	var start time.Time
	if tr != nil || cfg.SlowQueryThreshold > 0 {
		start = time.Now()
	}
	res, err := s.executeParsed(query, stmt)
	if tr != nil {
		tr.End()
		s.mu.Lock()
		s.curTrace = nil
		s.lastTrace = tr
		s.mu.Unlock()
		if res != nil {
			res.Trace = tr
		}
	}
	if th := cfg.SlowQueryThreshold; th > 0 {
		if d := time.Since(start); d >= th {
			s.cn.cluster.noteSlowQuery(query, d, s.cn.name)
		}
	}
	return res, err
}

// executeParsed is run minus observability: parse (unless the caller
// already did), dispatch, and the auto-commit retry ladders.
func (s *Session) executeParsed(query string, stmt sql.Statement) (*Result, error) {
	if stmt == nil {
		var err error
		stmt, err = sql.Parse(query)
		if err != nil {
			return nil, err
		}
	}
	res, err := s.executeStmt(stmt)
	if err != nil && !s.InTxn() && isLeaderFailure(err) {
		// The routed DN leader crashed. GMS health-checks the groups,
		// repoints routing at the newly elected leaders, and the
		// auto-commit statement (its implicit transaction aborted whole)
		// is safe to retry against the new routing. Healing before every
		// attempt is deliberate: the background recovery loop may have
		// healed routing already (making healed empty here), and retrying
		// against still-broken routing just repeats the same error.
		res, err = retry.DoValue(obs.Wall, leaderRetry, s.deadline(), isLeaderFailure,
			func() (*Result, error) {
				s.cn.cluster.HealDNRouting()
				return s.executeStmt(stmt)
			})
	}
	if err != nil && !s.InTxn() && errors.Is(err, gms.ErrShardMoving) {
		// A fenced shard (final phase of an online migration) answers
		// ErrShardMoving. The fence lasts one drain + diff-sync round, so
		// auto-commit statements wait it out with a short jittered backoff
		// and land on the new placement — migrations need no client
		// cooperation. The statement deadline (if any) cuts the ladder
		// short.
		res, err = retry.DoValue(obs.Wall, shardMoveRetry, s.deadline(),
			func(e error) bool { return errors.Is(e, gms.ErrShardMoving) },
			func() (*Result, error) { return s.executeStmt(stmt) })
	}
	return res, err
}

// leaderRetry and shardMoveRetry are the auto-commit statement retry
// ladders. Leader failover needs only a couple of quick goes once
// routing heals; the migration-fence ladder is long but capped at small
// sleeps so its worst case (~800ms jittered) still bounds how long a
// statement waits for a fence before surfacing ErrShardMoving.
var (
	leaderRetry    = retry.Policy{Attempts: 3, Base: 2 * time.Millisecond, Cap: 20 * time.Millisecond, Jitter: 0.5}
	shardMoveRetry = retry.Policy{Attempts: 200, Base: time.Millisecond, Cap: 4 * time.Millisecond, Jitter: 0.5}
)

// isLeaderFailure classifies errors that indicate stale leader routing:
// the DN refused as a non-leader, or the endpoint is unreachable.
func isLeaderFailure(err error) bool {
	return errors.Is(err, dn.ErrNotLeader) ||
		errors.Is(err, simnet.ErrEndpointDown) ||
		errors.Is(err, simnet.ErrPartitioned)
}

// ExecuteStmt runs a pre-built statement AST directly (the workload
// drivers' prepared-statement-style path), without deadline arming or
// the retry ladders. Like Execute it claims the session's statement
// slot, failing fast with ErrSessionBusy on concurrent use.
func (s *Session) ExecuteStmt(stmt sql.Statement) (*Result, error) {
	if err := s.beginStmt(); err != nil {
		return nil, err
	}
	defer s.endStmt()
	return s.executeStmt(stmt)
}

// executeStmt dispatches a parsed statement. DML takes its admission
// slot here (class TP auto-commit or TP in-txn); SELECTs admit inside
// runPlan, where the optimizer has already decided TP vs AP.
func (s *Session) executeStmt(stmt sql.Statement) (*Result, error) {
	switch stmt.(type) {
	case *sql.Insert, *sql.Update, *sql.Delete:
		release, err := s.admit(false)
		if err != nil {
			return nil, err
		}
		defer release()
	}
	switch st := stmt.(type) {
	case *sql.CreateTable:
		return s.cn.createTable(st)
	case *sql.CreateIndex:
		return s.cn.createIndex(s, st)
	case *sql.Insert:
		return s.execInsert(st)
	case *sql.Update:
		return s.execUpdate(st)
	case *sql.Delete:
		return s.execDelete(st)
	case *sql.Select:
		return s.execSelect(st)
	case *sql.Explain:
		return s.execExplain(st)
	default:
		return nil, fmt.Errorf("%w: %T", errUnsupported, stmt)
	}
}

// createTable provisions a logical table in GMS and its physical shard
// tables on the owning DN groups.
func (cn *CN) createTable(st *sql.CreateTable) (*Result, error) {
	shards := st.Partitions
	if shards <= 1 && cn.cluster.cfg.DefaultShards > 0 && st.Partitions == 1 {
		shards = cn.cluster.cfg.DefaultShards
	}
	schema := st.Schema()
	t, err := cn.cluster.GMS.CreateTable(st.Name, schema, shards, st.TableGroup)
	if err != nil {
		if st.IfNotExists && strings.Contains(err.Error(), "already exists") {
			return &Result{}, nil
		}
		return nil, err
	}
	if len(st.PartitionBy) > 0 {
		if err := t.SetPartitionBy(st.PartitionBy); err != nil {
			return nil, err
		}
		// Partition routing changed after the CreateTable bump: move the
		// epoch again so nothing planned in between survives.
		cn.cluster.GMS.BumpSchemaEpoch()
	}
	for shard := 0; shard < t.Shards; shard++ {
		dnName, err := cn.cluster.GMS.DNForShard(t.Name, shard)
		if err != nil {
			return nil, err
		}
		_, err = cn.cluster.Net.Call(cn.name, dnName,
			dn.CreateTableReq{ID: t.PhysicalTableID(shard), Schema: shardSchema(schema, shard)})
		if err != nil {
			return nil, fmt.Errorf("core: create shard %d on %s: %w", shard, dnName, err)
		}
	}
	return &Result{}, nil
}

// shardSchema names one shard's physical table uniquely (several shards
// of one logical table may share a DN engine).
func shardSchema(schema *types.Schema, shard int) *types.Schema {
	cp := *schema
	cp.Name = fmt.Sprintf("%s__s%d", schema.Name, shard)
	return &cp
}

// createIndex provisions a local per-shard index or a global secondary
// index (hidden partitioned table + backfill, §II-B).
func (cn *CN) createIndex(s *Session, st *sql.CreateIndex) (*Result, error) {
	t, err := cn.cluster.GMS.Table(st.Table)
	if err != nil {
		return nil, err
	}
	if !st.Global {
		// Local index on every shard's physical table.
		for shard := 0; shard < t.Shards; shard++ {
			dnName, err := cn.cluster.GMS.DNForShard(t.Name, shard)
			if err != nil {
				return nil, err
			}
			req := dn.CreateIndexReq{Table: t.PhysicalTableID(shard), Name: st.Name, Cols: st.Columns}
			if _, err := cn.cluster.Net.Call(cn.name, dnName, req); err != nil {
				return nil, err
			}
		}
		// Local indexes never touch the GMS catalog, so bump the epoch
		// explicitly: cached plans may now be suboptimal (and routing
		// caches must re-answer).
		cn.cluster.GMS.BumpSchemaEpoch()
		return &Result{}, nil
	}
	gi, err := cn.cluster.GMS.AddGlobalIndex(st.Table, st.Name, st.Columns, st.Clustered)
	if err != nil {
		return nil, err
	}
	// Hidden table shares the base table's placement map (same group).
	for shard := 0; shard < gi.Shards; shard++ {
		dnName, err := cn.cluster.GMS.DNForShard(t.Name, shard)
		if err != nil {
			return nil, err
		}
		if _, err := cn.cluster.Net.Call(cn.name, dnName,
			dn.CreateTableReq{ID: gi.PhysicalTableID(shard), Schema: shardSchema(gi.Schema, shard)}); err != nil {
			return nil, err
		}
	}
	// Backfill in one distributed transaction: read every base shard,
	// insert the derived index rows.
	tx, err := cn.coord.Begin()
	if err != nil {
		return nil, err
	}
	n := 0
	for shard := 0; shard < t.Shards; shard++ {
		dnName, err := cn.cluster.GMS.DNForShard(t.Name, shard)
		if err != nil {
			_ = tx.Abort()
			return nil, err
		}
		rows, err := tx.Scan(dnName, t.PhysicalTableID(shard), "", nil, nil, 0)
		if err != nil {
			_ = tx.Abort()
			return nil, err
		}
		for _, row := range rows {
			irow := gi.IndexRow(t, row)
			ishard := gi.ShardOfIndexRow(irow)
			idnName, err := cn.cluster.GMS.DNForShard(t.Name, ishard)
			if err != nil {
				_ = tx.Abort()
				return nil, err
			}
			if err := tx.Insert(idnName, gi.PhysicalTableID(ishard), irow); err != nil {
				_ = tx.Abort()
				return nil, err
			}
			n++
		}
	}
	if _, err := tx.Commit(); err != nil {
		return nil, err
	}
	if s != nil {
		s.absorb(tx)
	}
	return &Result{Affected: n}, nil
}
