package core

// Tests for the CN fast path: per-DN batched RPC fan-out (multi-point
// reads, batched DML writes) and the fingerprinted plan cache. The
// legacy per-key/per-row path is kept behind Config.NoBatch and serves
// as the equivalence baseline throughout.

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/types"
)

// TestBatchedPointReadRPCBudget pins the fast path's RPC budget: a
// multi-point SELECT spanning several DN groups pays exactly one
// MultiGet per touched DN and zero per-key reads, while the NoBatch
// baseline pays one ReadReq per key.
func TestBatchedPointReadRPCBudget(t *testing.T) {
	const keys = 24
	groups := []string{"dng0", "dng1", "dng2"}
	inList := func() string {
		ids := make([]string, keys)
		for i := range ids {
			ids[i] = fmt.Sprintf("%d", i)
		}
		return strings.Join(ids, ", ")
	}()

	snapshot := func(c *Cluster) (points, multis uint64) {
		for _, g := range groups {
			inst, err := c.DNGroup(g)
			if err != nil {
				t.Fatal(err)
			}
			p, m, _, _ := inst.RPCStats()
			points += p
			multis += m
		}
		return points, multis
	}
	seed := func(c *Cluster) *Session {
		s := c.CN(simnet.DC1).NewSession()
		mustExec(t, s, `CREATE TABLE kv (id BIGINT, v BIGINT, PRIMARY KEY(id)) PARTITIONS 6`)
		var sb strings.Builder
		sb.WriteString("INSERT INTO kv (id, v) VALUES ")
		for i := 0; i < keys; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d)", i, i*11)
		}
		mustExec(t, s, sb.String())
		return s
	}
	// The exact set of DNs the statement must touch, from the placement.
	expectDNs := func(c *Cluster) map[string]bool {
		tbl, err := c.GMS.Table("kv")
		if err != nil {
			t.Fatal(err)
		}
		dns := map[string]bool{}
		for i := int64(0); i < keys; i++ {
			shard := tbl.ShardOfPK(types.EncodeKey(nil, types.Int(i)))
			name, err := c.GMS.DNForShard("kv", shard)
			if err != nil {
				t.Fatal(err)
			}
			dns[name] = true
		}
		return dns
	}
	checkRows := func(res *Result) {
		t.Helper()
		if len(res.Rows) != keys {
			t.Fatalf("IN(%d keys) returned %d rows", keys, len(res.Rows))
		}
	}

	t.Run("batched", func(t *testing.T) {
		c := newTestCluster(t, Config{DNGroups: 3})
		s := seed(c)
		want := len(expectDNs(c))
		if want < 2 {
			t.Fatalf("test needs a multi-DN statement, placement uses %d DN(s)", want)
		}

		// Auto-commit statement (ephemeral branch per DN).
		p0, m0 := snapshot(c)
		checkRows(mustExec(t, s, "SELECT v FROM kv WHERE id IN ("+inList+")"))
		p1, m1 := snapshot(c)
		if got := m1 - m0; got != uint64(want) {
			t.Fatalf("auto-commit: %d MultiGet RPCs for %d touched DNs", got, want)
		}
		if p1 != p0 {
			t.Fatalf("auto-commit: fast path fell back to %d per-key reads", p1-p0)
		}

		// Same budget inside an explicit transaction.
		if err := s.BeginTxn(); err != nil {
			t.Fatal(err)
		}
		p0, m0 = snapshot(c)
		checkRows(mustExec(t, s, "SELECT v FROM kv WHERE id IN ("+inList+")"))
		p1, m1 = snapshot(c)
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
		if got := m1 - m0; got != uint64(want) {
			t.Fatalf("in-txn: %d MultiGet RPCs for %d touched DNs", got, want)
		}
		if p1 != p0 {
			t.Fatalf("in-txn: fast path fell back to %d per-key reads", p1-p0)
		}
	})

	t.Run("nobatch-baseline", func(t *testing.T) {
		c := newTestCluster(t, Config{DNGroups: 3, NoBatch: true})
		s := seed(c)
		p0, m0 := snapshot(c)
		checkRows(mustExec(t, s, "SELECT v FROM kv WHERE id IN ("+inList+")"))
		p1, m1 := snapshot(c)
		if got := p1 - p0; got != keys {
			t.Fatalf("baseline: %d per-key reads for %d keys", got, keys)
		}
		if m1 != m0 {
			t.Fatalf("baseline issued %d MultiGets with NoBatch set", m1-m0)
		}
	})
}

// TestFastPathEquivalenceUnderConcurrency drives many concurrent
// sessions through the batched paths (multi-row INSERT, IN-list
// UPDATE/DELETE/SELECT, GSI maintenance, explicit cross-shard
// transactions) and checks the final database state is byte-identical
// to the per-key NoBatch baseline. Run under -race via `make test-race`.
func TestFastPathEquivalenceUnderConcurrency(t *testing.T) {
	const workers, span = 4, 60
	run := func(noBatch bool) []string {
		c := newTestCluster(t, Config{NoBatch: noBatch})
		s := c.CN(simnet.DC1).NewSession()
		mustExec(t, s, `CREATE TABLE acct (id BIGINT, grp BIGINT, val BIGINT, PRIMARY KEY(id)) PARTITIONS 8`)
		mustExec(t, s, `CREATE GLOBAL INDEX idx_grp ON acct (grp)`)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				sess := c.CN(simnet.DC1).NewSession()
				base := w * span
				// Multi-row inserts (batched write fan-out + GSI rows).
				for lo := 0; lo < span; lo += 20 {
					var sb strings.Builder
					sb.WriteString("INSERT INTO acct (id, grp, val) VALUES ")
					for i := lo; i < lo+20; i++ {
						if i > lo {
							sb.WriteString(", ")
						}
						fmt.Fprintf(&sb, "(%d, %d, %d)", base+i, (base+i)%7, (base+i)*3)
					}
					if _, err := sess.Execute(sb.String()); err != nil {
						t.Error(err)
						return
					}
				}
				// Explicit cross-shard transaction over an IN list: batched
				// point reads + batched updates that move GSI entries.
				var ids []string
				for i := 0; i < span; i += 6 {
					ids = append(ids, fmt.Sprintf("%d", base+i))
				}
				list := strings.Join(ids, ", ")
				if err := sess.BeginTxn(); err != nil {
					t.Error(err)
					return
				}
				if _, err := sess.Execute(
					"SELECT val FROM acct WHERE id IN (" + list + ")"); err != nil {
					t.Error(err)
					return
				}
				if _, err := sess.Execute(
					"UPDATE acct SET val = val + 1000, grp = grp + 7 WHERE id IN (" + list + ")"); err != nil {
					t.Error(err)
					return
				}
				if err := sess.Commit(); err != nil {
					t.Error(err)
					return
				}
				// Auto-commit batched delete.
				if _, err := sess.Execute(fmt.Sprintf(
					"DELETE FROM acct WHERE id IN (%d, %d, %d)", base+1, base+8, base+15)); err != nil {
					t.Error(err)
					return
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			t.FailNow()
		}
		res := mustExec(t, s, "SELECT id, grp, val FROM acct ORDER BY id")
		out := make([]string, 0, len(res.Rows)+1)
		for _, r := range res.Rows {
			out = append(out, fmt.Sprintf("%d|%d|%d", r[0].AsInt(), r[1].AsInt(), r[2].AsInt()))
		}
		// The GSI stayed consistent with the base table (index route).
		gsi := mustExec(t, s, "SELECT COUNT(*) FROM acct WHERE grp = 9")
		out = append(out, fmt.Sprintf("grp9=%d", gsi.Rows[0][0].AsInt()))
		return out
	}
	fast := run(false)
	slow := run(true)
	if len(fast) != len(slow) {
		t.Fatalf("row counts differ: batched=%d baseline=%d", len(fast), len(slow))
	}
	for i := range fast {
		if fast[i] != slow[i] {
			t.Fatalf("row %d differs:\n  batched  = %s\n  baseline = %s", i, fast[i], slow[i])
		}
	}
}

// TestPlanCacheRebindAndHitRate runs the sysbench-style point loop with
// varying literals: one fingerprint, >90% hit rate, and every execution
// must return the row for ITS literal (parameter re-binding plus
// re-pruning of the value-dependent routing).
func TestPlanCacheRebindAndHitRate(t *testing.T) {
	c := newTestCluster(t, Config{})
	cn := c.CN(simnet.DC1)
	s := cn.NewSession()
	seedUsers(t, s, 100)

	h0, m0 := cn.PlanCacheStats()
	for round := 0; round < 2; round++ {
		for i := 0; i < 100; i++ {
			res := mustExec(t, s, fmt.Sprintf("SELECT name FROM users WHERE id = %d", i))
			if len(res.Rows) != 1 || res.Rows[0][0].AsString() != fmt.Sprintf("user%d", i) {
				t.Fatalf("id=%d returned %v (stale parameter binding?)", i, res.Rows)
			}
		}
	}
	hits, misses := cn.PlanCacheStats()
	hits, misses = hits-h0, misses-m0
	if misses != 1 || hits != 199 {
		t.Fatalf("point loop: hits=%d misses=%d, want 199/1", hits, misses)
	}
	if rate := float64(hits) / float64(hits+misses); rate < 0.9 {
		t.Fatalf("hit rate = %.3f, want > 0.9", rate)
	}

	// IN lists share one fingerprint; shard routing must be recomputed
	// per parameter set (different values → different shards), and the
	// IN-dedup semantics must survive re-instantiation.
	res := mustExec(t, s, "SELECT id FROM users WHERE id IN (1, 2, 3) ORDER BY id")
	if len(res.Rows) != 3 || res.Rows[0][0].AsInt() != 1 || res.Rows[2][0].AsInt() != 3 {
		t.Fatalf("IN(1,2,3) = %v", res.Rows)
	}
	h1, _ := cn.PlanCacheStats()
	res = mustExec(t, s, "SELECT id FROM users WHERE id IN (97, 4, 98) ORDER BY id")
	if len(res.Rows) != 3 || res.Rows[0][0].AsInt() != 4 || res.Rows[2][0].AsInt() != 98 {
		t.Fatalf("IN(97,4,98) = %v (cached routing not re-pruned?)", res.Rows)
	}
	res = mustExec(t, s, "SELECT id FROM users WHERE id IN (5, 5, 5) ORDER BY id")
	if len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 5 {
		t.Fatalf("IN(5,5,5) = %v", res.Rows)
	}
	h2, _ := cn.PlanCacheStats()
	if h2-h1 != 2 {
		t.Fatalf("IN variants hit %d times, want 2 (shared fingerprint)", h2-h1)
	}
}

// TestPlanCacheInvalidationOnDDL: any DDL bumps the schema epoch, so a
// cached plan is dropped rather than executed stale — after CREATE
// GLOBAL INDEX the same statement must replan onto the index, and after
// an unrelated CREATE TABLE it must still miss once and re-cache.
func TestPlanCacheInvalidationOnDDL(t *testing.T) {
	c := newTestCluster(t, Config{})
	cn := c.CN(simnet.DC1)
	s := cn.NewSession()
	seedUsers(t, s, 50)

	const q = "SELECT id FROM users WHERE city = 'city2' ORDER BY id"
	first := mustExec(t, s, q)
	if strings.Contains(first.Plan.Explain(), "gsi=") {
		t.Fatalf("gsi plan before any index exists:\n%s", first.Plan.Explain())
	}
	h0, _ := cn.PlanCacheStats()
	second := mustExec(t, s, q)
	if h1, _ := cn.PlanCacheStats(); h1 != h0+1 {
		t.Fatal("repeated statement missed the cache")
	}
	if len(second.Rows) != 10 {
		t.Fatalf("city2 rows = %d", len(second.Rows))
	}

	// The GSI changes the right plan for the cached statement. A stale
	// skeleton would keep broadcasting the scan (or, worse, read physical
	// tables that no longer match the catalog).
	mustExec(t, s, "CREATE GLOBAL INDEX idx_city ON users (city)")
	third := mustExec(t, s, q)
	if !strings.Contains(third.Plan.Explain(), "gsi=idx_city") {
		t.Fatalf("post-DDL execution reused the stale cached plan:\n%s", third.Plan.Explain())
	}
	if len(third.Rows) != len(second.Rows) {
		t.Fatalf("post-DDL rows = %d, want %d", len(third.Rows), len(second.Rows))
	}
	for i := range third.Rows {
		if third.Rows[i][0].AsInt() != second.Rows[i][0].AsInt() {
			t.Fatalf("row %d: %v != %v", i, third.Rows[i], second.Rows[i])
		}
	}

	// Unrelated DDL also moves the epoch (correctness over cleverness):
	// exactly one miss, then the statement caches again.
	_, m0 := cn.PlanCacheStats()
	mustExec(t, s, "CREATE TABLE unrelated (id BIGINT, PRIMARY KEY(id))")
	mustExec(t, s, q)
	h2, m1 := cn.PlanCacheStats()
	if m1 != m0+1 {
		t.Fatalf("CREATE TABLE did not invalidate: misses %d -> %d", m0, m1)
	}
	mustExec(t, s, q)
	if h3, _ := cn.PlanCacheStats(); h3 != h2+1 {
		t.Fatal("statement not re-cached after invalidation")
	}
}

// TestColumnIndexCacheInvalidation covers the per-CN column-index
// answer cache: a CN that already answered "no column index" for a
// table must see EnableColumnIndexes through the epoch bump — both the
// cached answer and any cached plan for the statement are stale.
func TestColumnIndexCacheInvalidation(t *testing.T) {
	c := newTestCluster(t, Config{ROsPerDN: 1, TPCostThreshold: 1})
	if err := c.EnableAPReplicas(1); err != nil {
		t.Fatal(err)
	}
	cn := c.CN(simnet.DC1)
	s := cn.NewSession()
	seedUsers(t, s, 60)

	const q = "SELECT city, COUNT(*) FROM users GROUP BY city ORDER BY city"
	res := mustExec(t, s, q)
	if strings.Contains(res.Plan.Explain(), "store=colindex") {
		t.Fatalf("column index chosen before enabling:\n%s", res.Plan.Explain())
	}
	if err := c.WaitROConvergence(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := c.EnableColumnIndexes("users"); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, s, q)
	if !strings.Contains(res.Plan.Explain(), "store=colindex") {
		t.Fatalf("stale cached answer after EnableColumnIndexes:\n%s", res.Plan.Explain())
	}
	if len(res.Rows) != 5 || res.Rows[0][1].AsInt() != 12 {
		t.Fatalf("column-index groups = %v", res.Rows)
	}
}

// TestDMLDuplicateINKeys: duplicate IN-list entries must match a row
// once for UPDATE/DELETE (MySQL semantics) in both the batched and the
// NoBatch path — without dedup the second staged delete of the same key
// fails at the DN.
func TestDMLDuplicateINKeys(t *testing.T) {
	for _, mode := range []struct {
		name    string
		noBatch bool
	}{
		{"batched", false},
		{"nobatch", true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			c := newTestCluster(t, Config{NoBatch: mode.noBatch})
			s := c.CN(simnet.DC1).NewSession()
			mustExec(t, s, `CREATE TABLE dup (id BIGINT, v BIGINT, PRIMARY KEY (id)) PARTITIONS 4`)
			mustExec(t, s, `CREATE GLOBAL INDEX idx_dupv ON dup (v)`)
			mustExec(t, s, `INSERT INTO dup (id, v) VALUES (1, 10), (2, 20), (3, 30)`)

			if res := mustExec(t, s, `UPDATE dup SET v = v + 1 WHERE id IN (2, 2, 2)`); res.Affected != 1 {
				t.Fatalf("update affected = %d, want 1", res.Affected)
			}
			if res := mustExec(t, s, `SELECT v FROM dup WHERE id = 2`); res.Rows[0][0].AsInt() != 21 {
				t.Fatalf("duplicate-key update applied more than once: v = %v", res.Rows[0][0])
			}

			if res := mustExec(t, s, `DELETE FROM dup WHERE id IN (3, 3, 3)`); res.Affected != 1 {
				t.Fatalf("delete affected = %d, want 1", res.Affected)
			}
			if res := mustExec(t, s, `SELECT id FROM dup ORDER BY id`); len(res.Rows) != 2 {
				t.Fatalf("rows after delete = %d, want 2", len(res.Rows))
			}
			// The GSI must have followed: old entries gone, updated one present.
			if res := mustExec(t, s, `SELECT id FROM dup WHERE v = 21`); len(res.Rows) != 1 || res.Rows[0][0].AsInt() != 2 {
				t.Fatalf("GSI lookup after dup-key update = %v", res.Rows)
			}
			if res := mustExec(t, s, `SELECT id FROM dup WHERE v = 30`); len(res.Rows) != 0 {
				t.Fatalf("GSI entry for deleted row survived: %v", res.Rows)
			}
		})
	}
}
