package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/sql"
	"repro/internal/types"
)

// Prepared-statement errors.
var (
	// ErrStmtClosed reports use of a prepared handle after Close.
	ErrStmtClosed = errors.New("core: prepared statement is closed")
)

// Prepared is a server-side prepared statement: a parsed AST whose '?'
// placeholders are bound positionally on each Execute. It is bound to
// the session's CN plan cache through the ordinary fingerprint path, so
// repeated executions reuse a cached plan skeleton, and epoch
// invalidation comes for free: any DDL or routing change bumps the
// cluster plan epoch, the cached skeleton misses on its epoch key, and
// the next Execute re-plans transparently — a stale handle can go slow
// for one statement, never wrong.
//
// A Prepared is owned by its Session and shares its single-statement
// slot: concurrent Execute calls on one session (through any mix of
// handles and plain queries) fail fast with ErrSessionBusy.
type Prepared struct {
	s    *Session
	text string
	stmt sql.Statement
	// params are the placeholder literals in textual order; Execute
	// overwrites their values in place before dispatch.
	params []*sql.Literal
	// reparse marks statements containing subqueries: execution rewrites
	// those into literal lists in place, so the AST cannot be reused and
	// each Execute parses fresh from text.
	reparse bool
	closed  atomic.Bool
}

// Prepare parses a statement with '?' placeholders into a reusable
// handle. Only executable statements (SELECT / INSERT / UPDATE / DELETE)
// can be prepared; DDL runs through Execute.
func (s *Session) Prepare(query string) (*Prepared, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case *sql.Select, *sql.Insert, *sql.Update, *sql.Delete:
	default:
		return nil, fmt.Errorf("core: cannot prepare %T (only SELECT/INSERT/UPDATE/DELETE)", stmt)
	}
	return &Prepared{
		s:       s,
		text:    query,
		stmt:    stmt,
		params:  sql.Params(stmt),
		reparse: sql.HasSubquery(stmt),
	}, nil
}

// NumParams returns the number of '?' placeholders.
func (p *Prepared) NumParams() int { return len(p.params) }

// Text returns the statement text the handle was prepared from.
func (p *Prepared) Text() string { return p.text }

// Execute binds args to the placeholders in order and runs the
// statement through the full session pipeline (deadline arming, retry
// ladders, tracing, slow-query logging) — exactly like Execute, minus
// the parse.
func (p *Prepared) Execute(args ...types.Value) (*Result, error) {
	if p.closed.Load() {
		return nil, ErrStmtClosed
	}
	if len(args) != len(p.params) {
		return nil, fmt.Errorf("core: prepared statement wants %d parameter(s), got %d",
			len(p.params), len(args))
	}
	if err := p.s.beginStmt(); err != nil {
		return nil, err
	}
	defer p.s.endStmt()
	stmt, params := p.stmt, p.params
	if p.reparse {
		var err error
		stmt, err = sql.Parse(p.text)
		if err != nil {
			return nil, err
		}
		params = sql.Params(stmt)
	}
	for i, lit := range params {
		lit.Val = args[i]
	}
	return p.s.run(p.text, stmt)
}

// Close releases the handle. Double close returns ErrStmtClosed; the
// wire server maps that to a clean protocol error rather than a panic.
func (p *Prepared) Close() error {
	if !p.closed.CompareAndSwap(false, true) {
		return ErrStmtClosed
	}
	return nil
}
