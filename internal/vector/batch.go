package vector

import (
	"sync"
	"sync/atomic"

	"repro/internal/types"
)

// Batch is a column-major slice of rows: one Vector per column plus an
// optional selection vector. Sel, when non-nil, lists the physical row
// positions that are logically present, in order — filters refine Sel
// instead of copying column data. A nil Sel means every physical row
// [0, Vecs[0].Len()) is selected.
//
// Ownership protocol: NextBatch (and any producer) transfers ownership
// of the returned batch to the caller. A consumer that has fully
// extracted what it needs may recycle the batch with Release; batches
// marked Shared wrap storage owned by someone else (the column index's
// vectors, another batch's columns) and Release leaves them alone.
type Batch struct {
	Vecs []*Vector
	Sel  []int
	// Shared marks zero-copy batches whose vectors are owned elsewhere;
	// Release must not recycle them.
	Shared bool
	// Owner, set on a Shared view, is the pooled batch whose storage the
	// view borrows. Release on the view forwards to the owner so a
	// consumer that only ever sees the view still recycles the backing
	// batch. Nil for views over storage with independent lifetime (e.g.
	// the column index's own vectors).
	Owner *Batch
	// released poisons an owned batch after its first Release: a second
	// Release must not re-pool the same backing vectors (two NewBatch
	// callers would then share storage and race).
	released atomic.Bool
}

// NumCols returns the column count.
func (b *Batch) NumCols() int { return len(b.Vecs) }

// Cap returns the physical row count (before selection).
func (b *Batch) Cap() int {
	if len(b.Vecs) == 0 {
		return 0
	}
	return b.Vecs[0].Len()
}

// NumRows returns the selected row count.
func (b *Batch) NumRows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.Cap()
}

// RowIdx maps logical row i to its physical position.
func (b *Batch) RowIdx(i int) int {
	if b.Sel != nil {
		return b.Sel[i]
	}
	return i
}

// AppendRow appends one row to every column (builders only — the batch
// must not carry a selection vector).
func (b *Batch) AppendRow(row types.Row) {
	for c, v := range b.Vecs {
		v.AppendTyped(row[c])
	}
}

// Row materializes logical row i.
func (b *Batch) Row(i int) types.Row {
	p := b.RowIdx(i)
	out := make(types.Row, len(b.Vecs))
	for c, v := range b.Vecs {
		out[c] = v.Value(p)
	}
	return out
}

// RowInto materializes logical row i into dst (len(dst) == NumCols),
// avoiding the per-row allocation for scratch evaluations.
func (b *Batch) RowInto(dst types.Row, i int) {
	p := b.RowIdx(i)
	for c, v := range b.Vecs {
		dst[c] = v.Value(p)
	}
}

// AppendRows materializes every selected row onto dst.
func (b *Batch) AppendRows(dst []types.Row) []types.Row {
	n := b.NumRows()
	for i := 0; i < n; i++ {
		dst = append(dst, b.Row(i))
	}
	return dst
}

// FromRows columnarizes rows (ncols wide — rows may be empty).
// Columnarization runs column-at-a-time: the kind dispatch and null
// checks hoist out of the per-value loop, which is the difference
// between batch mode paying for its inputs once and paying row-mode
// costs twice.
func FromRows(rows []types.Row, ncols int) *Batch {
	b := NewBatch(ncols)
	if len(rows) == 0 {
		return b
	}
	for c := 0; c < ncols; c++ {
		b.Vecs[c].AppendRowsColumn(rows, c)
	}
	return b
}

// NewBatch returns a pooled batch with ncols empty vectors.
func NewBatch(ncols int) *Batch {
	b := batchPool.Get().(*Batch)
	poolGets.Add(1)
	b.Shared = false
	b.Owner = nil
	b.Sel = nil
	b.released.Store(false)
	if cap(b.Vecs) < ncols {
		b.Vecs = make([]*Vector, ncols)
	} else {
		b.Vecs = b.Vecs[:ncols]
	}
	for i := range b.Vecs {
		if b.Vecs[i] == nil {
			b.Vecs[i] = &Vector{}
		}
		b.Vecs[i].reset()
	}
	return b
}

// Release returns a batch to the pool. Shared batches (zero-copy views
// over storage owned elsewhere) forward to their Owner when one is set
// and are otherwise left untouched. Callers must drop every reference to
// the batch and its vectors afterwards.
//
// Double Release of an owned batch is a pool-corruption bug (the same
// backing vectors would be handed to two NewBatch callers); the released
// flag makes the second call a counted no-op instead.
func (b *Batch) Release() {
	if b == nil {
		return
	}
	if b.Shared {
		if o := b.Owner; o != nil {
			b.Owner = nil
			o.Release()
		}
		return
	}
	if !b.released.CompareAndSwap(false, true) {
		poolDoubleReleases.Add(1)
		return
	}
	putSel(b.Sel)
	b.Sel = nil
	poolPuts.Add(1)
	batchPool.Put(b)
}

// batchPool recycles batches and their vector storage: the executor hot
// loops (scan columnarization, join/agg output) would otherwise trade
// the row path's lock traffic for GC pressure.
var batchPool = sync.Pool{New: func() any { return &Batch{} }}

// selPool recycles selection vectors (one refinement per filter per
// batch in steady state).
var selPool = sync.Pool{New: func() any { return make([]int, 0, DefaultSize) }}

// GetSel returns an empty selection slice from the pool.
func GetSel() []int { return selPool.Get().([]int)[:0] }

// putSel returns a selection slice to the pool.
func putSel(sel []int) {
	if sel != nil {
		selPool.Put(sel[:0]) //nolint:staticcheck // slice header reuse is the point
	}
}

// PutSel releases a selection slice that was detached from a batch.
func PutSel(sel []int) { putSel(sel) }

// Pool traffic counters, exported through PoolStats for the cluster
// metrics snapshot. poolDoubleReleases counts Release calls blocked by
// the poison flag — nonzero means a consumer has an ownership bug.
var (
	poolGets           atomic.Int64
	poolPuts           atomic.Int64
	poolDoubleReleases atomic.Int64
)

// PoolStats reports cumulative batch-pool traffic across the process.
func PoolStats() (gets, puts, doubleReleases int64) {
	return poolGets.Load(), poolPuts.Load(), poolDoubleReleases.Load()
}
