package vector

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// mkRaw builds a raw typed vector of a known kind from values, the way
// colindex columns are built (kind preset from the schema, NULLs into
// typed storage).
func mkRaw(kind types.Kind, vals []types.Value) *Vector {
	v := New(kind, len(vals))
	for _, val := range vals {
		v.Append(val)
	}
	return v
}

// assertSame checks enc's accessors against the reference values.
func assertSame(t *testing.T, label string, enc *Vector, vals []types.Value) {
	t.Helper()
	if enc.Len() != len(vals) {
		t.Fatalf("%s: len %d, want %d", label, enc.Len(), len(vals))
	}
	for i, want := range vals {
		if got, isnull := enc.Value(i), enc.IsNull(i); isnull != want.IsNull() || got.Compare(want) != 0 {
			t.Fatalf("%s: pos %d: got %v (null=%v), want %v", label, i, got, isnull, want)
		}
	}
}

func randInts(rng *rand.Rand, n int, nullRate float64, span int64) []types.Value {
	vals := make([]types.Value, n)
	for i := range vals {
		if rng.Float64() < nullRate {
			vals[i] = types.Null()
			continue
		}
		var v int64
		if span >= 1<<61 { // 2*span+1 would overflow Int63n's bound
			v = int64(rng.Uint64())
		} else {
			v = rng.Int63n(2*span+1) - span
		}
		vals[i] = types.Int(v)
	}
	return vals
}

func randStrs(rng *rand.Rand, n int, nullRate float64, card int) []types.Value {
	dict := make([]string, card)
	for i := range dict {
		b := make([]byte, 1+rng.Intn(12))
		for j := range b {
			b[j] = byte('a' + rng.Intn(26))
		}
		dict[i] = string(b)
	}
	vals := make([]types.Value, n)
	for i := range vals {
		if rng.Float64() < nullRate {
			vals[i] = types.Null()
			continue
		}
		vals[i] = types.Str(dict[rng.Intn(card)])
	}
	return vals
}

func randRuns(rng *rand.Rand, n int, nullRate float64) []types.Value {
	vals := make([]types.Value, 0, n)
	for len(vals) < n {
		runLen := 1 + rng.Intn(16)
		var v types.Value
		if rng.Float64() < nullRate {
			v = types.Null()
		} else {
			v = types.Int(rng.Int63n(8))
		}
		for k := 0; k < runLen && len(vals) < n; k++ {
			vals = append(vals, v)
		}
	}
	return vals
}

// roundTrip encodes a copy, checks accessors, checks a prefix view,
// appends a post-encoding tail through the Vector accessor, and decodes
// back to raw — the full life cycle every colindex column goes through.
func roundTrip(t *testing.T, kind types.Kind, enc Encoding, vals, tail []types.Value) {
	t.Helper()
	v := mkRaw(kind, vals)
	if !v.EncodeAs(enc) {
		t.Fatalf("EncodeAs(%v) refused for kind %v", enc, v.Kind)
	}
	if len(vals) > 0 && !v.Encoded() {
		t.Fatalf("EncodeAs(%v) left vector raw", enc)
	}
	assertSame(t, "encoded", v, vals)
	if n := len(vals) / 2; n > 0 {
		assertSame(t, "view", v.View(n), vals[:n])
	}
	all := vals
	for _, val := range tail {
		v.Append(val)
		all = append(append([]types.Value{}, all...), val)
	}
	assertSame(t, "appended", v, all)
	assertSame(t, "view-full", v.View(len(all)), all)
	v.Decode()
	if v.Encoded() {
		t.Fatal("Decode left vector encoded")
	}
	assertSame(t, "decoded", v, all)
}

func TestDictRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 7, 63, 64, 65, 1000} {
		for _, nullRate := range []float64{0, 0.1, 1} {
			vals := randStrs(rng, n, nullRate, 7)
			roundTrip(t, types.KindString, EncDict, vals, randStrs(rng, 9, 0.3, 5))
		}
	}
}

func TestPackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 7, 63, 64, 65, 1000} {
		for _, nullRate := range []float64{0, 0.1, 1} {
			for _, span := range []int64{0, 5, 1 << 20, 1 << 62} {
				vals := randInts(rng, n, nullRate, span)
				// The tail spans a wider domain, forcing width-growth repacks.
				roundTrip(t, types.KindInt, EncPack, vals, randInts(rng, 9, 0.3, 1<<40))
			}
		}
	}
}

func TestRLERoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, nullRate := range []float64{0, 0.2, 1} {
			vals := randRuns(rng, n, nullRate)
			roundTrip(t, types.KindInt, EncRLE, vals, randRuns(rng, 9, 0.3))
		}
	}
	// RLE over strings and floats too.
	vals := []types.Value{types.Str("a"), types.Str("a"), types.Null(), types.Str("b")}
	roundTrip(t, types.KindString, EncRLE, vals, []types.Value{types.Str("b"), types.Null()})
	fvals := []types.Value{types.Float(1.5), types.Float(1.5), types.Float(-2)}
	roundTrip(t, types.KindFloat, EncRLE, fvals, []types.Value{types.Float(-2)})
}

func TestPackWidthGrowth(t *testing.T) {
	// Each append doubles the magnitude: every step forces a repack and
	// must preserve the full prefix.
	var vals []types.Value
	v := int64(1)
	for i := 0; i < 62; i++ {
		vals = append(vals, types.Int(v), types.Int(-v))
		v *= 2
	}
	roundTrip(t, types.KindInt, EncPack, vals, []types.Value{types.Int(0)})
}

func TestEncodeAsRefusesWrongKind(t *testing.T) {
	f := mkRaw(types.KindFloat, []types.Value{types.Float(1)})
	if f.EncodeAs(EncDict) || f.EncodeAs(EncPack) {
		t.Fatal("float vector accepted dict/pack encoding")
	}
	s := mkRaw(types.KindString, []types.Value{types.Str("x")})
	if s.EncodeAs(EncPack) {
		t.Fatal("string vector accepted pack encoding")
	}
	if !s.EncodeAs(EncDict) {
		t.Fatal("string vector refused dict encoding")
	}
}

// TestEncodedAppendClassMismatch checks the degrade path: a value the
// encoding can't hold decodes back to raw storage, preserving data.
func TestEncodedAppendClassMismatch(t *testing.T) {
	vals := []types.Value{types.Str("a"), types.Str("b")}
	v := mkRaw(types.KindString, vals)
	v.EncodeAs(EncDict)
	v.Append(types.Int(7))
	if v.Encoded() {
		t.Fatal("class mismatch did not decode")
	}
	assertSame(t, "degraded", v, append(vals, types.Int(7)))
}

func TestDictFilterCmp(t *testing.T) {
	vals := randStrs(rand.New(rand.NewSource(4)), 300, 0.1, 6)
	v := mkRaw(types.KindString, vals)
	v.EncodeAs(EncDict)
	lit := vals[17]
	for lit.IsNull() {
		lit = vals[rand.Intn(len(vals))]
	}
	sel := make([]int, len(vals))
	for i := range sel {
		sel[i] = i
	}
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		got := v.Dict.FilterCmp(op, lit.S, sel, nil)
		var want []int
		for i, val := range vals {
			if !val.IsNull() && CmpMatches(val.Compare(lit), op) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("op %s: %d survivors, want %d", op, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("op %s: survivor %d = %d, want %d", op, k, got[k], want[k])
			}
		}
	}
}

func TestPackAndRLEFilterCmp(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := randRuns(rng, 400, 0.1)
	sel := make([]int, len(vals))
	for i := range sel {
		sel[i] = i
	}
	lit := types.Int(3)
	check := func(label string, got []int, op string) {
		t.Helper()
		var want []int
		for i, val := range vals {
			if !val.IsNull() && CmpMatches(val.Compare(lit), op) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("%s op %s: %d survivors, want %d", label, op, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("%s op %s: survivor %d = %d, want %d", label, op, k, got[k], want[k])
			}
		}
	}
	p := mkRaw(types.KindInt, vals)
	p.EncodeAs(EncPack)
	r := mkRaw(types.KindInt, vals)
	r.EncodeAs(EncRLE)
	for _, op := range []string{"=", "<>", "<", "<=", ">", ">="} {
		check("pack", p.Pack.FilterIntCmp(op, lit.I, sel, nil), op)
		check("pack-float", p.Pack.FilterFloatCmp(op, float64(lit.I), sel, nil), op)
		check("rle", r.RLE.FilterCmp(op, lit, sel, nil), op)
	}
	sum, count := p.Pack.SumInt(sel)
	var wantSum, wantCount int64
	for _, val := range vals {
		if !val.IsNull() {
			wantSum += val.I
			wantCount++
		}
	}
	if sum != wantSum || count != wantCount {
		t.Fatalf("SumInt = (%d, %d), want (%d, %d)", sum, count, wantSum, wantCount)
	}
}

// FuzzBitPackRoundTrip feeds arbitrary byte streams as (value, null)
// pairs through the bit-pack encoder and checks encode→decode equality.
func FuzzBitPackRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 255, 128, 64})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		var vals []types.Value
		for len(data) >= 9 {
			v := int64(uint64(data[0]) | uint64(data[1])<<8 | uint64(data[2])<<16 |
				uint64(data[3])<<24 | uint64(data[4])<<32 | uint64(data[5])<<40 |
				uint64(data[6])<<48 | uint64(data[7])<<56)
			if data[8]&1 == 1 {
				vals = append(vals, types.Null())
			} else {
				vals = append(vals, types.Int(v))
			}
			data = data[9:]
		}
		v := mkRaw(types.KindInt, vals)
		if !v.EncodeAs(EncPack) {
			t.Fatal("pack refused int vector")
		}
		assertSame(t, "fuzz-pack", v, vals)
		v.Decode()
		assertSame(t, "fuzz-pack-decoded", v, vals)
	})
}

// FuzzDictRoundTrip splits fuzz input into short strings (0xff bytes
// mark NULLs) and round-trips them through the dictionary encoder.
func FuzzDictRoundTrip(f *testing.F) {
	f.Add([]byte("aa|bb|aa|cc"))
	f.Add([]byte{0xff, 'x', 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var vals []types.Value
		for _, part := range splitFuzz(data) {
			if part == nil {
				vals = append(vals, types.Null())
			} else {
				vals = append(vals, types.Str(string(part)))
			}
		}
		v := mkRaw(types.KindString, vals)
		if !v.EncodeAs(EncDict) {
			t.Fatal("dict refused string vector")
		}
		assertSame(t, "fuzz-dict", v, vals)
		v.Decode()
		assertSame(t, "fuzz-dict-decoded", v, vals)
	})
}

// FuzzRLERoundTrip maps fuzz bytes to a small value domain (forcing
// runs) and round-trips through the run-length encoder.
func FuzzRLERoundTrip(f *testing.F) {
	f.Add([]byte{1, 1, 1, 2, 2, 9, 9, 9, 9})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		var vals []types.Value
		for _, b := range data {
			if b&0x80 != 0 {
				vals = append(vals, types.Null())
			} else {
				vals = append(vals, types.Int(int64(b&7)))
			}
		}
		v := mkRaw(types.KindInt, vals)
		if !v.EncodeAs(EncRLE) {
			t.Fatal("rle refused int vector")
		}
		assertSame(t, "fuzz-rle", v, vals)
		assertSame(t, "fuzz-rle-view", v.View(len(vals)/2), vals[:len(vals)/2])
		v.Decode()
		assertSame(t, "fuzz-rle-decoded", v, vals)
	})
}

// splitFuzz splits on '|'; a 0xff byte anywhere in a segment makes it a
// NULL marker.
func splitFuzz(data []byte) [][]byte {
	var parts [][]byte
	start := 0
	emit := func(seg []byte) {
		for _, b := range seg {
			if b == 0xff {
				parts = append(parts, nil)
				return
			}
		}
		parts = append(parts, seg)
	}
	for i, b := range data {
		if b == '|' {
			emit(data[start:i])
			start = i + 1
		}
	}
	if start < len(data) {
		emit(data[start:])
	}
	return parts
}
