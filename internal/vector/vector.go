// Package vector defines the column-major batch representation shared
// by the vectorized executor (internal/executor batch mode), the column
// index (zero-copy batch scans) and the DN scan path (shard responses
// columnarized once at the source). A Batch holds one typed Vector per
// output column plus a selection vector; operators amortize per-row
// iteration costs over ~1024 rows and move whole batches through MPP
// exchanges (one queue operation per batch instead of per row).
package vector

import (
	"repro/internal/types"
)

// DefaultSize is the target rows per batch. Large enough to amortize
// virtual dispatch, queue locking and map-lookup overheads; small
// enough that a batch's working set stays cache-resident.
const DefaultSize = 1024

// Vector is one column's values. Exactly one payload representation is
// active, chosen by Kind:
//
//	KindInt, KindBool -> Ints (bools stored 0/1)
//	KindFloat         -> Floats
//	KindString        -> Strs
//	anything else     -> Box (generic boxed values, the slow path)
//
// Nulls, when non-nil, marks NULL positions; a nil Nulls slice means no
// value in the vector is NULL. Typed vectors degrade to Box when a
// value of a different class is appended (heterogeneous columns exist
// in partial-aggregate state rows, for example), so every column is
// representable and kernels fast-path the typed cases.
// An encoded payload (Dict/RLE/Pack, see encoding.go) replaces the raw
// slices while keeping the same accessor behavior; Encoded() reports
// it, and kernels that reach into the raw slices must check it first.
type Vector struct {
	Kind   types.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Nulls  []bool
	Box    []types.Value

	Dict *DictEnc
	RLE  *RLEEnc
	Pack *BitPackEnc

	length int
}

// New returns an empty vector of the given kind with capacity hint n.
func New(kind types.Kind, n int) *Vector {
	v := &Vector{Kind: kind}
	switch kind {
	case types.KindInt, types.KindBool:
		v.Ints = make([]int64, 0, n)
	case types.KindFloat:
		v.Floats = make([]float64, 0, n)
	case types.KindString:
		v.Strs = make([]string, 0, n)
	default:
		v.Kind = types.KindNull
		v.Box = make([]types.Value, 0, n)
	}
	return v
}

// Len returns the number of values.
func (v *Vector) Len() int { return v.length }

// Wrap builds a zero-copy vector over existing typed storage (the
// column index's vectors). Exactly one payload slice should be non-nil,
// matching kind; nulls may be nil. Slices are re-capped to n so a
// concurrent append to the underlying storage can never alias into the
// view. Wrapped vectors belong in Shared batches: the storage owner
// keeps ownership.
func Wrap(kind types.Kind, ints []int64, floats []float64, strs []string, nulls []bool, n int) *Vector {
	v := &Vector{Kind: kind, length: n}
	if ints != nil {
		v.Ints = ints[:n:n]
	}
	if floats != nil {
		v.Floats = floats[:n:n]
	}
	if strs != nil {
		v.Strs = strs[:n:n]
	}
	if nulls != nil {
		v.Nulls = nulls[:n:n]
	}
	return v
}

// Boxed reports whether the vector stores generic values.
func (v *Vector) Boxed() bool {
	switch v.Kind {
	case types.KindInt, types.KindBool, types.KindFloat, types.KindString:
		return false
	}
	return true
}

// fits reports whether val can be appended without degrading.
func (v *Vector) fits(val types.Value) bool {
	if val.IsNull() {
		return true
	}
	switch v.Kind {
	case types.KindInt, types.KindBool:
		return val.K == v.Kind
	case types.KindFloat:
		return val.K == types.KindFloat
	case types.KindString:
		return val.K == types.KindString
	}
	return true // boxed accepts anything
}

// degrade converts a typed vector to boxed storage in place.
func (v *Vector) degrade() {
	box := make([]types.Value, v.length)
	for i := 0; i < v.length; i++ {
		box[i] = v.Value(i)
	}
	v.Kind = types.KindNull
	v.Ints, v.Floats, v.Strs = nil, nil, nil
	v.Box = box
}

// Append adds one value, degrading to boxed storage on a class
// mismatch.
func (v *Vector) Append(val types.Value) {
	if v.Encoded() {
		v.appendEncoded(val)
		return
	}
	if !v.fits(val) {
		v.degrade()
	}
	null := val.IsNull()
	if null && v.Nulls == nil {
		// Materialize the null bitmap lazily: most columns never see one.
		v.Nulls = make([]bool, v.length, v.length+1)
	}
	if v.Nulls != nil {
		v.Nulls = append(v.Nulls, null)
	}
	switch v.Kind {
	case types.KindInt, types.KindBool:
		v.Ints = append(v.Ints, val.I)
	case types.KindFloat:
		v.Floats = append(v.Floats, val.F)
	case types.KindString:
		v.Strs = append(v.Strs, val.S)
	default:
		v.Box = append(v.Box, val)
	}
	v.length++
}

// IsNull reports whether position i holds NULL.
func (v *Vector) IsNull(i int) bool {
	switch {
	case v.Dict != nil:
		return v.Dict.IsNull(i)
	case v.Pack != nil:
		return v.Pack.IsNull(i)
	case v.RLE != nil:
		return v.RLE.IsNull(i)
	}
	if v.Nulls != nil {
		return v.Nulls[i]
	}
	if v.Kind == types.KindNull && v.Box != nil {
		return v.Box[i].IsNull()
	}
	return false
}

// Value boxes position i.
func (v *Vector) Value(i int) types.Value {
	switch {
	case v.Dict != nil:
		if v.Dict.IsNull(i) {
			return types.Null()
		}
		return types.Str(v.Dict.Str(i))
	case v.Pack != nil:
		if v.Pack.IsNull(i) {
			return types.Null()
		}
		if v.Kind == types.KindBool {
			return types.Bool(v.Pack.Get(i) != 0)
		}
		return types.Int(v.Pack.Get(i))
	case v.RLE != nil:
		return v.RLE.Value(i)
	}
	if v.Nulls != nil && v.Nulls[i] {
		return types.Null()
	}
	switch v.Kind {
	case types.KindInt:
		return types.Int(v.Ints[i])
	case types.KindBool:
		return types.Bool(v.Ints[i] != 0)
	case types.KindFloat:
		return types.Float(v.Floats[i])
	case types.KindString:
		return types.Str(v.Strs[i])
	default:
		return v.Box[i]
	}
}

// reset empties the vector for reuse, keeping capacity. The kind is
// re-inferred from the first appended value, so a recycled vector can
// serve a column of any type.
func (v *Vector) reset() {
	v.length = 0
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Strs = v.Strs[:0]
	v.Nulls = nil
	v.Box = v.Box[:0]
	v.Dict, v.RLE, v.Pack = nil, nil, nil
	v.Kind = types.KindNull
}

// FromValue retypes an empty recycled vector for its first value: typed
// storage when the value has a typed representation, boxed otherwise.
func (v *Vector) retypeFor(val types.Value) {
	switch val.K {
	case types.KindInt, types.KindBool:
		v.Kind = val.K
		if v.Ints == nil {
			v.Ints = make([]int64, 0, DefaultSize)
		}
	case types.KindFloat:
		v.Kind = types.KindFloat
		if v.Floats == nil {
			v.Floats = make([]float64, 0, DefaultSize)
		}
	case types.KindString:
		v.Kind = types.KindString
		if v.Strs == nil {
			v.Strs = make([]string, 0, DefaultSize)
		}
	default:
		v.Kind = types.KindNull
	}
}

// AppendTyped adds one value to a possibly-empty vector, choosing typed
// storage from the first non-null value (builders use this so columns
// inferred from row data stay vectorizable).
func (v *Vector) AppendTyped(val types.Value) {
	if v.length == 0 && !val.IsNull() && v.Kind == types.KindNull && len(v.Box) == 0 {
		v.retypeFor(val)
	}
	v.Append(val)
}

// appendNull appends one NULL to typed or boxed storage.
func (v *Vector) appendNull() {
	if v.Encoded() {
		v.appendEncoded(types.Null())
		return
	}
	if v.Nulls == nil {
		v.Nulls = make([]bool, v.length, v.length+1)
	}
	v.Nulls = append(v.Nulls, true)
	switch v.Kind {
	case types.KindInt, types.KindBool:
		v.Ints = append(v.Ints, 0)
	case types.KindFloat:
		v.Floats = append(v.Floats, 0)
	case types.KindString:
		v.Strs = append(v.Strs, "")
	default:
		v.Box = append(v.Box, types.Null())
	}
	v.length++
}

// AppendRowsColumn bulk-appends column c of rows into an empty vector.
// A nil row contributes NULL (outer-join null extension). The storage
// kind comes from the first non-null value — even past leading NULLs —
// and the per-kind inner loops skip the fits/dispatch work Append pays
// per value; a later class mismatch degrades to boxed storage exactly
// like Append.
func (v *Vector) AppendRowsColumn(rows []types.Row, c int) {
	n := len(rows)
	i := 0
	for ; i < n; i++ {
		if rows[i] != nil && !rows[i][c].IsNull() {
			break
		}
	}
	if i == n { // all NULL: bitmap only, storage stays untyped
		for k := 0; k < n; k++ {
			v.appendNull()
		}
		return
	}
	if v.length == 0 && v.Kind == types.KindNull && len(v.Box) == 0 {
		v.retypeFor(rows[i][c])
	}
	for k := 0; k < i; k++ { // leading NULLs, now typed
		v.appendNull()
	}
	switch v.Kind {
	case types.KindInt, types.KindBool:
		for ; i < n; i++ {
			if rows[i] == nil {
				v.appendNull()
				continue
			}
			val := rows[i][c]
			if val.K == v.Kind {
				v.Ints = append(v.Ints, val.I)
				if v.Nulls != nil {
					v.Nulls = append(v.Nulls, false)
				}
				v.length++
			} else if val.IsNull() {
				v.appendNull()
			} else {
				break // class mismatch: degrade via the slow tail
			}
		}
	case types.KindFloat:
		for ; i < n; i++ {
			if rows[i] == nil {
				v.appendNull()
				continue
			}
			val := rows[i][c]
			if val.K == types.KindFloat {
				v.Floats = append(v.Floats, val.F)
				if v.Nulls != nil {
					v.Nulls = append(v.Nulls, false)
				}
				v.length++
			} else if val.IsNull() {
				v.appendNull()
			} else {
				break
			}
		}
	case types.KindString:
		for ; i < n; i++ {
			if rows[i] == nil {
				v.appendNull()
				continue
			}
			val := rows[i][c]
			if val.K == types.KindString {
				v.Strs = append(v.Strs, val.S)
				if v.Nulls != nil {
					v.Nulls = append(v.Nulls, false)
				}
				v.length++
			} else if val.IsNull() {
				v.appendNull()
			} else {
				break
			}
		}
	}
	for ; i < n; i++ { // mismatched class or boxed column
		if rows[i] == nil {
			v.appendNull()
			continue
		}
		v.Append(rows[i][c])
	}
}

// AppendGather appends src's values at the given physical positions —
// equivalent to AppendTyped(src.Value(p)) per position, but typed
// columns copy payload-to-payload without boxing (the hash join's left
// side emits through this).
func (v *Vector) AppendGather(src *Vector, pos []int) {
	if len(pos) == 0 {
		return
	}
	fresh := v.length == 0 && v.Kind == types.KindNull && len(v.Box) == 0 && !v.Encoded()
	if src.Dict != nil && fresh {
		// Late materialization off a dictionary column: gather decodes
		// only the surviving positions, payload-to-payload.
		v.gatherDict(src.Dict, pos)
		return
	}
	if src.Boxed() || src.Encoded() || !fresh {
		for _, p := range pos {
			v.AppendTyped(src.Value(p))
		}
		return
	}
	v.Kind = src.Kind
	switch src.Kind {
	case types.KindInt, types.KindBool:
		if v.Ints == nil {
			v.Ints = make([]int64, 0, len(pos))
		}
		for _, p := range pos {
			v.Ints = append(v.Ints, src.Ints[p])
		}
	case types.KindFloat:
		if v.Floats == nil {
			v.Floats = make([]float64, 0, len(pos))
		}
		for _, p := range pos {
			v.Floats = append(v.Floats, src.Floats[p])
		}
	case types.KindString:
		if v.Strs == nil {
			v.Strs = make([]string, 0, len(pos))
		}
		for _, p := range pos {
			v.Strs = append(v.Strs, src.Strs[p])
		}
	}
	if src.Nulls != nil {
		for k, p := range pos {
			if src.Nulls[p] && v.Nulls == nil {
				v.Nulls = make([]bool, k, len(pos))
			}
			if v.Nulls != nil {
				v.Nulls = append(v.Nulls, src.Nulls[p])
			}
		}
	}
	v.length += len(pos)
}
