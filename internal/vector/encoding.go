package vector

import (
	"math/bits"
	"sort"

	"repro/internal/types"
)

// This file implements the light-weight column encodings the column
// index stores and the batch engine executes on directly (ROADMAP item
// 1, PolarStore-style "compression pays twice"): dictionary for
// low-cardinality strings, run-length for heavily repeating values
// (visibility timestamps, sorted/clustered columns) and zigzag
// bit-packing for small-domain integers. All three live behind the
// existing Vector accessors (Value/IsNull/Len), so every consumer that
// boxes per position keeps working unchanged; hot kernels ask Encoded()
// and switch to code-space execution instead.
//
// Concurrency contract (shared with the raw payloads): column storage
// is append-only under the owner's write lock; View(n) is taken under
// the read lock and returns a snapshot that is safe to read after the
// lock is released. For bit-packed storage the last partially-filled
// word is still mutated by future appends, so views copy it (and only
// it) instead of aliasing; run-length views copy the run-end prefix
// because the writer extends the live run in place.

// Encoding identifies an encoded representation for EncodeAs.
type Encoding int

// Encodings.
const (
	EncNone Encoding = iota
	EncDict
	EncRLE
	EncPack
)

// zigzag maps signed integers to unsigned so small-magnitude values
// (positive or negative) pack into few bits.
func zigzag(v int64) uint64 { return uint64((v << 1) ^ (v >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// ---------------------------------------------------------------------------
// BitPackEnc

// BitPackEnc stores int64 values zigzag-encoded at a fixed bit width in
// a packed little-endian word stream. The width grows to fit the widest
// value seen, repacking in place; widths only grow, so a column repacks
// at most 64 times over its lifetime. NULL positions store value 0 plus
// a bit in a packed null bitmap (lazily materialized, like Vector.Nulls).
type BitPackEnc struct {
	Words     []uint64
	NullWords []uint64 // packed null bitmap; nil = no NULLs so far
	Width     uint8    // bits per value; 0 = every value is zero
	N         int

	// Views copy the writer's partially-filled boundary words here so
	// the shared prefix can alias without racing future appends.
	last        uint64
	lastNull    uint64
	hasLastNull bool
}

// Len returns the number of values.
func (e *BitPackEnc) Len() int { return e.N }

func (e *BitPackEnc) word(j int) uint64 {
	if j < len(e.Words) {
		return e.Words[j]
	}
	return e.last
}

// Get returns the value at position i (0 for NULL positions).
func (e *BitPackEnc) Get(i int) int64 {
	w := uint(e.Width)
	if w == 0 {
		return 0
	}
	bit := i * int(w)
	j, off := bit>>6, uint(bit&63)
	u := e.word(j) >> off
	if off+w > 64 {
		u |= e.word(j+1) << (64 - off)
	}
	if w < 64 {
		u &= 1<<w - 1
	}
	return unzigzag(u)
}

// IsNull reports whether position i is NULL.
func (e *BitPackEnc) IsNull(i int) bool {
	if e.NullWords == nil && !e.hasLastNull {
		return false
	}
	j := i >> 6
	var wd uint64
	if j < len(e.NullWords) {
		wd = e.NullWords[j]
	} else {
		wd = e.lastNull
	}
	return wd>>uint(i&63)&1 == 1
}

// putBits ORs the low w bits of u into the stream at bitpos. The
// destination bits must be zero.
func putBits(words []uint64, bitpos int, w uint8, u uint64) {
	j, off := bitpos>>6, uint(bitpos&63)
	words[j] |= u << off
	if off+uint(w) > 64 {
		words[j+1] |= u >> (64 - off)
	}
}

// repack rewrites the stream at a wider width.
func (e *BitPackEnc) repack(width uint8) {
	words := make([]uint64, (e.N*int(width)+63)/64)
	for i := 0; i < e.N; i++ {
		putBits(words, i*int(width), width, zigzag(e.Get(i)))
	}
	e.Words, e.Width = words, width
}

// Append adds one value. Writer-side only (never call on a view).
func (e *BitPackEnc) Append(v int64, null bool) {
	if null {
		v = 0
		j := e.N >> 6
		for len(e.NullWords) <= j {
			e.NullWords = append(e.NullWords, 0)
		}
		e.NullWords[j] |= 1 << uint(e.N&63)
	}
	u := zigzag(v)
	if need := uint8(bits.Len64(u)); need > e.Width {
		e.repack(need)
	}
	if e.Width > 0 {
		endBit := (e.N + 1) * int(e.Width)
		for len(e.Words)*64 < endBit {
			e.Words = append(e.Words, 0)
		}
		putBits(e.Words, e.N*int(e.Width), e.Width, u)
	}
	e.N++
}

// View returns a read-only snapshot of the first n values. Must be
// called under the owner's lock; the result is safe to read after the
// lock is released even while appends continue.
func (e *BitPackEnc) View(n int) *BitPackEnc {
	v := &BitPackEnc{Width: e.Width, N: n}
	nb := n * int(e.Width)
	full := nb >> 6
	if full > len(e.Words) {
		full = len(e.Words)
	}
	v.Words = e.Words[:full:full]
	if nb&63 != 0 && full < len(e.Words) {
		v.last = e.Words[full]
	}
	if e.NullWords != nil || e.hasLastNull {
		nf := n >> 6
		if nf > len(e.NullWords) {
			nf = len(e.NullWords)
		}
		v.NullWords = e.NullWords[:nf:nf]
		v.hasLastNull = true
		if n&63 != 0 && nf < len(e.NullWords) {
			v.lastNull = e.NullWords[nf]
		}
	}
	return v
}

// SizeBytes is the resident payload size.
func (e *BitPackEnc) SizeBytes() int {
	return 8 * (len(e.Words) + len(e.NullWords))
}

// ---------------------------------------------------------------------------
// RLEEnc

// RLEEnc stores runs of equal values: Ends[r] is the cumulative end row
// of run r (exclusive), with one typed value (or a NULL flag) per run.
// The writer extends the live run in place, so views copy the Ends
// prefix; value slices are append-only and alias safely.
type RLEEnc struct {
	Kind     types.Kind
	Ends     []int32
	Ints     []int64
	Floats   []float64
	Strs     []string
	NullRuns []bool // nil = no NULL runs so far
	N        int
}

// Len returns the number of values.
func (e *RLEEnc) Len() int { return e.N }

// Runs returns the run count.
func (e *RLEEnc) Runs() int { return len(e.Ends) }

// RunStart returns the first row of run r.
func (e *RLEEnc) RunStart(r int) int {
	if r == 0 {
		return 0
	}
	return int(e.Ends[r-1])
}

// RunNull reports whether run r is a NULL run.
func (e *RLEEnc) RunNull(r int) bool {
	return e.NullRuns != nil && e.NullRuns[r]
}

// RunValue boxes run r's value.
func (e *RLEEnc) RunValue(r int) types.Value {
	if e.RunNull(r) {
		return types.Null()
	}
	switch e.Kind {
	case types.KindInt:
		return types.Int(e.Ints[r])
	case types.KindBool:
		return types.Bool(e.Ints[r] != 0)
	case types.KindFloat:
		return types.Float(e.Floats[r])
	default:
		return types.Str(e.Strs[r])
	}
}

// FindRun locates the run containing row i. hint is the caller's run
// cursor (ascending scans advance it for amortized O(1) lookups); any
// out-of-order access falls back to binary search.
func (e *RLEEnc) FindRun(i, hint int) int {
	if hint >= 0 && hint < len(e.Ends) && i < int(e.Ends[hint]) && i >= e.RunStart(hint) {
		return hint
	}
	if next := hint + 1; hint >= 0 && next < len(e.Ends) && i >= int(e.Ends[hint]) && i < int(e.Ends[next]) {
		return next
	}
	return sort.Search(len(e.Ends), func(r int) bool { return int(e.Ends[r]) > i })
}

// Value boxes position i (binary-search path; scans should use FindRun
// with a cursor and RunValue instead).
func (e *RLEEnc) Value(i int) types.Value {
	return e.RunValue(e.FindRun(i, -1))
}

// IsNull reports whether position i is NULL.
func (e *RLEEnc) IsNull(i int) bool {
	if e.NullRuns == nil {
		return false
	}
	return e.NullRuns[e.FindRun(i, -1)]
}

// Append adds one value (already coerced to Kind, or NULL). Writer-side
// only.
func (e *RLEEnc) Append(val types.Value) {
	null := val.IsNull()
	if r := len(e.Ends) - 1; r >= 0 && e.sameAsRun(r, val, null) {
		e.Ends[r]++
		e.N++
		return
	}
	if null && e.NullRuns == nil {
		e.NullRuns = make([]bool, len(e.Ends), len(e.Ends)+1)
	}
	if e.NullRuns != nil {
		e.NullRuns = append(e.NullRuns, null)
	}
	switch e.Kind {
	case types.KindInt, types.KindBool:
		e.Ints = append(e.Ints, val.I)
	case types.KindFloat:
		e.Floats = append(e.Floats, val.F)
	default:
		e.Strs = append(e.Strs, val.S)
	}
	e.Ends = append(e.Ends, int32(e.N+1))
	e.N++
}

func (e *RLEEnc) sameAsRun(r int, val types.Value, null bool) bool {
	if e.RunNull(r) != null {
		return false
	}
	if null {
		return true
	}
	switch e.Kind {
	case types.KindInt, types.KindBool:
		return e.Ints[r] == val.I
	case types.KindFloat:
		return e.Floats[r] == val.F
	default:
		return e.Strs[r] == val.S
	}
}

// View returns a read-only snapshot of the first n values. Must be
// called under the owner's lock.
func (e *RLEEnc) View(n int) *RLEEnc {
	v := &RLEEnc{Kind: e.Kind, N: n}
	if n == 0 {
		return v
	}
	k := sort.Search(len(e.Ends), func(r int) bool { return int(e.Ends[r]) >= n }) + 1
	ends := make([]int32, k)
	copy(ends, e.Ends[:k])
	if ends[k-1] > int32(n) {
		ends[k-1] = int32(n)
	}
	v.Ends = ends
	v.Ints = e.Ints[:min(k, len(e.Ints)):min(k, len(e.Ints))]
	v.Floats = e.Floats[:min(k, len(e.Floats)):min(k, len(e.Floats))]
	v.Strs = e.Strs[:min(k, len(e.Strs)):min(k, len(e.Strs))]
	if e.NullRuns != nil {
		// NullRuns is backfilled to the full run count when materialized,
		// so it always covers runs [0, k).
		v.NullRuns = e.NullRuns[:k:k]
	}
	return v
}

// SizeBytes is the resident payload size.
func (e *RLEEnc) SizeBytes() int {
	n := 4*len(e.Ends) + 8*len(e.Ints) + 8*len(e.Floats) + len(e.NullRuns)
	for _, s := range e.Strs {
		n += 16 + len(s)
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------------
// DictEnc

// DictEnc stores low-cardinality strings as bit-packed codes into an
// append-only dictionary. Codes are assigned in first-appearance order
// and never reused, so within one column a code comparison is an exact
// equality test and per-code match tables evaluate ordered predicates
// with |dict| string comparisons instead of |rows|.
type DictEnc struct {
	Codes BitPackEnc
	Vals  []string
	// index is writer-side only (views carry nil and fall back to a
	// linear scan in LookupCode, which is fine: lookups per scan are
	// O(|dict|), not O(rows)).
	index map[string]uint32
}

// NewDictEnc returns an empty writer-side dictionary encoding.
func NewDictEnc() *DictEnc {
	return &DictEnc{index: make(map[string]uint32)}
}

// Len returns the number of values.
func (e *DictEnc) Len() int { return e.Codes.N }

// Card returns the dictionary cardinality.
func (e *DictEnc) Card() int { return len(e.Vals) }

// Code returns the dictionary code at position i (meaningless for NULL
// positions).
func (e *DictEnc) Code(i int) uint32 { return uint32(e.Codes.Get(i)) }

// IsNull reports whether position i is NULL.
func (e *DictEnc) IsNull(i int) bool { return e.Codes.IsNull(i) }

// Str returns the string at position i ("" for NULL positions).
func (e *DictEnc) Str(i int) string {
	if e.Codes.IsNull(i) {
		return ""
	}
	return e.Vals[e.Codes.Get(i)]
}

// LookupCode returns the code for s, if present.
func (e *DictEnc) LookupCode(s string) (uint32, bool) {
	if e.index != nil {
		c, ok := e.index[s]
		return c, ok
	}
	for c, v := range e.Vals {
		if v == s {
			return uint32(c), true
		}
	}
	return 0, false
}

// Append adds one value. Writer-side only.
func (e *DictEnc) Append(s string, null bool) {
	if null {
		e.Codes.Append(0, true)
		return
	}
	c, ok := e.index[s]
	if !ok {
		c = uint32(len(e.Vals))
		e.Vals = append(e.Vals, s)
		e.index[s] = c
	}
	e.Codes.Append(int64(c), false)
}

// View returns a read-only snapshot of the first n values. Must be
// called under the owner's lock. The dictionary may contain codes not
// referenced below n; that is harmless.
func (e *DictEnc) View(n int) *DictEnc {
	return &DictEnc{Codes: *e.Codes.View(n), Vals: e.Vals[:len(e.Vals):len(e.Vals)]}
}

// SizeBytes is the resident payload size (codes + dictionary).
func (e *DictEnc) SizeBytes() int {
	n := e.Codes.SizeBytes()
	for _, s := range e.Vals {
		n += 16 + len(s)
	}
	return n
}

// ---------------------------------------------------------------------------
// Vector integration

// Encoded reports whether the vector's payload is encoded. Kernels that
// touch Ints/Floats/Strs directly must check this and dispatch to the
// code-space kernels (or the boxed accessors) instead.
func (v *Vector) Encoded() bool { return v.Dict != nil || v.RLE != nil || v.Pack != nil }

// EncodeAs re-encodes a raw typed vector's payload in place. Returns
// false (leaving the vector unchanged) when the encoding doesn't apply
// to the vector's kind. Writer-side only.
func (v *Vector) EncodeAs(enc Encoding) bool {
	if v.Encoded() || v.Boxed() {
		return enc == EncNone && !v.Boxed()
	}
	switch enc {
	case EncDict:
		if v.Kind != types.KindString {
			return false
		}
		d := NewDictEnc()
		for i := 0; i < v.length; i++ {
			d.Append(v.Strs[i], v.Nulls != nil && v.Nulls[i])
		}
		v.Dict = d
	case EncPack:
		if v.Kind != types.KindInt && v.Kind != types.KindBool {
			return false
		}
		p := &BitPackEnc{}
		for i := 0; i < v.length; i++ {
			p.Append(v.Ints[i], v.Nulls != nil && v.Nulls[i])
		}
		v.Pack = p
	case EncRLE:
		r := &RLEEnc{Kind: v.Kind}
		for i := 0; i < v.length; i++ {
			r.Append(v.Value(i))
		}
		v.RLE = r
	default:
		return enc == EncNone
	}
	v.Ints, v.Floats, v.Strs, v.Nulls = nil, nil, nil, nil
	return true
}

// Decode materializes an encoded payload back to raw typed storage in
// place (the degrade path when an encoding stops paying off, and the
// raw fallback for values an encoding can't hold). Writer-side only.
func (v *Vector) Decode() {
	if !v.Encoded() {
		return
	}
	n := v.length
	var nulls []bool
	anyNull := false
	hasNull := func(i int) bool {
		switch {
		case v.Dict != nil:
			return v.Dict.IsNull(i)
		case v.Pack != nil:
			return v.Pack.IsNull(i)
		default:
			return v.RLE.IsNull(i)
		}
	}
	for i := 0; i < n; i++ {
		if hasNull(i) {
			anyNull = true
			break
		}
	}
	if anyNull {
		nulls = make([]bool, n)
	}
	switch v.Kind {
	case types.KindInt, types.KindBool:
		ints := make([]int64, n)
		for i := 0; i < n; i++ {
			if anyNull && hasNull(i) {
				nulls[i] = true
				continue
			}
			if v.Pack != nil {
				ints[i] = v.Pack.Get(i)
			} else {
				ints[i] = v.Value(i).I
			}
		}
		v.Ints = ints
	case types.KindFloat:
		floats := make([]float64, n)
		for i := 0; i < n; i++ {
			if anyNull && hasNull(i) {
				nulls[i] = true
				continue
			}
			floats[i] = v.Value(i).F
		}
		v.Floats = floats
	case types.KindString:
		strs := make([]string, n)
		for i := 0; i < n; i++ {
			if anyNull && hasNull(i) {
				nulls[i] = true
				continue
			}
			if v.Dict != nil {
				strs[i] = v.Dict.Str(i)
			} else {
				strs[i] = v.Value(i).S
			}
		}
		v.Strs = strs
	}
	v.Nulls = nulls
	v.Dict, v.RLE, v.Pack = nil, nil, nil
}

// appendEncoded routes Append into the active encoding, falling back to
// decode + raw append when the value doesn't fit the encoding's class.
func (v *Vector) appendEncoded(val types.Value) {
	null := val.IsNull()
	switch {
	case v.Dict != nil:
		if !null && val.K != types.KindString {
			v.Decode()
			v.Append(val)
			return
		}
		v.Dict.Append(val.S, null)
	case v.Pack != nil:
		if !null && val.K != types.KindInt && val.K != types.KindBool {
			v.Decode()
			v.Append(val)
			return
		}
		v.Pack.Append(val.I, null)
	default:
		if !null && !sameClass(v.RLE.Kind, val.K) {
			v.Decode()
			v.Append(val)
			return
		}
		v.RLE.Append(val)
	}
	v.length++
}

func sameClass(a, b types.Kind) bool {
	intish := func(k types.Kind) bool { return k == types.KindInt || k == types.KindBool }
	if intish(a) {
		return intish(b)
	}
	return a == b
}

// View returns a zero-copy read-only snapshot of the first n values,
// raw or encoded. Must be called under the storage owner's lock (the
// column index's RLock); the append-only contract makes the result safe
// to read afterward. Views belong in Shared batches.
func (v *Vector) View(n int) *Vector {
	out := &Vector{Kind: v.Kind, length: n}
	switch {
	case v.Dict != nil:
		out.Dict = v.Dict.View(n)
	case v.Pack != nil:
		out.Pack = v.Pack.View(n)
	case v.RLE != nil:
		out.RLE = v.RLE.View(n)
	default:
		if v.Ints != nil {
			out.Ints = v.Ints[:n:n]
		}
		if v.Floats != nil {
			out.Floats = v.Floats[:n:n]
		}
		if v.Strs != nil {
			out.Strs = v.Strs[:n:n]
		}
		if v.Nulls != nil {
			out.Nulls = v.Nulls[:n:n]
		}
		if v.Box != nil {
			out.Box = v.Box[:n:n]
		}
	}
	return out
}

// gatherDict appends src's values at pos into an empty raw vector,
// decoding through the dictionary without boxing.
func (v *Vector) gatherDict(src *DictEnc, pos []int) {
	v.Kind = types.KindString
	if v.Strs == nil {
		v.Strs = make([]string, 0, len(pos))
	}
	for k, p := range pos {
		if src.IsNull(p) {
			if v.Nulls == nil {
				v.Nulls = make([]bool, v.length+k, v.length+len(pos))
			}
			v.Nulls = append(v.Nulls, true)
			v.Strs = append(v.Strs, "")
			continue
		}
		if v.Nulls != nil {
			v.Nulls = append(v.Nulls, false)
		}
		v.Strs = append(v.Strs, src.Vals[src.Codes.Get(p)])
	}
	v.length += len(pos)
}

// ---------------------------------------------------------------------------
// Code-space kernels (used by executor batch operators and colindex)

// CmpMatches reports whether a three-way comparison result satisfies a
// SQL comparison operator.
func CmpMatches(c int, op string) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default:
		return c >= 0
	}
}

// MatchTable evaluates `value OP lit` once per dictionary entry,
// returning a per-code truth table: |dict| string comparisons replace
// |rows| of them, and the row loop becomes a code-indexed bit test.
func (e *DictEnc) MatchTable(op string, lit string) []bool {
	table := make([]bool, len(e.Vals))
	for c, s := range e.Vals {
		var cmp int
		switch {
		case s < lit:
			cmp = -1
		case s > lit:
			cmp = 1
		}
		table[c] = CmpMatches(cmp, op)
	}
	return table
}

// FilterCmp refines sel against `column OP lit`, appending survivors to
// out. NULL positions never match (SQL comparison semantics).
func (e *DictEnc) FilterCmp(op string, lit string, sel, out []int) []int {
	table := e.MatchTable(op, lit)
	for _, i := range sel {
		if e.Codes.IsNull(i) {
			continue
		}
		if c := e.Codes.Get(i); table[c] {
			out = append(out, i)
		}
	}
	return out
}

// FilterIntCmp refines sel against `column OP c` over bit-packed ints,
// decoding inline (shift/mask/unzigzag) per surviving position.
func (e *BitPackEnc) FilterIntCmp(op string, c int64, sel, out []int) []int {
	for _, i := range sel {
		if e.IsNull(i) {
			continue
		}
		v := e.Get(i)
		var cmp int
		switch {
		case v < c:
			cmp = -1
		case v > c:
			cmp = 1
		}
		if CmpMatches(cmp, op) {
			out = append(out, i)
		}
	}
	return out
}

// FilterFloatCmp is FilterIntCmp with the column promoted to float
// (mixed int/float comparisons mirror Value.Compare's promotion).
func (e *BitPackEnc) FilterFloatCmp(op string, c float64, sel, out []int) []int {
	for _, i := range sel {
		if e.IsNull(i) {
			continue
		}
		v := float64(e.Get(i))
		var cmp int
		switch {
		case v < c:
			cmp = -1
		case v > c:
			cmp = 1
		}
		if CmpMatches(cmp, op) {
			out = append(out, i)
		}
	}
	return out
}

// FilterCmp refines sel against `column OP lit` over run-length data:
// the predicate evaluates once per run, and the (ascending) selection
// walks runs with an amortized-O(1) cursor.
func (e *RLEEnc) FilterCmp(op string, lit types.Value, sel, out []int) []int {
	match := make([]bool, len(e.Ends))
	for r := range e.Ends {
		if e.RunNull(r) {
			continue
		}
		match[r] = CmpMatches(e.RunValue(r).Compare(lit), op)
	}
	run := 0
	for _, i := range sel {
		run = e.FindRun(i, run)
		if match[run] {
			out = append(out, i)
		}
	}
	return out
}

// SumInt folds the selected positions into an int64 sum and non-null
// count (the SUM/COUNT fused-kernel path for bit-packed columns).
func (e *BitPackEnc) SumInt(sel []int) (sum int64, count int64) {
	if sel != nil {
		for _, i := range sel {
			if !e.IsNull(i) {
				sum += e.Get(i)
				count++
			}
		}
		return sum, count
	}
	for i := 0; i < e.N; i++ {
		if !e.IsNull(i) {
			sum += e.Get(i)
			count++
		}
	}
	return sum, count
}

// SizeBytes estimates the resident payload bytes (string headers
// counted at 16 bytes plus content; shared backing arrays counted
// once per vector).
func (v *Vector) SizeBytes() int {
	switch {
	case v.Dict != nil:
		return v.Dict.SizeBytes()
	case v.Pack != nil:
		return v.Pack.SizeBytes()
	case v.RLE != nil:
		return v.RLE.SizeBytes()
	}
	n := 8*len(v.Ints) + 8*len(v.Floats) + len(v.Nulls) + 48*len(v.Box)
	for _, s := range v.Strs {
		n += 16 + len(s)
	}
	return n
}
