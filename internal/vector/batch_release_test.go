package vector

import (
	"sync"
	"testing"

	"repro/internal/types"
)

// TestReleaseSharedViewIsNoOp: a Shared view over storage owned
// elsewhere must never be pooled, with or without an Owner link.
func TestReleaseSharedViewIsNoOp(t *testing.T) {
	_, putsBefore, _ := PoolStats()
	view := &Batch{Vecs: []*Vector{{}}, Shared: true}
	view.Release()
	view.Release()
	_, putsAfter, _ := PoolStats()
	if putsAfter != putsBefore {
		t.Fatalf("Shared view Release pooled something: puts %d -> %d", putsBefore, putsAfter)
	}
}

// TestDoubleReleasePoisoned: the second Release of an owned batch must
// not re-pool the same backing vectors (two NewBatch callers would then
// share storage).
func TestDoubleReleasePoisoned(t *testing.T) {
	b := NewBatch(2)
	b.AppendRow(types.Row{types.Int(1), types.Str("x")})
	_, putsBefore, dblBefore := PoolStats()
	b.Release()
	b.Release() // bug under test: must be a counted no-op
	_, putsAfter, dblAfter := PoolStats()
	if putsAfter-putsBefore != 1 {
		t.Fatalf("double Release re-pooled: puts delta = %d, want 1", putsAfter-putsBefore)
	}
	if dblAfter-dblBefore != 1 {
		t.Fatalf("double-release counter delta = %d, want 1", dblAfter-dblBefore)
	}
}

// TestSharedViewForwardsToOwner: a zero-copy projection view borrows a
// pooled batch's storage; releasing the view must recycle the owner
// exactly once.
func TestSharedViewForwardsToOwner(t *testing.T) {
	owner := NewBatch(1)
	owner.AppendRow(types.Row{types.Int(7)})
	view := &Batch{Vecs: owner.Vecs, Shared: true, Owner: owner}
	_, putsBefore, _ := PoolStats()
	view.Release()
	_, putsAfter, _ := PoolStats()
	if putsAfter-putsBefore != 1 {
		t.Fatalf("view Release did not recycle owner: puts delta = %d", putsAfter-putsBefore)
	}
	// A second view Release must not double-pool the owner.
	view.Owner = owner
	_, _, dblBefore := PoolStats()
	view.Release()
	_, putsAgain, dblAfter := PoolStats()
	if putsAgain != putsAfter {
		t.Fatalf("second forwarded Release re-pooled owner")
	}
	if dblAfter-dblBefore != 1 {
		t.Fatalf("second forwarded Release not counted as double release")
	}
}

// TestReleaseAfterOwnershipTransfer exercises the NextBatch ownership
// protocol under -race: producers build batches and hand them off
// (transferring ownership exactly as BatchOperator.NextBatch does);
// consumers read every row and Release. Any touch of a batch after
// transfer, or pool corruption from a double release, trips the race
// detector or the poison counter.
func TestReleaseAfterOwnershipTransfer(t *testing.T) {
	const producers = 4
	const batchesEach = 200
	_, _, dblBefore := PoolStats()
	ch := make(chan *Batch, 8)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < batchesEach; i++ {
				rows := []types.Row{
					{types.Int(seed), types.Str("a")},
					{types.Int(seed + 1), types.Str("b")},
				}
				b := FromRows(rows, 2)
				ch <- b // ownership transfer: producer must not touch b again
			}
		}(int64(p))
	}
	consumed := make(chan int64)
	go func() {
		var total int64
		for b := range ch {
			n := b.NumRows()
			for i := 0; i < n; i++ {
				_ = b.Row(i)
			}
			total += int64(n)
			b.Release()
		}
		consumed <- total
	}()
	wg.Wait()
	close(ch)
	if total := <-consumed; total != producers*batchesEach*2 {
		t.Fatalf("consumed %d rows, want %d", total, producers*batchesEach*2)
	}
	if _, _, dblAfter := PoolStats(); dblAfter != dblBefore {
		t.Fatalf("ownership-transfer pipeline triggered %d double releases", dblAfter-dblBefore)
	}
}
