package tso

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/hlc"
	"repro/internal/simnet"
)

func setup(t *testing.T, topo simnet.Topology) (*simnet.Network, *Server) {
	t.Helper()
	net := simnet.New(topo)
	srv := NewServer(net, "tso", simnet.DC1)
	return net, srv
}

func TestTimestampsAscend(t *testing.T) {
	net, _ := setup(t, simnet.ZeroTopology())
	net.Register("cn1", simnet.DC1, func(string, any) (any, error) { return nil, nil })
	c := NewClient(net, "cn1", "tso")
	var prev hlc.Timestamp
	for i := 0; i < 1000; i++ {
		ts, err := c.Get()
		if err != nil {
			t.Fatal(err)
		}
		if ts <= prev {
			t.Fatalf("timestamp regressed: %v then %v", prev, ts)
		}
		prev = ts
	}
}

func TestTimestampsUniqueAcrossClients(t *testing.T) {
	net, _ := setup(t, simnet.ZeroTopology())
	const clients = 8
	const perClient = 500
	out := make([][]hlc.Timestamp, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		name := "cn" + string(rune('a'+i))
		net.Register(name, simnet.DC2, func(string, any) (any, error) { return nil, nil })
		c := NewClient(net, name, "tso")
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tss := make([]hlc.Timestamp, perClient)
			for j := range tss {
				ts, err := c.Get()
				if err != nil {
					t.Error(err)
					return
				}
				tss[j] = ts
			}
			out[i] = tss
		}(i)
	}
	wg.Wait()
	seen := make(map[hlc.Timestamp]bool)
	for _, tss := range out {
		for _, ts := range tss {
			if seen[ts] {
				t.Fatalf("duplicate timestamp %v", ts)
			}
			seen[ts] = true
		}
	}
}

func TestBatchingReducesRequests(t *testing.T) {
	net, srv := setup(t, simnet.ZeroTopology())
	net.Register("cn1", simnet.DC1, func(string, any) (any, error) { return nil, nil })
	c := NewClient(net, "cn1", "tso")
	c.BatchSize = 100
	var prev hlc.Timestamp
	for i := 0; i < 1000; i++ {
		ts, err := c.Get()
		if err != nil {
			t.Fatal(err)
		}
		if ts <= prev {
			t.Fatalf("batched timestamp regressed at %d: %v then %v", i, prev, ts)
		}
		prev = ts
	}
	_, reqs := srv.Grants()
	if reqs != 10 {
		t.Fatalf("server saw %d requests, want 10", reqs)
	}
}

func TestCrossDCLatencyCost(t *testing.T) {
	topo := simnet.Topology{IntraDCRTT: 0, InterDCRTT: 4 * time.Millisecond}
	net, _ := setup(t, topo)
	net.Register("cn-remote", simnet.DC2, func(string, any) (any, error) { return nil, nil })
	net.Register("cn-local", simnet.DC1, func(string, any) (any, error) { return nil, nil })
	remote := NewClient(net, "cn-remote", "tso")
	local := NewClient(net, "cn-local", "tso")

	start := time.Now()
	remote.Get()
	remoteCost := time.Since(start)
	start = time.Now()
	local.Get()
	localCost := time.Since(start)
	if remoteCost < 3*time.Millisecond {
		t.Fatalf("remote Get cost %v, want >= ~4ms", remoteCost)
	}
	if localCost > 2*time.Millisecond {
		t.Fatalf("local Get cost %v", localCost)
	}
}

func TestUnavailableTSO(t *testing.T) {
	net, _ := setup(t, simnet.ZeroTopology())
	net.Register("cn1", simnet.DC1, func(string, any) (any, error) { return nil, nil })
	c := NewClient(net, "cn1", "tso")
	net.SetDown("tso", true)
	if _, err := c.Get(); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
}
