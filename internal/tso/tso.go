// Package tso implements the centralized timestamp-oracle baseline that
// the paper compares HLC-SI against (§IV): a single server hands out
// globally ascending timestamps, as in Percolator and TiDB. Every
// snapshot and commit timestamp costs a network round trip to wherever
// the TSO lives — which, in a multi-datacenter deployment, is a cross-DC
// hop for two thirds of the cluster. That round trip is exactly what the
// Fig. 7 experiment measures.
package tso

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/hlc"
	"repro/internal/simnet"
)

// ErrUnavailable is returned when the TSO cannot be reached — the single
// point of failure the paper warns about.
var ErrUnavailable = errors.New("tso: timestamp oracle unavailable")

// Server is the timestamp oracle. Timestamps share the hlc.Timestamp
// representation so the storage layer is oblivious to which scheme
// produced them.
type Server struct {
	name  string
	clock *hlc.Clock

	mu      sync.Mutex
	grants  int64
	batched int64
}

// getReq asks for n consecutive timestamps (n >= 1). Batching amortizes
// round trips, which is TiDB's mitigation; the bench exposes both modes.
type getReq struct{ N int }

type getResp struct {
	// Last is the last timestamp of the granted batch; the batch is the
	// N distinct timestamps ending at Last.
	Last hlc.Timestamp
}

// NewServer registers a TSO endpoint on the fabric in the given DC.
func NewServer(net *simnet.Network, name string, dc simnet.DC) *Server {
	s := &Server{name: name, clock: hlc.NewClock(nil)}
	net.Register(name, dc, s.handle)
	return s
}

func (s *Server) handle(from string, msg any) (any, error) {
	req, ok := msg.(getReq)
	if !ok {
		return nil, fmt.Errorf("tso: unexpected message %T", msg)
	}
	if req.N < 1 {
		req.N = 1
	}
	// Grant a contiguous block [first, first+N-1]: mint one timestamp,
	// then advance the clock past the block so later grants exceed it.
	first := s.clock.Advance()
	last := hlc.Timestamp(uint64(first) + uint64(req.N) - 1)
	s.clock.Update(last)
	s.mu.Lock()
	s.grants += int64(req.N)
	s.batched++
	s.mu.Unlock()
	return getResp{Last: last}, nil
}

// Grants returns (timestamps granted, requests served) — the request
// count divided into grants shows batching efficiency.
func (s *Server) Grants() (granted, requests int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.grants, s.batched
}

// Client fetches timestamps from a Server over the fabric.
type Client struct {
	net    *simnet.Network
	self   string // caller endpoint (for latency accounting)
	server string

	// BatchSize > 1 prefetches timestamps, handing them out locally
	// until the batch drains (TiDB-style TSO batching).
	BatchSize int

	mu    sync.Mutex
	next  hlc.Timestamp
	avail int
}

// NewClient creates a client calling from the given endpoint.
func NewClient(net *simnet.Network, self, server string) *Client {
	return &Client{net: net, self: self, server: server, BatchSize: 1}
}

// Get returns the next globally ascending timestamp.
func (c *Client) Get() (hlc.Timestamp, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.avail > 0 {
		ts := c.next
		c.next = hlc.Timestamp(uint64(c.next) + 1)
		c.avail--
		return ts, nil
	}
	n := c.BatchSize
	if n < 1 {
		n = 1
	}
	reply, err := c.net.Call(c.self, c.server, getReq{N: n})
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	resp := reply.(getResp)
	first := hlc.Timestamp(uint64(resp.Last) - uint64(n) + 1)
	c.next = hlc.Timestamp(uint64(first) + 1)
	c.avail = n - 1
	return first, nil
}
