package optimizer

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/sql"
	"repro/internal/types"
)

// fakeCatalog serves partition.Tables by name.
type fakeCatalog struct {
	tables map[string]*partition.Table
	rows   map[string]int64
}

func (f *fakeCatalog) Table(name string) (*partition.Table, error) {
	t, ok := f.tables[name]
	if !ok {
		return nil, errors.New("no such table")
	}
	return t, nil
}

func (f *fakeCatalog) RowCount(name string) int64 { return f.rows[name] }

func newCatalog(t *testing.T) *fakeCatalog {
	t.Helper()
	cat := &fakeCatalog{tables: map[string]*partition.Table{}, rows: map[string]int64{}}
	add := func(name string, shards int, group string, rows int64, cols []types.Column, pk []int) {
		schema := types.NewSchema(name, cols, pk)
		tab, err := partition.NewTable(name, uint32(len(cat.tables)+1), schema, shards, group)
		if err != nil {
			t.Fatal(err)
		}
		cat.tables[name] = tab
		cat.rows[name] = rows
	}
	add("users", 4, "", 100000, []types.Column{
		{Name: "id", Kind: types.KindInt},
		{Name: "name", Kind: types.KindString},
		{Name: "city", Kind: types.KindString},
		{Name: "balance", Kind: types.KindInt},
	}, []int{0})
	add("orders", 8, "tg1", 1000000, []types.Column{
		{Name: "o_id", Kind: types.KindInt},
		{Name: "o_user", Kind: types.KindInt},
		{Name: "o_total", Kind: types.KindFloat},
		{Name: "o_status", Kind: types.KindString},
	}, []int{0})
	add("lineitem", 8, "tg1", 4000000, []types.Column{
		{Name: "l_oid", Kind: types.KindInt},
		{Name: "l_qty", Kind: types.KindInt},
		{Name: "l_price", Kind: types.KindFloat},
	}, []int{0})
	add("tiny", 1, "", 50, []types.Column{
		{Name: "id", Kind: types.KindInt},
		{Name: "v", Kind: types.KindString},
	}, []int{0})
	return cat
}

func plan(t *testing.T, cat *fakeCatalog, opts Options, query string) *Plan {
	t.Helper()
	stmt, err := sql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(cat, cat, opts).PlanSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatalf("PlanSelect(%q): %v", query, err)
	}
	return p
}

func findScan(t *testing.T, n Node, table string) *ScanNode {
	t.Helper()
	var found *ScanNode
	var rec func(Node)
	rec = func(n Node) {
		if s, ok := n.(*ScanNode); ok && s.Table.Name == table {
			found = s
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(n)
	if found == nil {
		t.Fatalf("no scan of %s in plan", table)
	}
	return found
}

func TestPointQueryIsTPWithPruning(t *testing.T) {
	cat := newCatalog(t)
	p := plan(t, cat, Options{}, "SELECT name FROM users WHERE id = 42")
	if p.IsAP {
		t.Fatalf("point query classified AP (cost %f)", p.Cost)
	}
	scan := findScan(t, p.Root, "users")
	if len(scan.PointLookups) != 1 || len(scan.Shards) != 1 {
		t.Fatalf("pruning: lookups=%d shards=%v", len(scan.PointLookups), scan.Shards)
	}
	want := cat.tables["users"].ShardOfValues(types.Int(42))
	if scan.Shards[0] != want {
		t.Fatalf("shard %d, want %d", scan.Shards[0], want)
	}
}

func TestInListPruning(t *testing.T) {
	cat := newCatalog(t)
	p := plan(t, cat, Options{}, "SELECT name FROM users WHERE id IN (1, 2, 3)")
	scan := findScan(t, p.Root, "users")
	if len(scan.PointLookups) != 3 {
		t.Fatalf("lookups = %d", len(scan.PointLookups))
	}
	if len(scan.Shards) == 0 || len(scan.Shards) > 3 {
		t.Fatalf("shards = %v", scan.Shards)
	}
}

func TestFullScanIsAP(t *testing.T) {
	cat := newCatalog(t)
	p := plan(t, cat, Options{}, "SELECT o_status, SUM(o_total) FROM orders GROUP BY o_status")
	if !p.IsAP {
		t.Fatalf("1M-row aggregation classified TP (cost %f)", p.Cost)
	}
}

func TestTinyScanIsTP(t *testing.T) {
	cat := newCatalog(t)
	p := plan(t, cat, Options{}, "SELECT * FROM tiny")
	if p.IsAP {
		t.Fatalf("tiny scan classified AP (cost %f)", p.Cost)
	}
}

func TestFilterPushdownAndResidue(t *testing.T) {
	cat := newCatalog(t)
	p := plan(t, cat, Options{},
		"SELECT u.name FROM users u JOIN orders o ON u.id = o.o_user WHERE u.city = 'SF' AND o.o_total > 10")
	uscan := findScan(t, p.Root, "users")
	if uscan.Filter == nil || !strings.Contains(sql.String(uscan.Filter), "city") {
		t.Fatalf("users filter = %v", sql.String(uscan.Filter))
	}
	oscan := findScan(t, p.Root, "orders")
	if oscan.Filter == nil || !strings.Contains(sql.String(oscan.Filter), "o_total") {
		t.Fatalf("orders filter = %v", sql.String(oscan.Filter))
	}
	// Join keys extracted.
	join := p.Root
	for {
		if j, ok := join.(*JoinNode); ok {
			if len(j.LeftKeys) != 1 || len(j.RightKeys) != 1 {
				t.Fatalf("join keys: %d/%d", len(j.LeftKeys), len(j.RightKeys))
			}
			return
		}
		kids := join.Children()
		if len(kids) == 0 {
			t.Fatal("no join found")
		}
		join = kids[0]
	}
}

func TestPartitionWiseJoinDetection(t *testing.T) {
	cat := newCatalog(t)
	// orders and lineitem share tg1 and join on their partition (PK)
	// keys → partition-wise.
	p := plan(t, cat, Options{},
		"SELECT COUNT(*) FROM orders o JOIN lineitem l ON o.o_id = l.l_oid")
	var j *JoinNode
	var rec func(Node)
	rec = func(n Node) {
		if jn, ok := n.(*JoinNode); ok {
			j = jn
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(p.Root)
	if j == nil || !j.PartitionWise {
		t.Fatalf("partition-wise not detected: %+v", j)
	}
	// Cross-group join is not partition-wise.
	p2 := plan(t, cat, Options{},
		"SELECT COUNT(*) FROM users u JOIN orders o ON u.id = o.o_user")
	j = nil
	rec(p2.Root)
	if j == nil || j.PartitionWise {
		t.Fatal("cross-group join marked partition-wise")
	}
}

func TestAggregationPlanShape(t *testing.T) {
	cat := newCatalog(t)
	p := plan(t, cat, Options{}, `
		SELECT o_status, COUNT(*) AS cnt, AVG(o_total) avg_total
		FROM orders WHERE o_total > 5
		GROUP BY o_status HAVING COUNT(*) > 10
		ORDER BY cnt DESC LIMIT 3`)
	// Shape: Limit(Sort(Project(Filter(Agg(Scan))))).
	lim, ok := p.Root.(*LimitNode)
	if !ok {
		t.Fatalf("root = %T", p.Root)
	}
	srt, ok := lim.Input.(*SortNode)
	if !ok {
		t.Fatalf("limit input = %T", lim.Input)
	}
	proj, ok := srt.Input.(*ProjectNode)
	if !ok {
		t.Fatalf("sort input = %T", srt.Input)
	}
	if proj.Names[1] != "cnt" || proj.Names[2] != "avg_total" {
		t.Fatalf("names = %v", proj.Names)
	}
	filt, ok := proj.Input.(*FilterNode)
	if !ok {
		t.Fatalf("project input = %T", proj.Input)
	}
	agg, ok := filt.Input.(*AggNode)
	if !ok {
		t.Fatalf("filter input = %T", filt.Input)
	}
	if len(agg.GroupBy) != 1 || len(agg.Aggs) != 2 {
		t.Fatalf("agg: %d groups %d aggs", len(agg.GroupBy), len(agg.Aggs))
	}
	if !agg.TwoPhase {
		t.Fatal("no-distinct agg should be two-phase capable")
	}
}

func TestDistinctAggBlocksTwoPhase(t *testing.T) {
	cat := newCatalog(t)
	p := plan(t, cat, Options{}, "SELECT COUNT(DISTINCT o_user) FROM orders")
	var agg *AggNode
	var rec func(Node)
	rec = func(n Node) {
		if a, ok := n.(*AggNode); ok {
			agg = a
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(p.Root)
	if agg == nil || agg.TwoPhase {
		t.Fatal("distinct agg must be single-phase")
	}
}

func TestColumnIndexAndMPPChoices(t *testing.T) {
	cat := newCatalog(t)
	opts := Options{
		MPPAvailable:   true,
		HasColumnIndex: func(tbl string) bool { return tbl == "orders" },
	}
	p := plan(t, cat, opts, "SELECT o_status, SUM(o_total) FROM orders GROUP BY o_status")
	if !p.IsAP || !p.MPP {
		t.Fatalf("AP/MPP flags: ap=%v mpp=%v", p.IsAP, p.MPP)
	}
	scan := findScan(t, p.Root, "orders")
	if !scan.UseColumnIndex {
		t.Fatal("column index not chosen for large AP scan")
	}
	// Point lookups stay on the row store even when a column index
	// exists.
	p2 := plan(t, cat, opts, "SELECT o_total FROM orders WHERE o_id = 1")
	if findScan(t, p2.Root, "orders").UseColumnIndex {
		t.Fatal("point lookup routed to column index")
	}
}

func TestPlanErrors(t *testing.T) {
	cat := newCatalog(t)
	bad := []string{
		"SELECT * FROM ghost",
		"SELECT nope FROM users",
		"SELECT id FROM users u JOIN orders o ON u.id = o.o_user WHERE name = o_status AND v = 1", // v unknown
		"SELECT name, COUNT(*) FROM users GROUP BY city",                                          // name not grouped
		"SELECT id FROM users ORDER BY ghost_col",
	}
	for _, q := range bad {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := New(cat, cat, Options{}).PlanSelect(stmt.(*sql.Select)); err == nil {
			t.Errorf("PlanSelect(%q) succeeded", q)
		}
	}
}

func TestAmbiguousColumn(t *testing.T) {
	cat := newCatalog(t)
	stmt, _ := sql.Parse("SELECT id FROM users u JOIN tiny t ON u.id = t.id")
	if _, err := New(cat, cat, Options{}).PlanSelect(stmt.(*sql.Select)); err == nil {
		t.Fatal("ambiguous bare column accepted")
	}
}

func TestExplainRendering(t *testing.T) {
	cat := newCatalog(t)
	p := plan(t, cat, Options{}, "SELECT o_status, COUNT(*) FROM orders WHERE o_total > 1 GROUP BY o_status")
	out := p.Explain()
	for _, frag := range []string{"class=AP", "Scan(orders", "HashAgg", "Project"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Explain missing %q:\n%s", frag, out)
		}
	}
}

func TestOrderByOutputAliasAndExpr(t *testing.T) {
	cat := newCatalog(t)
	// ORDER BY the rendered aggregate expression (no alias).
	p := plan(t, cat, Options{},
		"SELECT o_status, SUM(o_total) FROM orders GROUP BY o_status ORDER BY SUM(o_total) DESC")
	if _, ok := p.Root.(*SortNode); !ok {
		t.Fatalf("root = %T, want Sort", p.Root)
	}
}

func TestSelectStarExpansion(t *testing.T) {
	cat := newCatalog(t)
	p := plan(t, cat, Options{}, "SELECT * FROM tiny")
	proj := p.Root.(*ProjectNode)
	if len(proj.Names) != 2 || proj.Names[0] != "id" || proj.Names[1] != "v" {
		t.Fatalf("star names = %v", proj.Names)
	}
}

func TestInListDuplicatesPruneOnce(t *testing.T) {
	// IN (1, 1, 2) pins two point lookups, not three — duplicate PKs
	// must not read (and count) a row twice.
	cat := newCatalog(t)
	p := plan(t, cat, Options{}, "SELECT id FROM users WHERE id IN (1, 1, 2)")
	var scan *ScanNode
	var rec func(Node)
	rec = func(n Node) {
		if sn, ok := n.(*ScanNode); ok {
			scan = sn
		}
		for _, c := range n.Children() {
			rec(c)
		}
	}
	rec(p.Root)
	if scan == nil || len(scan.PointLookups) != 2 {
		t.Fatalf("point lookups = %+v", scan)
	}
}
