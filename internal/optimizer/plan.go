// Package optimizer implements the HTAP-oriented optimizer of PolarDB-X
// (paper §VI-B): it turns parsed SQL into bound physical plans, deciding
// shard pruning, operator pushdown (filters/projections/partial
// aggregation toward the DNs), join method and order, partition-wise
// joins inside table groups, row-store vs in-memory column index access,
// and — centrally for HTAP — whether a query is TP or AP by estimated
// cost against an empirical threshold.
package optimizer

import (
	"fmt"
	"strings"

	"repro/internal/partition"
	"repro/internal/sql"
	"repro/internal/types"
)

// Node is a physical plan node. Every node knows its output columns
// (qualified names) so parents can bind expressions positionally.
type Node interface {
	Columns() []string
	// EstRows is the estimated output cardinality.
	EstRows() float64
	// Explain renders one line for plan display.
	Explain() string
	Children() []Node
}

// ScanNode reads one logical table: possibly pruned to specific shards,
// with a pushed-down filter and projection, via the row store or the
// column index.
type ScanNode struct {
	Table *partition.Table
	// Alias qualifies output columns.
	Alias string
	// Shards lists shards to read; nil means all.
	Shards []int
	// PointLookups, when non-nil, replaces scanning with PK point reads
	// (each entry is an encoded PK); used when the WHERE clause pins the
	// full primary key.
	PointLookups [][]byte
	// Filter is the pushed predicate, bound to the table schema layout.
	Filter sql.Expr
	// Projection lists schema column positions to return; nil = all.
	Projection []int
	// UseColumnIndex routes the scan to the in-memory column index on an
	// AP-serving RO node (§VI-E).
	UseColumnIndex bool
	// PushedAgg, when non-nil, offloads partial aggregation to the
	// storage node (column index pushdown).
	PushedAgg *PushedAgg
	// GSI, when non-nil, routes the scan through a global secondary
	// index (§II-B): GSIVals are the equality literals on the index's
	// leading columns, pinning one hidden-table shard. Clustered indexes
	// return full rows directly; non-clustered ones return PKs that are
	// then looked up in the primary table (scattered reads).
	GSI     *partition.GlobalIndex
	GSIVals []types.Value

	cols []string
	rows float64
}

// PushedAgg mirrors dn.PushAgg at plan level.
type PushedAgg struct {
	GroupBy []int
	Aggs    []AggItem
}

// Columns implements Node.
func (s *ScanNode) Columns() []string { return s.cols }

// EstRows implements Node.
func (s *ScanNode) EstRows() float64 { return s.rows }

// Children implements Node.
func (s *ScanNode) Children() []Node { return nil }

// Explain implements Node.
func (s *ScanNode) Explain() string {
	var b strings.Builder
	store := "row"
	if s.UseColumnIndex {
		store = "colindex"
	}
	fmt.Fprintf(&b, "Scan(%s", s.Table.Name)
	if s.GSI != nil {
		kind := "gsi"
		if s.GSI.Clustered {
			kind = "clustered-gsi"
		}
		fmt.Fprintf(&b, ", %s=%s", kind, s.GSI.Name)
	} else if len(s.PointLookups) > 0 {
		fmt.Fprintf(&b, ", point×%d", len(s.PointLookups))
	} else if s.Shards != nil {
		fmt.Fprintf(&b, ", shards=%v", s.Shards)
	}
	fmt.Fprintf(&b, ", store=%s", store)
	if s.Filter != nil {
		fmt.Fprintf(&b, ", filter=%s", sql.String(s.Filter))
	}
	if s.PushedAgg != nil {
		fmt.Fprintf(&b, ", pushed-agg")
	}
	b.WriteString(")")
	return b.String()
}

// JoinNode joins two inputs.
type JoinNode struct {
	Left, Right Node
	// Hash join keys (bound to child layouts); empty = nested loop on On.
	LeftKeys, RightKeys []sql.Expr
	// On is the residual / NL condition bound to the combined layout.
	On    sql.Expr
	Outer bool
	// PartitionWise marks a join executable shard-locally because both
	// sides share a table group and join on the partition key (§II-B).
	PartitionWise bool

	rows float64
}

// Columns implements Node.
func (j *JoinNode) Columns() []string {
	return append(append([]string{}, j.Left.Columns()...), j.Right.Columns()...)
}

// EstRows implements Node.
func (j *JoinNode) EstRows() float64 { return j.rows }

// Children implements Node.
func (j *JoinNode) Children() []Node { return []Node{j.Left, j.Right} }

// Explain implements Node.
func (j *JoinNode) Explain() string {
	method := "HashJoin"
	if len(j.LeftKeys) == 0 {
		method = "NestedLoopJoin"
	}
	mod := ""
	if j.PartitionWise {
		mod = ", partition-wise"
	}
	if j.Outer {
		mod += ", left-outer"
	}
	return fmt.Sprintf("%s(%s%s)", method, sql.String(j.On), mod)
}

// AggItem is one output aggregate.
type AggItem struct {
	Func     string
	Arg      sql.Expr
	Star     bool
	Distinct bool
}

// AggNode aggregates its input. TwoPhase marks the MPP partial/final
// split (partials run in scan fragments).
type AggNode struct {
	Input    Node
	GroupBy  []sql.Expr
	Aggs     []AggItem
	TwoPhase bool
	Names    []string

	rows float64
}

// Columns implements Node.
func (a *AggNode) Columns() []string { return a.Names }

// EstRows implements Node.
func (a *AggNode) EstRows() float64 { return a.rows }

// Children implements Node.
func (a *AggNode) Children() []Node { return []Node{a.Input} }

// Explain implements Node.
func (a *AggNode) Explain() string {
	mode := "one-phase"
	if a.TwoPhase {
		mode = "two-phase"
	}
	return fmt.Sprintf("HashAgg(%d groups est, %s)", int(a.rows), mode)
}

// FilterNode applies a residual predicate that could not be pushed down.
type FilterNode struct {
	Input Node
	Pred  sql.Expr
}

// Columns implements Node.
func (f *FilterNode) Columns() []string { return f.Input.Columns() }

// EstRows implements Node.
func (f *FilterNode) EstRows() float64 { return f.Input.EstRows() * defaultSelectivity }

// Children implements Node.
func (f *FilterNode) Children() []Node { return []Node{f.Input} }

// Explain implements Node.
func (f *FilterNode) Explain() string { return "Filter(" + sql.String(f.Pred) + ")" }

// ProjectNode computes output expressions.
type ProjectNode struct {
	Input Node
	Exprs []sql.Expr
	Names []string
}

// Columns implements Node.
func (p *ProjectNode) Columns() []string { return p.Names }

// EstRows implements Node.
func (p *ProjectNode) EstRows() float64 { return p.Input.EstRows() }

// Children implements Node.
func (p *ProjectNode) Children() []Node { return []Node{p.Input} }

// Explain implements Node.
func (p *ProjectNode) Explain() string {
	return "Project(" + strings.Join(p.Names, ", ") + ")"
}

// SortNode orders its input.
type SortNode struct {
	Input Node
	Keys  []SortItem
}

// SortItem is one ORDER BY key.
type SortItem struct {
	Expr sql.Expr
	Desc bool
}

// Columns implements Node.
func (s *SortNode) Columns() []string { return s.Input.Columns() }

// EstRows implements Node.
func (s *SortNode) EstRows() float64 { return s.Input.EstRows() }

// Children implements Node.
func (s *SortNode) Children() []Node { return []Node{s.Input} }

// Explain implements Node.
func (s *SortNode) Explain() string { return fmt.Sprintf("Sort(%d keys)", len(s.Keys)) }

// LimitNode truncates its input.
type LimitNode struct {
	Input Node
	N     int
}

// Columns implements Node.
func (l *LimitNode) Columns() []string { return l.Input.Columns() }

// EstRows implements Node.
func (l *LimitNode) EstRows() float64 {
	if float64(l.N) < l.Input.EstRows() {
		return float64(l.N)
	}
	return l.Input.EstRows()
}

// Children implements Node.
func (l *LimitNode) Children() []Node { return []Node{l.Input} }

// Explain implements Node.
func (l *LimitNode) Explain() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Plan is a classified, costed physical plan.
type Plan struct {
	Root Node
	// Cost is the estimated resource cost in abstract units.
	Cost float64
	// IsAP classifies the query for HTAP routing: AP plans run on RO
	// nodes under the AP resource group, optionally via MPP.
	IsAP bool
	// MPP requests multi-CN fragment execution.
	MPP bool
	// Vectorized requests batch-mode (column-major, ~1024-row Batch)
	// execution: the default for AP plans when the cluster offers the
	// batch engine. TP plans stay row-at-a-time.
	Vectorized bool
}

// Explain renders the plan tree.
func (p *Plan) Explain() string {
	var b strings.Builder
	class := "TP"
	if p.IsAP {
		class = "AP"
	}
	exec := "row"
	if p.Vectorized {
		exec = "batch"
	}
	fmt.Fprintf(&b, "-- class=%s cost=%.0f mpp=%v exec=%s\n", class, p.Cost, p.MPP, exec)
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		fmt.Fprintf(&b, "%s%s  (rows≈%d)\n", strings.Repeat("  ", depth), n.Explain(), int(n.EstRows()))
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(p.Root, 0)
	return b.String()
}

// ExplainAnalyze renders the plan tree like Explain, appending per-node
// runtime statistics supplied by stat (EXPLAIN ANALYZE). stat is a
// callback so the optimizer stays ignorant of how execution is measured;
// a nil or empty return for a node omits the annotation.
func (p *Plan) ExplainAnalyze(stat func(Node) string) string {
	var b strings.Builder
	class := "TP"
	if p.IsAP {
		class = "AP"
	}
	exec := "row"
	if p.Vectorized {
		exec = "batch"
	}
	fmt.Fprintf(&b, "-- class=%s cost=%.0f mpp=%v exec=%s\n", class, p.Cost, p.MPP, exec)
	var rec func(n Node, depth int)
	rec = func(n Node, depth int) {
		fmt.Fprintf(&b, "%s%s  (rows≈%d)", strings.Repeat("  ", depth), n.Explain(), int(n.EstRows()))
		if stat != nil {
			if s := stat(n); s != "" {
				fmt.Fprintf(&b, "  (%s)", s)
			}
		}
		b.WriteByte('\n')
		for _, c := range n.Children() {
			rec(c, depth+1)
		}
	}
	rec(p.Root, 0)
	return b.String()
}
