package optimizer

import (
	"fmt"
	"strings"

	"repro/internal/sql"
)

// finishPlan layers aggregation, having, projection, ordering and limit
// over the join tree.
func (o *Optimizer) finishPlan(root Node, sel *sql.Select) (Node, error) {
	inScope := scope{cols: root.Columns()}

	// Expand SELECT * into explicit items.
	var items []sql.SelectItem
	for _, it := range sel.Items {
		if !it.Star {
			items = append(items, it)
			continue
		}
		for i, col := range root.Columns() {
			name := col
			if dot := strings.LastIndexByte(col, '.'); dot >= 0 {
				name = col[dot+1:]
			}
			items = append(items, sql.SelectItem{
				Expr:  &sql.ColumnRef{Column: col, Index: i},
				Alias: name,
			})
		}
	}

	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, it := range items {
		if sql.HasAggregate(it.Expr) {
			hasAgg = true
		}
	}

	if hasAgg {
		var err error
		root, items, err = o.buildAgg(root, sel, items, inScope)
		if err != nil {
			return nil, err
		}
	} else {
		for _, it := range items {
			if err := inScope.bind(it.Expr); err != nil {
				return nil, err
			}
		}
	}

	// Projection.
	names := make([]string, len(items))
	exprs := make([]sql.Expr, len(items))
	for i, it := range items {
		exprs[i] = it.Expr
		switch {
		case it.Alias != "":
			names[i] = strings.ToLower(it.Alias)
		case isColRef(it.Expr):
			names[i] = strings.ToLower(it.Expr.(*sql.ColumnRef).Name())
		default:
			names[i] = strings.ToLower(sql.String(it.Expr))
		}
	}
	proj := &ProjectNode{Input: root, Exprs: exprs, Names: names}
	root = proj

	// ORDER BY binds against the projection output (alias, bare column
	// name, or rendered expression text). A non-aggregate query may also
	// order by columns absent from the projection (SELECT id ... ORDER
	// BY b): those keys bind against the pre-projection input, and the
	// sort runs below the projection.
	if len(sel.OrderBy) > 0 {
		outScope := scope{cols: names}
		// First pass: bind every key against the projection output.
		outKeys := make([]SortItem, 0, len(sel.OrderBy))
		allOut := true
		for _, oi := range sel.OrderBy {
			key := oi.Expr
			if idx := matchItem(key, items, names); idx >= 0 {
				outKeys = append(outKeys, SortItem{
					Expr: &sql.ColumnRef{Column: names[idx], Index: idx}, Desc: oi.Desc})
				continue
			}
			if err := outScope.bind(key); err == nil {
				outKeys = append(outKeys, SortItem{Expr: key, Desc: oi.Desc})
				continue
			}
			allOut = false
			break
		}
		switch {
		case allOut:
			root = &SortNode{Input: root, Keys: outKeys}
		case hasAgg:
			return nil, fmt.Errorf("optimizer: ORDER BY must reference grouped output columns")
		default:
			// Some key is not in the projection: sort below the
			// projection, binding every key against the input (alias
			// keys resolve to their item's input-bound expression).
			inKeys := make([]SortItem, 0, len(sel.OrderBy))
			for _, oi := range sel.OrderBy {
				key := oi.Expr
				if idx := matchItem(key, items, names); idx >= 0 {
					inKeys = append(inKeys, SortItem{Expr: items[idx].Expr, Desc: oi.Desc})
					continue
				}
				if err := inScope.bind(key); err != nil {
					return nil, fmt.Errorf("optimizer: cannot resolve ORDER BY %s: %v", sql.String(key), err)
				}
				inKeys = append(inKeys, SortItem{Expr: key, Desc: oi.Desc})
			}
			proj.Input = &SortNode{Input: proj.Input, Keys: inKeys}
		}
	}
	if sel.Limit >= 0 {
		root = &LimitNode{Input: root, N: sel.Limit}
	}
	return root, nil
}

func isColRef(e sql.Expr) bool {
	_, ok := e.(*sql.ColumnRef)
	return ok
}

// matchItem finds the projection item an ORDER BY key refers to, by
// alias or rendered-text equality.
func matchItem(key sql.Expr, items []sql.SelectItem, names []string) int {
	keyText := strings.ToLower(sql.String(key))
	if c, ok := key.(*sql.ColumnRef); ok && c.Table == "" {
		keyText = strings.ToLower(c.Column)
	}
	for i, it := range items {
		if names[i] == keyText {
			return i
		}
		if strings.ToLower(sql.String(it.Expr)) == keyText {
			return i
		}
	}
	return -1
}

// buildAgg constructs the AggNode and rewrites item/having expressions
// onto its output layout: [group exprs..., agg results...].
func (o *Optimizer) buildAgg(root Node, sel *sql.Select, items []sql.SelectItem,
	inScope scope) (Node, []sql.SelectItem, error) {
	// Bind group-by expressions against the input.
	groupBy := make([]sql.Expr, len(sel.GroupBy))
	mapping := make(map[string]int) // rendered expr -> agg output position
	var names []string
	for i, g := range sel.GroupBy {
		key := strings.ToLower(sql.String(g)) // render before binding
		if err := inScope.bind(g); err != nil {
			return nil, nil, err
		}
		groupBy[i] = g
		mapping[key] = i
		names = append(names, keyName(g, key))
	}

	// Collect distinct aggregate calls from items, having and order by.
	var aggs []AggItem
	distinctTwoPhaseBlock := false
	addAgg := func(f *sql.FuncCall) error {
		key := strings.ToLower(sql.String(f))
		if _, dup := mapping[key]; dup {
			return nil
		}
		item := AggItem{Func: f.Name, Star: f.Star, Distinct: f.Distinct}
		if !f.Star {
			if len(f.Args) != 1 {
				return fmt.Errorf("optimizer: %s expects one argument", f.Name)
			}
			if err := inScope.bind(f.Args[0]); err != nil {
				return err
			}
			item.Arg = f.Args[0]
		}
		if f.Distinct {
			distinctTwoPhaseBlock = true
		}
		mapping[key] = len(groupBy) + len(aggs)
		names = append(names, key)
		aggs = append(aggs, item)
		return nil
	}
	collect := func(e sql.Expr) error {
		var firstErr error
		sql.Walk(e, func(n sql.Expr) bool {
			if f, ok := n.(*sql.FuncCall); ok && f.IsAggregate() {
				if err := addAgg(f); err != nil && firstErr == nil {
					firstErr = err
				}
				return false
			}
			return true
		})
		return firstErr
	}
	for _, it := range items {
		if err := collect(it.Expr); err != nil {
			return nil, nil, err
		}
	}
	if sel.Having != nil {
		if err := collect(sel.Having); err != nil {
			return nil, nil, err
		}
	}
	for _, oi := range sel.OrderBy {
		if sql.HasAggregate(oi.Expr) {
			if err := collect(oi.Expr); err != nil {
				return nil, nil, err
			}
		}
	}

	agg := &AggNode{Input: root, GroupBy: groupBy, Aggs: aggs,
		TwoPhase: !distinctTwoPhaseBlock, Names: names}
	agg.rows = root.EstRows() / 10
	if len(groupBy) == 0 {
		agg.rows = 1
	}
	var node Node = agg

	// Rewrite items/having/order onto the aggregate output.
	for i := range items {
		rewritten, err := rewriteOntoAgg(items[i].Expr, mapping, names)
		if err != nil {
			return nil, nil, err
		}
		items[i].Expr = rewritten
	}
	if sel.Having != nil {
		h, err := rewriteOntoAgg(sel.Having, mapping, names)
		if err != nil {
			return nil, nil, err
		}
		node = &FilterNode{Input: node, Pred: h}
	}
	for i := range sel.OrderBy {
		if sql.HasAggregate(sel.OrderBy[i].Expr) {
			r, err := rewriteOntoAgg(sel.OrderBy[i].Expr, mapping, names)
			if err != nil {
				return nil, nil, err
			}
			sel.OrderBy[i].Expr = r
		}
	}
	return node, items, nil
}

// keyName derives a stable output name for a group-by expression.
func keyName(g sql.Expr, rendered string) string {
	if c, ok := g.(*sql.ColumnRef); ok {
		return strings.ToLower(c.Name())
	}
	return rendered
}

// rewriteOntoAgg replaces group-by expressions and aggregate calls with
// references into the aggregate output layout, rebuilding the tree.
func rewriteOntoAgg(e sql.Expr, mapping map[string]int, names []string) (sql.Expr, error) {
	if e == nil {
		return nil, nil
	}
	if idx, ok := mapping[strings.ToLower(sql.String(e))]; ok {
		return &sql.ColumnRef{Column: names[idx], Index: idx}, nil
	}
	switch n := e.(type) {
	case *sql.Literal:
		return n, nil
	case *sql.ColumnRef:
		// A bare column also matches a qualified group key (GROUP BY
		// o.status, SELECT status).
		suffix := "." + strings.ToLower(n.Column)
		for key, idx := range mapping {
			if strings.HasSuffix(key, suffix) {
				return &sql.ColumnRef{Column: names[idx], Index: idx}, nil
			}
		}
		return nil, fmt.Errorf("optimizer: column %s must appear in GROUP BY or an aggregate", n.Name())
	case *sql.BinaryOp:
		l, err := rewriteOntoAgg(n.L, mapping, names)
		if err != nil {
			return nil, err
		}
		r, err := rewriteOntoAgg(n.R, mapping, names)
		if err != nil {
			return nil, err
		}
		return &sql.BinaryOp{Op: n.Op, L: l, R: r}, nil
	case *sql.UnaryOp:
		in, err := rewriteOntoAgg(n.E, mapping, names)
		if err != nil {
			return nil, err
		}
		return &sql.UnaryOp{Op: n.Op, E: in}, nil
	case *sql.Between:
		ee, err := rewriteOntoAgg(n.E, mapping, names)
		if err != nil {
			return nil, err
		}
		lo, err := rewriteOntoAgg(n.Lo, mapping, names)
		if err != nil {
			return nil, err
		}
		hi, err := rewriteOntoAgg(n.Hi, mapping, names)
		if err != nil {
			return nil, err
		}
		return &sql.Between{E: ee, Lo: lo, Hi: hi, Not: n.Not}, nil
	case *sql.InList:
		ee, err := rewriteOntoAgg(n.E, mapping, names)
		if err != nil {
			return nil, err
		}
		out := &sql.InList{E: ee, Not: n.Not}
		for _, item := range n.Items {
			ri, err := rewriteOntoAgg(item, mapping, names)
			if err != nil {
				return nil, err
			}
			out.Items = append(out.Items, ri)
		}
		return out, nil
	case *sql.IsNull:
		ee, err := rewriteOntoAgg(n.E, mapping, names)
		if err != nil {
			return nil, err
		}
		return &sql.IsNull{E: ee, Not: n.Not}, nil
	case *sql.CaseExpr:
		out := &sql.CaseExpr{}
		for _, w := range n.Whens {
			c, err := rewriteOntoAgg(w.Cond, mapping, names)
			if err != nil {
				return nil, err
			}
			r, err := rewriteOntoAgg(w.Result, mapping, names)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, sql.WhenClause{Cond: c, Result: r})
		}
		if n.Else != nil {
			e2, err := rewriteOntoAgg(n.Else, mapping, names)
			if err != nil {
				return nil, err
			}
			out.Else = e2
		}
		return out, nil
	default:
		return nil, fmt.Errorf("optimizer: cannot rewrite %T over aggregation", e)
	}
}
