package optimizer

import "repro/internal/sql"

// Cost model constants (abstract units ~ "row touches"). The absolute
// values matter less than the ratios: the TP/AP threshold compares
// against them, and the row-vs-column decision flips on scanCost vs
// colScanCost (§VI-E: column stores win on large scans, row stores on
// point lookups).
const (
	pointLookupCost    = 10.0
	rowScanCostPerRow  = 1.0
	colScanCostPerRow  = 0.15
	hashJoinCostPerRow = 1.5
	nlJoinCostPerPair  = 0.05
	aggCostPerRow      = 1.2
	sortCostPerRow     = 2.0
	defaultSelectivity = 0.25
	crossShardPenalty  = 50.0 // per extra shard touched
)

// selectivityOf estimates the combined selectivity of pushed conjuncts:
// equality predicates are taken as 10%, everything else as the default.
func selectivityOf(conds []sql.Expr) float64 {
	s := 1.0
	for _, c := range conds {
		if b, ok := c.(*sql.BinaryOp); ok && b.Op == "=" {
			s *= 0.1
			continue
		}
		s *= defaultSelectivity
	}
	if s < 1e-4 {
		s = 1e-4
	}
	return s
}

// costOf computes the plan's total estimated cost bottom-up.
func costOf(n Node) float64 {
	switch node := n.(type) {
	case *ScanNode:
		if len(node.PointLookups) > 0 {
			return float64(len(node.PointLookups)) * pointLookupCost
		}
		if node.GSI != nil {
			// One hidden shard range read; non-clustered adds a primary
			// lookup per matching row (§II-B scattered reads).
			c := crossShardPenalty + node.rows*rowScanCostPerRow
			if !node.GSI.Clustered {
				c += node.rows * pointLookupCost
			}
			return c
		}
		base := float64(node.Table.Shards) * crossShardPenalty
		perRow := rowScanCostPerRow
		if node.UseColumnIndex {
			perRow = colScanCostPerRow
		}
		// Scan cost is over the table's full cardinality (filters are
		// evaluated per row even when they discard it).
		full := node.rows
		if node.Filter != nil {
			// rows was already reduced by selectivity; undo for cost.
			full = node.rows / defaultSelectivity
		}
		return base + full*perRow
	case *JoinNode:
		c := costOf(node.Left) + costOf(node.Right)
		if len(node.LeftKeys) > 0 {
			c += (node.Left.EstRows() + node.Right.EstRows()) * hashJoinCostPerRow
		} else {
			c += node.Left.EstRows() * node.Right.EstRows() * nlJoinCostPerPair
		}
		if node.PartitionWise {
			// Partition-wise joins skip redistribution.
			c *= 0.7
		}
		return c
	case *AggNode:
		return costOf(node.Input) + node.Input.EstRows()*aggCostPerRow
	case *FilterNode:
		return costOf(node.Input) + node.Input.EstRows()*0.1
	case *ProjectNode:
		return costOf(node.Input) + node.Input.EstRows()*0.1
	case *SortNode:
		return costOf(node.Input) + node.Input.EstRows()*sortCostPerRow
	case *LimitNode:
		return costOf(node.Input)
	default:
		return 0
	}
}

// applyAPChoices adjusts an AP-classified plan: column-index scans where
// available, MPP when the cluster offers multiple CN workers, and
// partial-aggregation pushdown under two-phase aggregation.
func (o *Optimizer) applyAPChoices(p *Plan) {
	multiShard := false
	var visit func(n Node)
	visit = func(n Node) {
		if scan, ok := n.(*ScanNode); ok {
			if len(scan.PointLookups) == 0 {
				if scan.Shards == nil && scan.Table.Shards > 1 || len(scan.Shards) > 1 {
					multiShard = true
				}
				// Column index wins for large scans (colScanCost <
				// rowScanCost); point lookups stay on the row store.
				if o.opts.HasColumnIndex(scan.Table.Name) {
					scan.UseColumnIndex = true
				}
			}
		}
		for _, c := range n.Children() {
			visit(c)
		}
	}
	visit(p.Root)
	p.MPP = o.opts.MPPAvailable && multiShard
	// AP plans default to the vectorized batch engine (§VI-C/§VI-E);
	// per-row overheads dominate exactly the scans that made them AP.
	p.Vectorized = o.opts.BatchAvailable
	// Re-cost with the store choices applied.
	p.Cost = costOf(p.Root)
}
