package optimizer

import (
	"testing"

	"repro/internal/sql"
	"repro/internal/types"
)

// litPlan builds a tiny plan whose root projects the given literal
// values, returning the plan and its parameter nodes in fingerprint
// order. No table metadata is needed: the cache's clone/instantiate path
// treats a ProjectNode like any other parameterized node.
func litPlan(vals ...int64) (*Plan, []*sql.Literal) {
	params := make([]*sql.Literal, len(vals))
	exprs := make([]sql.Expr, len(vals))
	names := make([]string, len(vals))
	for i, v := range vals {
		lit := &sql.Literal{Val: types.Int(v)}
		params[i] = lit
		exprs[i] = lit
		names[i] = "c"
	}
	root := &ProjectNode{Input: &LimitNode{Input: &ProjectNode{}, N: 1}, Exprs: exprs, Names: names}
	return &Plan{Root: root}, params
}

// TestLookupParamCountMismatchEvicts is the regression test for the
// plan-cache arity bug: two variants of one statement that share a
// fingerprint but carry different literal counts must never instantiate
// each other's skeleton. A mismatched lookup is a miss AND evicts the
// slot, so the follow-up Store/Lookup cycle for the new arity works.
func TestLookupParamCountMismatchEvicts(t *testing.T) {
	pc := NewPlanCache(8)
	const fp = "SELECT ?,? FROM t" // same key for both arities

	plan2, params2 := litPlan(1, 2)
	pc.Store(fp, 1, plan2, params2)
	if pc.Len() != 1 {
		t.Fatalf("Len = %d, want 1", pc.Len())
	}

	// Variant with three literals: same fingerprint, different arity.
	_, params3 := litPlan(3, 4, 5)
	if got := pc.Lookup(fp, 1, params3); got != nil {
		t.Fatalf("arity-mismatched Lookup returned a plan: %+v", got)
	}
	if pc.Len() != 0 {
		t.Fatalf("slot not evicted on arity mismatch: Len = %d", pc.Len())
	}
	if n := pc.ArityEvictions(); n != 1 {
		t.Fatalf("ArityEvictions = %d, want 1", n)
	}

	// The new arity can now be cached and served.
	plan3, params3 := litPlan(3, 4, 5)
	pc.Store(fp, 1, plan3, params3)
	_, fresh := litPlan(6, 7, 8)
	got := pc.Lookup(fp, 1, fresh)
	if got == nil {
		t.Fatal("Lookup after re-store missed")
	}
	proj := got.Root.(*ProjectNode)
	if len(proj.Exprs) != 3 {
		t.Fatalf("instantiated plan has %d exprs, want 3", len(proj.Exprs))
	}
	for i, want := range []int64{6, 7, 8} {
		if v := proj.Exprs[i].(*sql.Literal).Val.I; v != want {
			t.Fatalf("param %d = %d, want %d", i, v, want)
		}
	}

	hits, misses := pc.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("Stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

// TestLookupEpochMismatchEvicts pins the DDL-staleness eviction the
// arity path shares code with.
func TestLookupEpochMismatchEvicts(t *testing.T) {
	pc := NewPlanCache(8)
	plan, params := litPlan(1)
	pc.Store("fp", 1, plan, params)
	_, p2 := litPlan(2)
	if got := pc.Lookup("fp", 2, p2); got != nil {
		t.Fatal("stale-epoch Lookup returned a plan")
	}
	if pc.Len() != 0 {
		t.Fatal("stale-epoch slot not evicted")
	}
	if n := pc.ArityEvictions(); n != 0 {
		t.Fatalf("epoch eviction miscounted as arity eviction: %d", n)
	}
}
