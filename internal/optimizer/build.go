package optimizer

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/partition"
	"repro/internal/sql"
	"repro/internal/types"
)

// Errors.
var (
	ErrUnknownColumn   = errors.New("optimizer: unknown column")
	ErrAmbiguousColumn = errors.New("optimizer: ambiguous column")
	ErrUnknownTable    = errors.New("optimizer: unknown table")
)

// Catalog resolves logical tables (implemented by gms.GMS).
type Catalog interface {
	Table(name string) (*partition.Table, error)
}

// Stats supplies table cardinalities for costing.
type Stats interface {
	RowCount(table string) int64
}

// Options tunes the optimizer.
type Options struct {
	// TPCostThreshold classifies plans: cost above it is AP (§VI-B
	// "Based on this cost and an empirical threshold, each request is
	// classified as either an OLTP or an OLAP request").
	TPCostThreshold float64
	// HasColumnIndex reports whether an AP-serving RO node maintains an
	// in-memory column index for the table.
	HasColumnIndex func(table string) bool
	// MPPAvailable enables multi-CN fragment plans for AP queries.
	MPPAvailable bool
	// BatchAvailable enables vectorized batch execution for AP plans
	// (row mode remains the TP path and the equivalence baseline).
	BatchAvailable bool
}

func (o Options) withDefaults() Options {
	if o.TPCostThreshold <= 0 {
		o.TPCostThreshold = 5000
	}
	if o.HasColumnIndex == nil {
		o.HasColumnIndex = func(string) bool { return false }
	}
	return o
}

// Optimizer plans SELECT statements against a catalog.
type Optimizer struct {
	cat   Catalog
	stats Stats
	opts  Options
}

// New builds an Optimizer. stats may be nil (defaults to 1000 rows).
func New(cat Catalog, stats Stats, opts Options) *Optimizer {
	return &Optimizer{cat: cat, stats: stats, opts: opts.withDefaults()}
}

func (o *Optimizer) rowCount(table string) float64 {
	if o.stats != nil {
		if n := o.stats.RowCount(table); n > 0 {
			return float64(n)
		}
	}
	return 1000
}

// scope resolves column references against an output layout.
type scope struct{ cols []string }

func (s scope) resolve(c *sql.ColumnRef) (int, error) {
	want := strings.ToLower(c.Name())
	if c.Table != "" {
		for i, col := range s.cols {
			if col == want {
				return i, nil
			}
		}
		return -1, fmt.Errorf("%w: %s in [%s]", ErrUnknownColumn, c.Name(), strings.Join(s.cols, ","))
	}
	// Bare name: unique suffix match.
	found := -1
	suffix := "." + strings.ToLower(c.Column)
	for i, col := range s.cols {
		if strings.HasSuffix(col, suffix) || col == strings.ToLower(c.Column) {
			if found >= 0 {
				return -1, fmt.Errorf("%w: %s", ErrAmbiguousColumn, c.Column)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("%w: %s in [%s]", ErrUnknownColumn, c.Column, strings.Join(s.cols, ","))
	}
	return found, nil
}

// bind resolves every column reference in e against sc, in place.
func (s scope) bind(e sql.Expr) error {
	var firstErr error
	sql.Walk(e, func(n sql.Expr) bool {
		if c, ok := n.(*sql.ColumnRef); ok {
			idx, err := s.resolve(c)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			c.Index = idx
		}
		return true
	})
	return firstErr
}

// tablesIn returns the set of table qualifiers an expression touches,
// resolved through the given alias scopes (bare columns map to the
// unique table that has them).
func tablesIn(e sql.Expr, scans map[string]*ScanNode) map[string]bool {
	out := make(map[string]bool)
	sql.Walk(e, func(n sql.Expr) bool {
		c, ok := n.(*sql.ColumnRef)
		if !ok {
			return true
		}
		if c.Table != "" {
			out[strings.ToLower(c.Table)] = true
			return true
		}
		suffix := "." + strings.ToLower(c.Column)
		for alias, scan := range scans {
			for _, col := range scan.cols {
				if strings.HasSuffix(col, suffix) {
					out[alias] = true
				}
			}
		}
		return true
	})
	return out
}

// conjuncts splits an expression on AND.
func conjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.BinaryOp); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// andAll rebuilds a conjunction (nil for empty).
func andAll(es []sql.Expr) sql.Expr {
	var out sql.Expr
	for _, e := range es {
		if out == nil {
			out = e
		} else {
			out = &sql.BinaryOp{Op: "AND", L: out, R: e}
		}
	}
	return out
}

// newScan builds a ScanNode for a table reference.
func (o *Optimizer) newScan(ref sql.TableRef) (*ScanNode, error) {
	t, err := o.cat.Table(ref.Name)
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTable, ref.Name)
	}
	alias := strings.ToLower(ref.AliasOrName())
	cols := make([]string, len(t.Schema.Columns))
	for i, c := range t.Schema.Columns {
		cols[i] = alias + "." + strings.ToLower(c.Name)
	}
	return &ScanNode{Table: t, Alias: alias, cols: cols, rows: o.rowCount(ref.Name)}, nil
}

// PlanSelect builds, binds and costs a physical plan for a SELECT.
func (o *Optimizer) PlanSelect(sel *sql.Select) (*Plan, error) {
	// 1. Scans for every referenced table.
	refs := append([]sql.TableRef{sel.From}, nil...)
	joinOns := []sql.Expr{nil}
	joinOuter := []bool{false}
	for _, jc := range sel.Joins {
		refs = append(refs, jc.Table)
		joinOns = append(joinOns, jc.On)
		joinOuter = append(joinOuter, jc.Left)
	}
	scans := make(map[string]*ScanNode, len(refs))
	order := make([]*ScanNode, len(refs))
	// nullable marks aliases on the NULL-extended side of a LEFT JOIN:
	// WHERE conjuncts on them must stay above the join (pushing them
	// into the scan would defeat null-extension, e.g. the classic
	// anti-join `WHERE right.key IS NULL`).
	nullable := make(map[string]bool)
	for i, ref := range refs {
		scan, err := o.newScan(ref)
		if err != nil {
			return nil, err
		}
		if _, dup := scans[scan.Alias]; dup {
			return nil, fmt.Errorf("optimizer: duplicate table alias %q", scan.Alias)
		}
		scans[scan.Alias] = scan
		order[i] = scan
		if joinOuter[i] {
			nullable[scan.Alias] = true
		}
	}

	// 2. Classify WHERE conjuncts: single-table → pushdown (unless the
	// table is nullable); multi-table or nullable → post-join conditions.
	var joinConds []sql.Expr
	perTable := make(map[string][]sql.Expr)
	for _, c := range conjuncts(sel.Where) {
		ts := tablesIn(c, scans)
		if len(ts) == 1 {
			pushable := true
			for alias := range ts {
				if nullable[alias] {
					pushable = false
				}
			}
			if pushable {
				for alias := range ts {
					perTable[alias] = append(perTable[alias], c)
				}
				continue
			}
		}
		joinConds = append(joinConds, c)
	}
	// ON clauses join the pool too (inner-join semantics; for LEFT JOIN
	// the ON conjuncts stay attached to that join).
	for i := 1; i < len(refs); i++ {
		if joinOuter[i] {
			continue
		}
		for _, c := range conjuncts(joinOns[i]) {
			if isTrueLiteral(c) {
				continue
			}
			ts := tablesIn(c, scans)
			if len(ts) == 1 {
				for alias := range ts {
					perTable[alias] = append(perTable[alias], c)
				}
			} else {
				joinConds = append(joinConds, c)
			}
		}
		joinOns[i] = nil
	}

	// 3. Finish scans: bind pushed filters, prune shards, and fall back
	// to global secondary indexes when the primary key is not pinned.
	for alias, scan := range scans {
		filter := andAll(perTable[alias])
		if filter != nil {
			if err := (scope{cols: scan.cols}).bind(filter); err != nil {
				return nil, err
			}
			scan.Filter = filter
			scan.rows *= selectivityOf(perTable[alias])
		}
		o.pruneShards(scan, perTable[alias])
		if len(scan.PointLookups) == 0 {
			o.prunePartition(scan, perTable[alias])
			o.chooseGSI(scan, perTable[alias])
		}
	}

	// 4. Left-deep join tree in FROM order.
	var root Node = order[0]
	joined := map[string]bool{order[0].Alias: true}
	for i := 1; i < len(order); i++ {
		right := order[i]
		var conds []sql.Expr
		if joinOuter[i] {
			conds = conjuncts(joinOns[i])
		} else {
			// Pull applicable join conditions: both sides covered.
			var rest []sql.Expr
			for _, c := range joinConds {
				ts := tablesIn(c, scans)
				ok := true
				for a := range ts {
					if a != right.Alias && !joined[a] {
						ok = false
					}
				}
				if ok && ts[right.Alias] {
					conds = append(conds, c)
				} else {
					rest = append(rest, c)
				}
			}
			joinConds = rest
		}
		node, err := o.buildJoin(root, right, conds, joinOuter[i])
		if err != nil {
			return nil, err
		}
		root = node
		joined[right.Alias] = true
	}
	// Leftover multi-table conditions (e.g. comma-join predicates whose
	// tables only became jointly visible at the end) apply as filters.
	if len(joinConds) > 0 {
		pred := andAll(joinConds)
		if err := (scope{cols: root.Columns()}).bind(pred); err != nil {
			return nil, err
		}
		root = &FilterNode{Input: root, Pred: pred}
	}

	// 5. Aggregation / projection / having / order / limit.
	root, err := o.finishPlan(root, sel)
	if err != nil {
		return nil, err
	}

	// 6. Cost, classify, choose stores.
	plan := &Plan{Root: root}
	plan.Cost = costOf(root)
	plan.IsAP = plan.Cost > o.opts.TPCostThreshold
	if plan.IsAP {
		o.applyAPChoices(plan)
	}
	return plan, nil
}

func isTrueLiteral(e sql.Expr) bool {
	l, ok := e.(*sql.Literal)
	return ok && l.Val.K == types.KindBool && l.Val.I == 1
}

// buildJoin assembles a join node, extracting equi-keys.
func (o *Optimizer) buildJoin(left Node, right *ScanNode, conds []sql.Expr, outer bool) (Node, error) {
	leftScope := scope{cols: left.Columns()}
	rightScope := scope{cols: right.Columns()}
	combined := scope{cols: append(append([]string{}, left.Columns()...), right.Columns()...)}

	j := &JoinNode{Left: left, Right: right, Outer: outer}
	var residual []sql.Expr
	for _, c := range conds {
		if isTrueLiteral(c) {
			continue
		}
		if b, ok := c.(*sql.BinaryOp); ok && b.Op == "=" {
			lc, lok := b.L.(*sql.ColumnRef)
			rc, rok := b.R.(*sql.ColumnRef)
			if lok && rok {
				// Try L→left, R→right then the swap.
				lIdx, lErr := leftScope.resolve(lc)
				rIdx, rErr := rightScope.resolve(rc)
				if lErr == nil && rErr == nil {
					j.LeftKeys = append(j.LeftKeys, &sql.ColumnRef{Column: lc.Column, Index: lIdx})
					j.RightKeys = append(j.RightKeys, &sql.ColumnRef{Column: rc.Column, Index: rIdx})
					continue
				}
				lIdx, lErr = leftScope.resolve(rc)
				rIdx, rErr = rightScope.resolve(lc)
				if lErr == nil && rErr == nil {
					j.LeftKeys = append(j.LeftKeys, &sql.ColumnRef{Column: rc.Column, Index: lIdx})
					j.RightKeys = append(j.RightKeys, &sql.ColumnRef{Column: lc.Column, Index: rIdx})
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	if res := andAll(residual); res != nil {
		if err := combined.bind(res); err != nil {
			return nil, err
		}
		j.On = res
	}
	// Partition-wise join detection (§II-B): both sides in one table
	// group, equi-keys cover the partition (primary) key columns.
	if ls, ok := left.(*ScanNode); ok && len(j.LeftKeys) > 0 {
		if ls.Table.Group == right.Table.Group && samePartitionKeys(j, ls, right) {
			j.PartitionWise = true
		}
	}
	// Cardinality: FK-ish assumption — the probe side keeps its size.
	j.rows = left.EstRows()
	if len(j.LeftKeys) == 0 {
		j.rows = left.EstRows() * right.EstRows() * defaultSelectivity
	}
	return j, nil
}

// samePartitionKeys checks that the join keys align with both tables'
// partition keys.
func samePartitionKeys(j *JoinNode, l, r *ScanNode) bool {
	partOf := func(t *partition.Table, keys []sql.Expr) bool {
		if len(keys) < len(t.PartCols) {
			return false
		}
		covered := make(map[int]bool)
		for _, k := range keys {
			if c, ok := k.(*sql.ColumnRef); ok {
				covered[c.Index] = true
			}
		}
		for _, pc := range t.PartCols {
			if !covered[pc] {
				return false
			}
		}
		return true
	}
	// Scan columns are schema order (no projection), so key indexes map
	// straight to schema positions; join keys must cover BOTH partition
	// keys for equal values to colocate.
	return partOf(l.Table, j.LeftKeys) && partOf(r.Table, j.RightKeys)
}

// chooseGSI routes a scan through a global secondary index when the
// pushed conjuncts pin equality literals on the index's leading columns
// (§II-B). Clustered indexes are preferred: they avoid the scattered
// primary-key reads a non-clustered hit must perform.
func (o *Optimizer) chooseGSI(scan *ScanNode, conds []sql.Expr) {
	eq := make(map[int]types.Value) // schema col -> literal
	for _, c := range conds {
		b, ok := c.(*sql.BinaryOp)
		if !ok || b.Op != "=" {
			continue
		}
		col, okc := b.L.(*sql.ColumnRef)
		lit, okl := b.R.(*sql.Literal)
		if !okc || !okl {
			col, okc = b.R.(*sql.ColumnRef)
			lit, okl = b.L.(*sql.Literal)
		}
		if okc && okl && col.Index >= 0 {
			eq[col.Index] = lit.Val
		}
	}
	if len(eq) == 0 {
		return
	}
	var best *partition.GlobalIndex
	var bestVals []types.Value
	for _, gi := range scan.Table.Indexes {
		vals := make([]types.Value, 0, len(gi.Cols))
		for _, ci := range gi.Cols {
			v, ok := eq[ci]
			if !ok {
				break
			}
			vals = append(vals, v)
		}
		if len(vals) != len(gi.Cols) {
			continue // only full-prefix equality pins one hidden shard
		}
		// Non-clustered hits look up base rows by PK, which requires
		// PK-inferable routing on the base table.
		if !gi.Clustered && !scan.Table.PartitionedByPK() {
			continue
		}
		if best == nil || (gi.Clustered && !best.Clustered) {
			best, bestVals = gi, vals
		}
	}
	if best == nil {
		return
	}
	scan.GSI = best
	scan.GSIVals = bestVals
	scan.Shards = []int{best.ShardOfIndexedValues(bestVals...)}
}

// equalityLiterals extracts bound `col = literal` conjuncts.
func equalityLiterals(conds []sql.Expr) map[int]types.Value {
	eq := make(map[int]types.Value)
	for _, c := range conds {
		b, ok := c.(*sql.BinaryOp)
		if !ok || b.Op != "=" {
			continue
		}
		col, okc := b.L.(*sql.ColumnRef)
		lit, okl := b.R.(*sql.Literal)
		if !okc || !okl {
			col, okc = b.R.(*sql.ColumnRef)
			lit, okl = b.L.(*sql.Literal)
		}
		if okc && okl && col.Index >= 0 {
			eq[col.Index] = lit.Val
		}
	}
	return eq
}

// prunePartition pins the scan to one shard when equality literals
// cover the partition key (PARTITION BY pruning for tables whose
// partition key differs from the primary key).
func (o *Optimizer) prunePartition(scan *ScanNode, conds []sql.Expr) {
	if scan.Shards != nil || scan.Table.PartitionedByPK() {
		return // PK pruning already handles the common case
	}
	eq := equalityLiterals(conds)
	vals := make([]types.Value, 0, len(scan.Table.PartCols))
	for _, ci := range scan.Table.PartCols {
		v, ok := eq[ci]
		if !ok {
			return
		}
		vals = append(vals, v)
	}
	scan.Shards = []int{types.HashPartition(types.EncodeKey(nil, vals...), scan.Table.Shards)}
	scan.rows /= float64(scan.Table.Shards)
}

// pruneShards analyzes pushed conjuncts for full-PK equality and
// replaces the scan with point lookups on the owning shards.
func (o *Optimizer) pruneShards(scan *ScanNode, conds []sql.Expr) {
	if !scan.Table.PartitionedByPK() {
		return // the shard cannot be inferred from the PK alone
	}
	schema := scan.Table.Schema
	if len(schema.PKCols) != 1 {
		// Composite PK: equality conjuncts must cover every PK column;
		// the residual filter stays on the scan, so over-approximating
		// here is safe.
		eq := equalityLiterals(conds)
		vals := make([]types.Value, 0, len(schema.PKCols))
		for _, ci := range schema.PKCols {
			v, ok := eq[ci]
			if !ok {
				return
			}
			vals = append(vals, v)
		}
		pk := types.EncodeKey(nil, vals...)
		scan.PointLookups = [][]byte{pk}
		scan.Shards = []int{scan.Table.ShardOfPK(pk)}
		scan.rows = 1
		return
	}
	pkIdx := schema.PKCols[0]
	for _, c := range conds {
		switch n := c.(type) {
		case *sql.BinaryOp:
			if n.Op != "=" {
				continue
			}
			col, okc := n.L.(*sql.ColumnRef)
			lit, okl := n.R.(*sql.Literal)
			if !okc || !okl {
				col, okc = n.R.(*sql.ColumnRef)
				lit, okl = n.L.(*sql.Literal)
			}
			if okc && okl && col.Index == pkIdx {
				pk := types.EncodeKey(nil, lit.Val)
				scan.PointLookups = [][]byte{pk}
				scan.Shards = []int{scan.Table.ShardOfPK(pk)}
				scan.rows = 1
				return
			}
		case *sql.InList:
			col, okc := n.E.(*sql.ColumnRef)
			if !okc || n.Not || col.Index != pkIdx {
				continue
			}
			var pks [][]byte
			shardSet := map[int]bool{}
			seen := map[string]bool{}
			allLit := true
			for _, item := range n.Items {
				lit, ok := item.(*sql.Literal)
				if !ok {
					allLit = false
					break
				}
				pk := types.EncodeKey(nil, lit.Val)
				if seen[string(pk)] {
					continue // IN (1, 1) must not read the row twice
				}
				seen[string(pk)] = true
				pks = append(pks, pk)
				shardSet[scan.Table.ShardOfPK(pk)] = true
			}
			if allLit {
				scan.PointLookups = pks
				scan.Shards = make([]int, 0, len(shardSet))
				for s := range shardSet {
					scan.Shards = append(scan.Shards, s)
				}
				scan.rows = float64(len(pks))
				return
			}
		}
	}
}
