package optimizer

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"repro/internal/sql"
	"repro/internal/types"
)

// DefaultPlanCacheSize bounds the per-CN plan cache.
const DefaultPlanCacheSize = 512

// planCacheShards spreads the cache over independently locked shards.
// At front-door session counts every statement on the CN takes the
// cache lock twice (lookup + LRU touch); a single mutex here was the
// first contention wall the 10k-session soak surfaced. Shard selection
// hashes the fingerprint, so one hot statement still serializes on its
// shard — but distinct statements no longer contend at all.
const planCacheShards = 16

// PlanCache is the CN's fingerprinted plan cache (the "plan cache"
// box on the paper's CN, Fig. 2): plans are keyed by the statement's
// literal-normalized fingerprint plus the schema epoch, so repeated
// parameterized statements (the sysbench loop) skip the full optimizer
// pipeline — including the catalog walks it performs for shard metadata
// and statistics — and only re-bind parameters + recompute the
// value-dependent routing (shard pruning, GSI choice).
//
// Entries store an immutable plan skeleton. Lookup returns a deep copy
// with fresh parameter literals substituted, so concurrent sessions on
// one CN never share mutable plan state.
type PlanCache struct {
	shards [planCacheShards]planShard
	seed   maphash.Seed

	hits, misses atomic.Uint64
	// arityEvictions counts slots evicted because a lookup arrived with a
	// different parameter count than the cached skeleton (fingerprint
	// collision across literal arities).
	arityEvictions atomic.Uint64
}

// planShard is one independently locked slice of the cache.
type planShard struct {
	mu   sync.Mutex
	cap  int
	lru  *list.List // front = most recent; values are *cacheSlot
	byFP map[string]*list.Element
}

// cacheSlot is one cached skeleton.
type cacheSlot struct {
	fp    string
	epoch uint64
	plan  *Plan
	// params are the skeleton's literal nodes in fingerprint order;
	// instantiation maps them positionally onto a fresh statement's
	// literals.
	params []*sql.Literal
}

// NewPlanCache creates a cache; capacity <= 0 uses the default. The
// capacity is split evenly across shards (rounded up), so the effective
// total may slightly exceed the requested capacity.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	per := (capacity + planCacheShards - 1) / planCacheShards
	if per < 1 {
		per = 1
	}
	pc := &PlanCache{seed: maphash.MakeSeed()}
	for i := range pc.shards {
		pc.shards[i] = planShard{cap: per, lru: list.New(), byFP: make(map[string]*list.Element)}
	}
	return pc
}

// shardFor routes a fingerprint to its shard.
func (pc *PlanCache) shardFor(fp string) *planShard {
	return &pc.shards[maphash.String(pc.seed, fp)%planCacheShards]
}

// Lookup returns a plan instantiated with params, or nil on miss. A hit
// requires the cached epoch to match: any DDL bumps the epoch, so stale
// plans (e.g. referencing a dropped or superseded physical table) are
// evicted on first touch rather than executed. A param-count mismatch —
// two statements sharing a fingerprint but carrying different literal
// counts — likewise evicts the slot: instantiating positionally with the
// wrong arity would bind literals to the wrong plan nodes (or index out
// of range), so the slot must not survive to poison later lookups.
func (pc *PlanCache) Lookup(fp string, epoch uint64, params []*sql.Literal) *Plan {
	sh := pc.shardFor(fp)
	sh.mu.Lock()
	el, ok := sh.byFP[fp]
	if !ok {
		pc.misses.Add(1)
		sh.mu.Unlock()
		return nil
	}
	slot := el.Value.(*cacheSlot)
	if slot.epoch != epoch || len(slot.params) != len(params) {
		if len(slot.params) != len(params) {
			pc.arityEvictions.Add(1)
		}
		sh.lru.Remove(el)
		delete(sh.byFP, fp)
		pc.misses.Add(1)
		sh.mu.Unlock()
		return nil
	}
	sh.lru.MoveToFront(el)
	pc.hits.Add(1)
	sh.mu.Unlock()
	// Instantiate outside the lock: the skeleton is immutable.
	plan, _ := clonePlan(slot.plan, slot.params, params)
	return plan
}

// Store caches a freshly planned statement. The plan is snapshotted
// (deep-copied) so later mutation of the live plan — executor binding,
// the session's own reuse — cannot corrupt the skeleton.
func (pc *PlanCache) Store(fp string, epoch uint64, plan *Plan, params []*sql.Literal) {
	skeleton, skelParams := clonePlan(plan, params, nil)
	sh := pc.shardFor(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.byFP[fp]; ok {
		el.Value = &cacheSlot{fp: fp, epoch: epoch, plan: skeleton, params: skelParams}
		sh.lru.MoveToFront(el)
		return
	}
	el := sh.lru.PushFront(&cacheSlot{fp: fp, epoch: epoch, plan: skeleton, params: skelParams})
	sh.byFP[fp] = el
	for sh.lru.Len() > sh.cap {
		tail := sh.lru.Back()
		sh.lru.Remove(tail)
		delete(sh.byFP, tail.Value.(*cacheSlot).fp)
	}
}

// Stats returns cumulative hit/miss counters.
func (pc *PlanCache) Stats() (hits, misses uint64) {
	return pc.hits.Load(), pc.misses.Load()
}

// ArityEvictions returns how many slots were evicted on a parameter-count
// mismatch.
func (pc *PlanCache) ArityEvictions() uint64 { return pc.arityEvictions.Load() }

// Len returns the number of cached skeletons.
func (pc *PlanCache) Len() int {
	n := 0
	for i := range pc.shards {
		sh := &pc.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// clonePlan deep-copies a plan, substituting parameter literals. params
// are the source plan's literal nodes in fingerprint order; with, when
// non-nil, supplies the replacement literal for each position (parameter
// re-binding). With with == nil fresh literal nodes are minted carrying
// the same values (used to snapshot a skeleton the cache owns). Returns
// the clone and its parameter nodes in the same order.
func clonePlan(p *Plan, params, with []*sql.Literal) (*Plan, []*sql.Literal) {
	repl := make(map[*sql.Literal]*sql.Literal, len(params))
	out := make([]*sql.Literal, len(params))
	for i, old := range params {
		var lit *sql.Literal
		if with != nil {
			lit = with[i]
		} else {
			cp := *old
			lit = &cp
		}
		repl[old] = lit
		out[i] = lit
	}
	cp := *p
	cp.Root = cloneNode(p.Root, repl)
	return &cp, out
}

// cloneNode deep-copies a plan node tree, substituting literals and
// recomputing value-dependent scan routing for the new parameters.
func cloneNode(n Node, repl map[*sql.Literal]*sql.Literal) Node {
	switch x := n.(type) {
	case *ScanNode:
		s := *x
		s.Filter = sql.CloneExpr(x.Filter, repl)
		s.Shards = append([]int(nil), x.Shards...)
		s.PointLookups = append([][]byte(nil), x.PointLookups...)
		s.Projection = append([]int(nil), x.Projection...)
		s.GSIVals = append([]types.Value(nil), x.GSIVals...)
		if x.PushedAgg != nil {
			pa := &PushedAgg{GroupBy: append([]int(nil), x.PushedAgg.GroupBy...)}
			for _, a := range x.PushedAgg.Aggs {
				a.Arg = sql.CloneExpr(a.Arg, repl)
				pa.Aggs = append(pa.Aggs, a)
			}
			s.PushedAgg = pa
		}
		reprune(&s)
		return &s
	case *JoinNode:
		j := *x
		j.Left = cloneNode(x.Left, repl)
		j.Right = cloneNode(x.Right, repl)
		j.LeftKeys = cloneExprs(x.LeftKeys, repl)
		j.RightKeys = cloneExprs(x.RightKeys, repl)
		j.On = sql.CloneExpr(x.On, repl)
		return &j
	case *AggNode:
		a := *x
		a.Input = cloneNode(x.Input, repl)
		a.GroupBy = cloneExprs(x.GroupBy, repl)
		a.Aggs = append([]AggItem(nil), x.Aggs...)
		for i := range a.Aggs {
			a.Aggs[i].Arg = sql.CloneExpr(a.Aggs[i].Arg, repl)
		}
		a.Names = append([]string(nil), x.Names...)
		return &a
	case *FilterNode:
		return &FilterNode{Input: cloneNode(x.Input, repl), Pred: sql.CloneExpr(x.Pred, repl)}
	case *ProjectNode:
		return &ProjectNode{
			Input: cloneNode(x.Input, repl),
			Exprs: cloneExprs(x.Exprs, repl),
			Names: append([]string(nil), x.Names...),
		}
	case *SortNode:
		s := &SortNode{Input: cloneNode(x.Input, repl)}
		for _, k := range x.Keys {
			s.Keys = append(s.Keys, SortItem{Expr: sql.CloneExpr(k.Expr, repl), Desc: k.Desc})
		}
		return s
	case *LimitNode:
		return &LimitNode{Input: cloneNode(x.Input, repl), N: x.N}
	default:
		return n
	}
}

func cloneExprs(es []sql.Expr, repl map[*sql.Literal]*sql.Literal) []sql.Expr {
	if es == nil {
		return nil
	}
	out := make([]sql.Expr, len(es))
	for i, e := range es {
		out[i] = sql.CloneExpr(e, repl)
	}
	return out
}

// reprune recomputes a cloned scan's value-dependent routing from its
// (re-parameterized) pushed filter: shard pruning, partition pruning and
// GSI choice all depend on literal values, so a cached skeleton's
// choices are stale the moment parameters change (`id IN (1,2)` touches
// different shards than `id IN (3,4)` — and `IN (1,1)` fewer keys than
// `IN (1,2)`). Mirrors PlanSelect step 3. Scans whose routing was never
// value-dependent (full scans) are left untouched.
func reprune(s *ScanNode) {
	if s.GSI == nil && s.PointLookups == nil && s.Shards == nil {
		return
	}
	conds := conjuncts(s.Filter)
	s.GSI, s.GSIVals = nil, nil
	s.PointLookups = nil
	s.Shards = nil
	var o Optimizer
	o.pruneShards(s, conds)
	if len(s.PointLookups) == 0 {
		o.prunePartition(s, conds)
		o.chooseGSI(s, conds)
	}
}
