// Package advisor implements PolarDB-X's SQL Advisor (paper §VIII,
// Index Recommendation): analyze a query workload, extract indexable
// columns, enumerate candidate indexes, prune low-value candidates
// heuristically, cost the survivors against each query with hypothetical
// ("what-if") indexes, and recommend the combination with the highest
// estimated saving.
//
// The what-if cost model mirrors the optimizer's scan costs: an equality
// predicate served by an index turns a full shard scan into an index
// lookup; a range predicate scans only the qualifying fraction. In a
// distributed setting every index also adds 2PC participants on writes,
// so candidates carry a maintenance penalty proportional to the
// workload's write fraction (the paper's warning that "adding indexes
// will increase the number of participants in two-phase commit").
package advisor

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/optimizer"
	"repro/internal/sql"
)

// Candidate is one hypothetical index.
type Candidate struct {
	Table   string
	Columns []string
	// Queries that would use it (indexes into the workload).
	UsedBy []int
	// Saving is the estimated cost reduction across the workload.
	Saving float64
	// Penalty is the estimated write-amplification cost.
	Penalty float64
}

// Name renders the candidate like an index DDL target.
func (c Candidate) Name() string {
	return fmt.Sprintf("idx_%s_%s", c.Table, strings.Join(c.Columns, "_"))
}

// Net returns saving minus maintenance penalty.
func (c Candidate) Net() float64 { return c.Saving - c.Penalty }

// Recommendation is the advisor's output.
type Recommendation struct {
	Candidates []Candidate // all scored candidates, best first
	Chosen     []Candidate // the greedy selection under MaxIndexes
}

// DDL renders CREATE GLOBAL INDEX statements for the chosen set.
func (r Recommendation) DDL() []string {
	out := make([]string, 0, len(r.Chosen))
	for _, c := range r.Chosen {
		out = append(out, fmt.Sprintf("CREATE GLOBAL INDEX %s ON %s (%s)",
			c.Name(), c.Table, strings.Join(c.Columns, ", ")))
	}
	return out
}

// Options tunes the advisor.
type Options struct {
	// MaxIndexes bounds the chosen set (default 3).
	MaxIndexes int
	// WriteFraction estimates the workload's write share for the
	// maintenance penalty (default 0.2).
	WriteFraction float64
	// MinSelectivity prunes candidates whose predicates are too
	// unselective to be worth an index (default 0.5: a predicate
	// expected to match more than half the table gains little).
	MinSelectivity float64
}

func (o Options) withDefaults() Options {
	if o.MaxIndexes <= 0 {
		o.MaxIndexes = 3
	}
	if o.WriteFraction <= 0 {
		o.WriteFraction = 0.2
	}
	if o.MinSelectivity <= 0 {
		o.MinSelectivity = 0.5
	}
	return o
}

// Advisor analyses workloads against a catalog.
type Advisor struct {
	cat   optimizer.Catalog
	stats optimizer.Stats
	opts  Options
}

// New builds an Advisor.
func New(cat optimizer.Catalog, stats optimizer.Stats, opts Options) *Advisor {
	return &Advisor{cat: cat, stats: stats, opts: opts.withDefaults()}
}

// indexableRef is one predicate that an index could serve.
type indexableRef struct {
	table    string // resolved table name
	column   string
	equality bool // equality/IN vs range
	queryIdx int
}

// Analyze inspects a workload of SELECT statements and recommends
// indexes.
func (a *Advisor) Analyze(queries []string) (Recommendation, error) {
	var refs []indexableRef
	weights := make([]float64, len(queries))
	for qi, q := range queries {
		stmt, err := sql.Parse(q)
		if err != nil {
			return Recommendation{}, fmt.Errorf("advisor: query %d: %w", qi, err)
		}
		sel, ok := stmt.(*sql.Select)
		if !ok {
			continue // only SELECTs drive index choice here
		}
		qRefs, weight, err := a.indexables(sel, qi)
		if err != nil {
			return Recommendation{}, err
		}
		refs = append(refs, qRefs...)
		weights[qi] = weight
	}

	// Candidate enumeration: single columns, plus (eq, eq) and
	// (eq, range) pairs on the same table within the same query.
	candSet := map[string]*Candidate{}
	add := func(table string, cols []string, qi int) {
		key := table + "(" + strings.Join(cols, ",") + ")"
		c, ok := candSet[key]
		if !ok {
			c = &Candidate{Table: table, Columns: cols}
			candSet[key] = c
		}
		for _, u := range c.UsedBy {
			if u == qi {
				return
			}
		}
		c.UsedBy = append(c.UsedBy, qi)
	}
	byQueryTable := map[string][]indexableRef{}
	for _, r := range refs {
		add(r.table, []string{r.column}, r.queryIdx)
		key := fmt.Sprintf("%d/%s", r.queryIdx, r.table)
		byQueryTable[key] = append(byQueryTable[key], r)
	}
	for _, group := range byQueryTable {
		for _, first := range group {
			if !first.equality {
				continue // composite candidates lead with an equality column
			}
			for _, second := range group {
				if second.column == first.column {
					continue
				}
				add(first.table, []string{first.column, second.column}, first.queryIdx)
			}
		}
	}

	// Score: what-if saving per query minus maintenance penalty.
	var cands []Candidate
	for _, c := range candSet {
		rows := float64(a.stats.RowCount(c.Table))
		if rows <= 0 {
			rows = 1000
		}
		sel := a.selectivity(c)
		if sel > a.opts.MinSelectivity {
			continue // heuristic pruning: too unselective
		}
		for _, qi := range c.UsedBy {
			// Saving: full scan cost minus indexed access cost, scaled by
			// how often the query appears (weight 1 each here).
			fullScan := rows
			indexed := rows*sel + 10 // lookup overhead
			if indexed < fullScan {
				c.Saving += (fullScan - indexed) * weights[qi]
			}
		}
		// Maintenance: every write to the table updates the index and
		// adds a 2PC participant.
		c.Penalty = rows * a.opts.WriteFraction * 0.3 * float64(len(c.Columns))
		if c.Saving > 0 {
			cands = append(cands, *c)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Net() != cands[j].Net() {
			return cands[i].Net() > cands[j].Net()
		}
		return cands[i].Name() < cands[j].Name()
	})

	// Greedy selection: take the best candidates whose queries are not
	// already covered by a chosen index on the same leading column.
	rec := Recommendation{Candidates: cands}
	covered := map[string]bool{}
	for _, c := range cands {
		if len(rec.Chosen) >= a.opts.MaxIndexes || c.Net() <= 0 {
			break
		}
		lead := c.Table + "." + c.Columns[0]
		if covered[lead] {
			continue
		}
		covered[lead] = true
		rec.Chosen = append(rec.Chosen, c)
	}
	return rec, nil
}

// indexables extracts indexable predicates from one SELECT and the
// query's cost weight (bigger tables → bigger saving potential).
func (a *Advisor) indexables(sel *sql.Select, qi int) ([]indexableRef, float64, error) {
	// Alias resolution.
	aliases := map[string]string{strings.ToLower(sel.From.AliasOrName()): sel.From.Name}
	tables := []string{sel.From.Name}
	for _, j := range sel.Joins {
		aliases[strings.ToLower(j.Table.AliasOrName())] = j.Table.Name
		tables = append(tables, j.Table.Name)
	}
	resolve := func(c *sql.ColumnRef) (string, bool) {
		if c.Table != "" {
			t, ok := aliases[strings.ToLower(c.Table)]
			return t, ok
		}
		// Bare column: find the unique table having it.
		var found string
		for _, tname := range tables {
			t, err := a.cat.Table(tname)
			if err != nil {
				continue
			}
			if t.Schema.ColIndex(c.Column) >= 0 {
				if found != "" {
					return "", false // ambiguous
				}
				found = tname
			}
		}
		return found, found != ""
	}
	var out []indexableRef
	addPred := func(c *sql.ColumnRef, eq bool) {
		if table, ok := resolve(c); ok {
			t, err := a.cat.Table(table)
			if err != nil {
				return
			}
			// The primary key is already indexed.
			ci := t.Schema.ColIndex(c.Column)
			for _, pk := range t.Schema.PKCols {
				if pk == ci {
					return
				}
			}
			out = append(out, indexableRef{table: table, column: strings.ToLower(c.Column),
				equality: eq, queryIdx: qi})
		}
	}
	visit := func(e sql.Expr) {
		sql.Walk(e, func(n sql.Expr) bool {
			switch b := n.(type) {
			case *sql.BinaryOp:
				if col, lit := colAndLiteral(b); col != nil {
					_ = lit
					addPred(col, b.Op == "=")
				}
			case *sql.Between:
				if c, ok := b.E.(*sql.ColumnRef); ok && !b.Not {
					addPred(c, false)
				}
			case *sql.InList:
				if c, ok := b.E.(*sql.ColumnRef); ok && !b.Not {
					addPred(c, true)
				}
			}
			return true
		})
	}
	visit(sel.Where)
	for _, j := range sel.Joins {
		visit(j.On)
	}
	// Each appearance weighs equally; table size enters the score via
	// the candidate's row count.
	return out, 1, nil
}

// colAndLiteral matches `col OP literal` in either direction for
// comparison operators.
func colAndLiteral(b *sql.BinaryOp) (*sql.ColumnRef, *sql.Literal) {
	switch b.Op {
	case "=", "<", "<=", ">", ">=", "LIKE":
	default:
		return nil, nil
	}
	if c, ok := b.L.(*sql.ColumnRef); ok {
		if l, ok := b.R.(*sql.Literal); ok {
			return c, l
		}
	}
	if c, ok := b.R.(*sql.ColumnRef); ok {
		if l, ok := b.L.(*sql.Literal); ok {
			return c, l
		}
	}
	return nil, nil
}

// selectivity estimates the fraction of rows a candidate's leading
// predicate keeps: equality on presumed-unique-ish columns is highly
// selective; ranges moderate. Without real histograms this uses the
// optimizer's rules of thumb.
func (a *Advisor) selectivity(c *Candidate) float64 {
	if len(c.Columns) > 1 {
		return 0.05
	}
	return 0.1
}
