package advisor

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/types"
)

type fakeCat struct {
	tables map[string]*partition.Table
	rows   map[string]int64
}

func (f *fakeCat) Table(name string) (*partition.Table, error) {
	t, ok := f.tables[name]
	if !ok {
		return nil, errors.New("no such table")
	}
	return t, nil
}

func (f *fakeCat) RowCount(name string) int64 { return f.rows[name] }

func newCat(t *testing.T) *fakeCat {
	t.Helper()
	cat := &fakeCat{tables: map[string]*partition.Table{}, rows: map[string]int64{}}
	add := func(name string, rows int64, cols []types.Column) {
		tab, err := partition.NewTable(name, uint32(len(cat.tables)+1),
			types.NewSchema(name, cols, []int{0}), 4, "")
		if err != nil {
			t.Fatal(err)
		}
		cat.tables[name] = tab
		cat.rows[name] = rows
	}
	add("orders", 500000, []types.Column{
		{Name: "o_id", Kind: types.KindInt},
		{Name: "o_cust", Kind: types.KindInt},
		{Name: "o_status", Kind: types.KindString},
		{Name: "o_date", Kind: types.KindInt},
	})
	add("customers", 5000, []types.Column{
		{Name: "c_id", Kind: types.KindInt},
		{Name: "c_city", Kind: types.KindString},
	})
	return cat
}

func TestRecommendsIndexForRepeatedEquality(t *testing.T) {
	cat := newCat(t)
	adv := New(cat, cat, Options{})
	rec, err := adv.Analyze([]string{
		"SELECT o_id FROM orders WHERE o_cust = 7",
		"SELECT o_id FROM orders WHERE o_cust = 9 AND o_date > 19950101",
		"SELECT COUNT(*) FROM orders WHERE o_cust = 11",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Chosen) == 0 {
		t.Fatal("no index recommended")
	}
	top := rec.Chosen[0]
	if top.Table != "orders" || top.Columns[0] != "o_cust" {
		t.Fatalf("top recommendation = %+v", top)
	}
	if top.Saving <= top.Penalty {
		t.Fatalf("chosen index not net-positive: %+v", top)
	}
	ddl := rec.DDL()
	if len(ddl) == 0 || !strings.Contains(ddl[0], "CREATE GLOBAL INDEX") ||
		!strings.Contains(ddl[0], "orders") {
		t.Fatalf("ddl = %v", ddl)
	}
}

func TestCompositeCandidateFromEqualityPlusRange(t *testing.T) {
	cat := newCat(t)
	adv := New(cat, cat, Options{MaxIndexes: 5})
	rec, err := adv.Analyze([]string{
		"SELECT o_id FROM orders WHERE o_cust = 7 AND o_date BETWEEN 19950101 AND 19951231",
	})
	if err != nil {
		t.Fatal(err)
	}
	foundComposite := false
	for _, c := range rec.Candidates {
		if len(c.Columns) == 2 && c.Columns[0] == "o_cust" && c.Columns[1] == "o_date" {
			foundComposite = true
		}
	}
	if !foundComposite {
		t.Fatalf("no (o_cust, o_date) composite candidate in %+v", rec.Candidates)
	}
}

func TestPrimaryKeyPredicatesIgnored(t *testing.T) {
	cat := newCat(t)
	adv := New(cat, cat, Options{})
	rec, err := adv.Analyze([]string{
		"SELECT o_status FROM orders WHERE o_id = 42",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Candidates) != 0 {
		t.Fatalf("PK-only query produced candidates: %+v", rec.Candidates)
	}
}

func TestJoinKeysAreIndexable(t *testing.T) {
	cat := newCat(t)
	adv := New(cat, cat, Options{})
	rec, err := adv.Analyze([]string{
		"SELECT c.c_city FROM orders o JOIN customers c ON o.o_cust = c.c_id WHERE o.o_status = 'open'",
	})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, c := range rec.Candidates {
		names[c.Table+"."+c.Columns[0]] = true
	}
	if !names["orders.o_status"] {
		t.Fatalf("status filter not indexable: %v", names)
	}
}

func TestWritePenaltyCanRejectIndexes(t *testing.T) {
	cat := newCat(t)
	// A write-dominated workload makes index maintenance too expensive.
	adv := New(cat, cat, Options{WriteFraction: 5})
	rec, err := adv.Analyze([]string{
		"SELECT o_id FROM orders WHERE o_cust = 7",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Chosen) != 0 {
		t.Fatalf("write-heavy workload still chose %+v", rec.Chosen)
	}
}

func TestBadQuerySurfacesError(t *testing.T) {
	cat := newCat(t)
	adv := New(cat, cat, Options{})
	if _, err := adv.Analyze([]string{"SELEC nonsense"}); err == nil {
		t.Fatal("parse error swallowed")
	}
}

func TestMaxIndexesBound(t *testing.T) {
	cat := newCat(t)
	adv := New(cat, cat, Options{MaxIndexes: 1})
	rec, err := adv.Analyze([]string{
		"SELECT o_id FROM orders WHERE o_cust = 1",
		"SELECT o_id FROM orders WHERE o_status = 'open'",
		"SELECT o_id FROM orders WHERE o_date > 19950101",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Chosen) > 1 {
		t.Fatalf("chose %d indexes with MaxIndexes=1", len(rec.Chosen))
	}
}
