package dn

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/colindex"
	"repro/internal/hlc"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vector"
	"repro/internal/wal"
)

// RO is a read-only replica attached to a DN instance (§II-C). It applies
// the instance's redo stream into its own engine and serves snapshot
// reads; session consistency is enforced by waiting until the applied
// LSN covers the client's last write.
type RO struct {
	name string
	dc   simnet.DC
	net  *simnet.Network
	eng  *storage.Engine
	ap   *storage.Applier

	// applyDelay simulates a busy/slow replica (CPU or network
	// congestion per §II-C); the instance evicts replicas whose lag
	// exceeds the limit.
	applyDelay atomic.Int64 // nanoseconds per batch

	mu      sync.Mutex
	applied wal.LSN
	expect  wal.LSN // next expected stream offset
	waiters []roWaiter
	stopped bool
	ingests uint64

	// colBuilder, when non-nil, maintains in-memory column indexes fed
	// from the applied redo stream (§VI-E).
	colBuilder atomic.Pointer[colindex.Builder]
	// svc is this replica's own service-capacity model.
	svc *svcModel
	// compressOff propagates the instance's CompressionOff setting to
	// column indexes enabled on this replica; metrics receives their
	// encoded-scan counters.
	compressOff bool
	metrics     *obs.Registry
}

type roWaiter struct {
	lsn wal.LSN
	ch  chan struct{}
}

// roAppendMsg ships raw redo [Start, Start+len(Bytes)) to an RO.
type roAppendMsg struct {
	Start wal.LSN
	Bytes []byte
}

// roAck reports the RO's applied offset back to the instance.
type roAck struct {
	From    string
	Applied wal.LSN
}

// AddRO attaches a new read-only replica to the instance. Because the
// replica shares PolarFS with the RW node, creation copies no data: the
// replica starts consuming redo from the instance's current base and
// serves reads once caught up. (This is what makes adding an RO take
// seconds, not hours — the §II/§VII-C scalable-reads claim.)
func (i *Instance) AddRO(name string) (*RO, error) {
	ro := &RO{
		name:        name,
		dc:          i.cfg.DC,
		net:         i.cfg.Net,
		eng:         storage.NewEngine(),
		compressOff: i.cfg.CompressionOff,
		metrics:     i.cfg.Metrics,
	}
	ro.svc = newSvcModel(i.cfg.ServiceRate, 0)
	ro.ap = storage.NewApplier(ro.eng)
	// Clone current schemas so the replica can apply row redo. (The real
	// system reads the shared data dictionary from PolarFS.)
	for _, t := range i.eng.Tables() {
		if _, err := ro.eng.CreateTable(t.ID, t.Tenant, t.Schema); err != nil {
			return nil, err
		}
	}
	i.cfg.Net.Register(name, i.cfg.DC, ro.handle)

	i.mu.Lock()
	defer i.mu.Unlock()
	if i.stopped {
		i.cfg.Net.Unregister(name)
		return nil, ErrStopped
	}
	i.ros = append(i.ros, ro)
	base := i.node.Log().BaseLSN()
	i.roCur[name] = base
	i.roAck[name] = base
	ro.mu.Lock()
	ro.expect = base
	ro.applied = base
	ro.mu.Unlock()
	return ro, nil
}

// ROs lists the instance's replicas.
func (i *Instance) ROs() []*RO {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]*RO(nil), i.ros...)
}

// EvictedROs lists replicas kicked out for lagging.
func (i *Instance) EvictedROs() []string {
	i.mu.Lock()
	defer i.mu.Unlock()
	var out []string
	for name, ev := range i.evicted {
		if ev {
			out = append(out, name)
		}
	}
	return out
}

// roShipperLoop streams new redo to each RO replica, mirroring §II-C
// steps 4-7: broadcast the update, replicas apply and piggyback their
// consumed offset, and replicas lagging beyond the limit are kicked out
// of the cluster so they stop holding back log purge.
func (i *Instance) roShipperLoop() {
	defer i.wg.Done()
	ticker := time.NewTicker(time.Millisecond)
	defer ticker.Stop()
	for {
		wait := i.node.Log().WaitForAppend()
		select {
		case <-i.done:
			return
		case <-wait:
		case <-ticker.C:
		}
		i.shipToROs()
	}
}

func (i *Instance) shipToROs() {
	log := i.node.Log()
	// Only redo below DLSN is safe to expose to readers: beyond it the
	// records could be truncated after a leader change (§III).
	limit := i.node.DLSN()
	i.mu.Lock()
	type job struct {
		name string
		from wal.LSN
	}
	var jobs []job
	for _, ro := range i.ros {
		name := ro.name
		if i.evicted[name] {
			continue
		}
		cur := i.roCur[name]
		if cur >= limit {
			continue
		}
		// Eviction check: lag beyond the limit gets the replica kicked.
		if limit-i.roAck[name] > i.cfg.ROLagLimit {
			i.evicted[name] = true
			continue
		}
		jobs = append(jobs, job{name: name, from: cur})
		i.roCur[name] = limit
	}
	i.mu.Unlock()

	for _, j := range jobs {
		raw, err := log.ReadBytes(j.from, limit)
		if err != nil {
			continue
		}
		i.cfg.Net.Send(i.cfg.Name, j.name, roAppendMsg{Start: j.from, Bytes: raw}, nil)
	}
}

// handleROAck ingests a replica's applied offset.
func (i *Instance) handleROAck(m roAck) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if m.Applied > i.roAck[m.From] {
		i.roAck[m.From] = m.Applied
	}
	// A rewind request (gap) moves the cursor back.
	if m.Applied < i.roCur[m.From] {
		i.roCur[m.From] = m.Applied
	}
}

// MinROAck returns the lowest applied LSN across live replicas — the
// log-purge bound of §II-C step 8.
func (i *Instance) MinROAck() wal.LSN {
	i.mu.Lock()
	defer i.mu.Unlock()
	min := i.node.DLSN()
	for _, ro := range i.ros {
		if i.evicted[ro.name] {
			continue
		}
		if a := i.roAck[ro.name]; a < min {
			min = a
		}
	}
	return min
}

// --- RO side ---

// SetApplyDelay simulates replica slowness (per shipped batch).
func (r *RO) SetApplyDelay(d time.Duration) { r.applyDelay.Store(int64(d)) }

// Name returns the RO endpoint name.
func (r *RO) Name() string { return r.name }

// Engine exposes the replica's engine (column index builds on it).
func (r *RO) Engine() *storage.Engine { return r.eng }

// AppliedLSN returns the replica's applied redo offset.
func (r *RO) AppliedLSN() wal.LSN { return r.appliedLSN() }

func (r *RO) appliedLSN() wal.LSN {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applied
}

func (r *RO) stop() {
	r.mu.Lock()
	r.stopped = true
	ws := r.waiters
	r.waiters = nil
	r.mu.Unlock()
	for _, w := range ws {
		close(w.ch)
	}
	r.net.Unregister(r.name)
}

func (r *RO) handle(from string, msg any) (any, error) {
	switch m := msg.(type) {
	case roAppendMsg:
		r.ingest(from, m)
		return nil, nil
	case ROReadReq:
		return r.read(m)
	case ROMultiGetReq:
		return r.multiGet(m)
	case ROScanReq:
		return r.scan(m)
	case StatusReq:
		return StatusResp{Name: r.name, TailLSN: r.appliedLSN()}, nil
	default:
		return nil, fmt.Errorf("dn: ro %s: unexpected message %T", r.name, msg)
	}
}

// ingest applies a shipped redo batch and acks the applied offset.
func (r *RO) ingest(from string, m roAppendMsg) {
	if d := r.applyDelay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	r.mu.Lock()
	if m.Start != r.expect {
		// Out-of-order batch (a rewind already served it, or a gap):
		// re-ack our position so the shipper realigns.
		applied := r.applied
		r.mu.Unlock()
		r.net.Send(r.name, from, roAck{From: r.name, Applied: applied}, nil)
		return
	}
	r.expect = m.Start + wal.LSN(len(m.Bytes))
	r.mu.Unlock()

	recs, err := wal.DecodeAll(m.Bytes)
	if err == nil {
		r.applyRecords(recs)
	}
	r.mu.Lock()
	r.applied = m.Start + wal.LSN(len(m.Bytes))
	r.ingests++
	vacuumDue := r.ingests%256 == 0
	var ready []roWaiter
	remaining := r.waiters[:0]
	for _, w := range r.waiters {
		if w.lsn <= r.applied {
			ready = append(ready, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	r.waiters = remaining
	applied := r.applied
	r.mu.Unlock()
	for _, w := range ready {
		close(w.ch)
	}
	if vacuumDue {
		// Replica-side MVCC GC. RO snapshots are not registered with the
		// engine, so vacuum keeps a generous safety window: only history
		// superseded more than vacuumWindow ago is reclaimed.
		horizon := hlc.New(hlc.WallClock()-vacuumWindowMs, 0)
		r.eng.Vacuum(horizon)
	}
	r.net.Send(r.name, from, roAck{From: r.name, Applied: applied}, nil)
}

// vacuumWindowMs bounds how far behind "now" an RO snapshot may lag and
// still read consistent history (5s; session-consistent reads are
// milliseconds behind in practice, §II-C).
const vacuumWindowMs = 5000

func (r *RO) applyRecords(recs []wal.Record) {
	if b := r.colBuilder.Load(); b != nil {
		_ = b.Apply(recs)
	}
	run := recs[:0:0]
	flush := func() {
		if len(run) > 0 {
			_ = r.ap.Apply(run)
			run = run[:0]
		}
	}
	for _, rec := range recs {
		if rec.Type == wal.RecDDL {
			flush()
			if schema, err := DecodeSchema(rec.Payload); err == nil {
				_, _ = r.eng.CreateTable(rec.TableID, rec.TenantID, schema)
			}
			continue
		}
		run = append(run, rec)
	}
	flush()
}

// waitApplied blocks until the applied LSN reaches lsn (session
// consistency: §II-C "The RO will wait until its snapshot version number
// is no less than LSN_RW before processing the query").
func (r *RO) waitApplied(lsn wal.LSN) {
	r.mu.Lock()
	if r.applied >= lsn || r.stopped {
		r.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	r.waiters = append(r.waiters, roWaiter{lsn: lsn, ch: ch})
	r.mu.Unlock()
	<-ch
}

func (r *RO) read(m ROReadReq) (ReadResp, error) {
	r.waitApplied(m.MinLSN)
	r.svc.serve(pointCost)
	row, ok, err := r.eng.GetAt(m.Table, m.PK, m.SnapshotTS)
	return ReadResp{Row: row, OK: ok}, err
}

// multiGet serves a batch of session-consistent point reads in one
// round trip: wait for the watermark once, then answer every key.
func (r *RO) multiGet(m ROMultiGetReq) (MultiGetResp, error) {
	r.waitApplied(m.MinLSN)
	r.svc.serve(pointCost * float64(len(m.Gets)))
	out := make([]ReadResp, len(m.Gets))
	for k, g := range m.Gets {
		row, ok, err := r.eng.GetAt(g.Table, g.PK, m.SnapshotTS)
		if err != nil {
			return MultiGetResp{}, err
		}
		out[k] = ReadResp{Row: row, OK: ok}
	}
	return MultiGetResp{Results: out}, nil
}

// EnableColumnIndex builds in-memory column indexes for the given
// tables on this replica, backfilling from the replica's current state
// and then maintaining them from the redo stream. Only AP-serving RO
// nodes pay this memory cost; the RW node never materializes the index
// (§VI-E). batch > 1 delays maintenance (batched updates), trading
// freshness for overhead.
func (r *RO) EnableColumnIndex(tableIDs []uint32, batch int) error {
	if batch < 1 {
		batch = 1
	}
	var indexes []*colindex.Index
	backfillTS := hlc.New(0, 0)
	for _, id := range tableIDs {
		t, err := r.eng.Table(id)
		if err != nil {
			return err
		}
		ix := colindex.New(id, t.Schema)
		ix.BatchSize = batch
		ix.SetCompression(!r.compressOff)
		ix.SetMetrics(r.metrics)
		indexes = append(indexes, ix)
	}
	// Merge into an existing builder so tables enabled earlier keep
	// their indexes; otherwise start fresh.
	builder := r.colBuilder.Load()
	if builder == nil {
		builder = colindex.NewBuilder()
	}
	for _, ix := range indexes {
		builder.Add(ix)
	}
	// Backfill: snapshot the replica's current contents. New redo keeps
	// flowing through applyRecords after the pointer is published; rows
	// committed between the snapshot and publication are replayed onto
	// the index (same-PK replays supersede the backfilled version).
	snapshot := hlc.Timestamp(^uint64(0) >> 1)
	for i, id := range tableIDs {
		ix := indexes[i]
		var recs []wal.Record
		err := r.eng.ScanRangeAt(id, nil, nil, snapshot, func(pk []byte, row types.Row) bool {
			recs = append(recs, wal.Record{Type: wal.RecInsert, TableID: id,
				TxnID: ^uint64(0), Key: append([]byte(nil), pk...),
				Payload: types.EncodeRow(nil, row)})
			return true
		})
		if err != nil {
			return err
		}
		if len(recs) > 0 {
			recs = append(recs, wal.Record{Type: wal.RecCommit, TxnID: ^uint64(0),
				Payload: encodeBackfillTS(backfillTS)})
			if err := builder.Apply(recs); err != nil {
				return err
			}
			if err := ix.Flush(); err != nil {
				return err
			}
		}
	}
	r.colBuilder.Store(builder)
	return nil
}

func encodeBackfillTS(ts hlc.Timestamp) []byte {
	return []byte{byte(ts >> 56), byte(ts >> 48), byte(ts >> 40), byte(ts >> 32),
		byte(ts >> 24), byte(ts >> 16), byte(ts >> 8), byte(ts)}
}

// ColumnIndex exposes a maintained index (benchmarks, diagnostics).
func (r *RO) ColumnIndex(tableID uint32) (*colindex.Index, bool) {
	b := r.colBuilder.Load()
	if b == nil {
		return nil, false
	}
	return b.Index(tableID)
}

func (r *RO) scan(m ROScanReq) (ScanResp, error) {
	r.waitApplied(m.MinLSN)
	if m.UseColumnIndex {
		if b := r.colBuilder.Load(); b != nil {
			if ix, ok := b.Index(m.Table); ok {
				return r.scanColumnIndex(ix, m)
			}
		}
		// Fall through to the row store when no index is maintained.
	}
	var rows []types.Row
	var evalErr error
	examined := 0
	collect := func(_ []byte, row types.Row) bool {
		examined++
		if m.Filter != nil {
			v, err := sql.Eval(m.Filter, row)
			if err != nil {
				evalErr = err
				return false
			}
			if !v.IsTruthy() {
				return true
			}
		}
		rows = append(rows, projectRow(row, m.Projection))
		return m.Limit <= 0 || len(rows) < m.Limit
	}
	var err error
	if m.Index != "" {
		txn := r.eng.Begin(m.SnapshotTS)
		err = r.eng.IndexScan(txn, m.Table, m.Index, m.Start, m.End, collect)
		_ = r.eng.Abort(txn) // read-only snapshot txn: release tracking
	} else {
		err = r.eng.ScanRangeAt(m.Table, m.Start, m.End, m.SnapshotTS, collect)
	}
	if err == nil {
		err = evalErr
	}
	r.svc.serve(float64(examined))
	if m.WantBatch && err == nil {
		// Columnarize once at the source: the CN's batch executor consumes
		// the vectors directly instead of re-pivoting rows per operator.
		if len(rows) == 0 {
			return ScanResp{}, nil
		}
		return ScanResp{Batch: vector.FromRows(rows, len(rows[0]))}, nil
	}
	return ScanResp{Rows: rows}, err
}

// scanColumnIndex serves an ROScanReq from the in-memory column index,
// including pushed-down partial aggregation. Columnar execution costs a
// quarter of the row store's tokens per row — the vectorized path's CPU
// advantage (§VI-E).
func (r *RO) scanColumnIndex(ix *colindex.Index, m ROScanReq) (ScanResp, error) {
	r.svc.serve(float64(ix.Rows()) * colIndexCost)
	if m.Aggregate != nil {
		specs := make([]colindex.AggSpec, len(m.Aggregate.Aggs))
		for i, a := range m.Aggregate.Aggs {
			specs[i] = colindex.AggSpec{Func: a.Func, Col: a.Col, Expr: a.Expr, Star: a.Star}
		}
		rows, err := ix.AggScan(m.SnapshotTS, m.Filter, m.Aggregate.GroupBy, specs)
		if m.WantBatch && err == nil {
			// Partial-aggregate output is small; columnarize for uniformity.
			if len(rows) == 0 {
				return ScanResp{}, nil
			}
			return ScanResp{Batch: vector.FromRows(rows, len(rows[0]))}, nil
		}
		return ScanResp{Rows: rows}, err
	}
	if m.WantBatch {
		// Zero-copy: the batch's vectors alias the index's column storage.
		b, err := ix.ScanBatch(m.SnapshotTS, m.Filter, m.Projection, m.Limit)
		if err != nil {
			return ScanResp{}, err
		}
		if b.NumRows() == 0 {
			return ScanResp{}, nil
		}
		return ScanResp{Batch: b}, nil
	}
	rows, err := ix.Scan(m.SnapshotTS, m.Filter, m.Projection, m.Limit)
	return ScanResp{Rows: rows}, err
}
