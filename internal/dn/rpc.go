// Package dn implements the Database Node layer of PolarDB-X: a PolarDB
// instance per datacenter consisting of one RW node (storage engine +
// HLC clock + redo log) and any number of RO replicas kept in sync by
// redo shipping (§II-C). Instances in different datacenters form a Paxos
// group replicating the redo stream (§III); the group leader's RW serves
// writes, and every instance can host RO nodes for local reads.
//
// The CN layer talks to DN instances over simnet using the request types
// in this file: transaction branches (begin/write/read/prepare/commit/
// abort per §IV's 2PC flow) and RO reads with session consistency.
package dn

import (
	"encoding/json"
	"time"

	"repro/internal/hlc"
	"repro/internal/sql"
	"repro/internal/types"
	"repro/internal/vector"
	"repro/internal/wal"
)

// Deadlined wraps any DN request with the issuing statement's absolute
// deadline — the RPC metadata leg of deadline propagation. The handler
// unwraps it at entry: an already-expired request is refused before any
// work (counted in deadline.exceeded), and prepare/commit durability
// waits are bounded by the remaining time so a timed-out statement
// releases its request goroutine instead of wedging it on a slow
// quorum. Requests arriving bare (no envelope) behave exactly as
// before — senders without a deadline pay nothing.
type Deadlined struct {
	Deadline time.Time
	Req      any
}

// WithDeadline wraps req when deadline is non-zero; a zero deadline
// returns req unchanged so the no-timeout path stays byte-identical.
func WithDeadline(req any, deadline time.Time) any {
	if deadline.IsZero() {
		return req
	}
	return Deadlined{Deadline: deadline, Req: req}
}

// WriteOp selects the mutation kind in a WriteReq.
type WriteOp uint8

// Write operations.
const (
	OpInsert WriteOp = iota
	OpUpdate
	OpDelete
)

// BeginReq opens a transaction branch. Carrying SnapshotTS implements
// HLC-SI step 2-3: the participant folds the coordinator's snapshot into
// its clock (ClockUpdate) so its later prepare_ts exceeds it.
type BeginReq struct {
	TxnID      uint64
	SnapshotTS hlc.Timestamp
}

// WriteReq applies one mutation in an open branch.
type WriteReq struct {
	TxnID uint64
	Table uint32
	Op    WriteOp
	Row   types.Row // insert/update
	PK    []byte    // delete
}

// ReadReq is a snapshot point read inside a branch.
type ReadReq struct {
	TxnID uint64
	Table uint32
	PK    []byte
}

// ReadResp returns the row, if visible.
type ReadResp struct {
	Row types.Row
	OK  bool
}

// PointGet is one key of a batched multi-get: a physical table and an
// encoded primary key.
type PointGet struct {
	Table uint32
	PK    []byte
}

// MultiGetReq reads many rows of one branch in a single round trip —
// the CN fast path for multi-point statements (sysbench's 10 point
// reads pay one RPC per touched DN instead of one per key). Carrying
// SnapshotTS lets the DN open the branch implicitly on first contact,
// so no separate BeginReq round trip is needed either.
type MultiGetReq struct {
	TxnID      uint64
	SnapshotTS hlc.Timestamp
	Gets       []PointGet
}

// MultiGetResp returns one ReadResp per requested key, in order.
type MultiGetResp struct {
	Results []ReadResp
}

// WriteItem is one mutation of a batched write.
type WriteItem struct {
	Table uint32
	Op    WriteOp
	Row   types.Row // insert/update
	PK    []byte    // delete
}

// MultiWriteReq applies many mutations of one branch in a single round
// trip (multi-row INSERT and secondary-index maintenance batching).
// Like MultiGetReq it carries SnapshotTS for implicit branch begin.
// Items are applied in order; the first failure aborts the request (the
// CN then aborts the whole transaction branch).
type MultiWriteReq struct {
	TxnID      uint64
	SnapshotTS hlc.Timestamp
	Writes     []WriteItem
}

// ROMultiGetReq is the RO-replica analogue of MultiGetReq: a batch of
// session-consistent point reads served in one round trip. The replica
// waits for MinLSN once, then answers every key at SnapshotTS.
type ROMultiGetReq struct {
	Gets       []PointGet
	SnapshotTS hlc.Timestamp
	MinLSN     wal.LSN
}

// ScanReq is a snapshot range scan inside a branch. Limit <= 0 means
// unbounded. Index, when set, scans a local secondary index.
type ScanReq struct {
	TxnID uint64
	Table uint32
	Index string
	Start []byte
	End   []byte
	Limit int
	// Filter, when non-nil, is evaluated DN-side against each row
	// (operator pushdown, §VI-B: "push specific portions of the query
	// ... to corresponding storage nodes for near-data computing").
	// Column references must be bound to schema positions.
	Filter sql.Expr
	// Projection, when non-empty, returns only these column positions,
	// shrinking CN<->DN transfer.
	Projection []int
}

// ScanResp returns matching rows in key order. When the request set
// WantBatch, Batch carries the rows column-major instead and Rows is
// nil (simnet passes Go values, so the batch crosses "the wire" without
// a pivot back to rows).
type ScanResp struct {
	Rows  []types.Row
	Batch *vector.Batch
}

// PrepareReq is 2PC phase one: validate and persist the branch. Primary
// names the transaction's primary branch instance (the first-written
// branch, holding the authoritative commit decision); it is persisted in
// the prepare record so the branch stays resolvable if the coordinator
// vanishes.
type PrepareReq struct {
	TxnID   uint64
	Primary string
}

// PrepareResp carries the participant's prepare timestamp (ClockAdvance).
type PrepareResp struct{ PrepareTS hlc.Timestamp }

// CommitReq is 2PC phase two. For single-shard transactions the CN skips
// Prepare and sends CommitReq with CommitTS zero: the DN runs the 1PC
// fast path, choosing the commit timestamp locally.
//
// CommitPoint marks the primary branch's commit: the DN logs a durable
// RecCommitPoint decision record ahead of the commit marker, making the
// transaction's outcome recoverable. The coordinator sends the
// commit-point request alone first; only after it succeeds does it fan
// out plain CommitReqs to the other branches.
type CommitReq struct {
	TxnID       uint64
	CommitTS    hlc.Timestamp
	CommitPoint bool
}

// CommitResp reports the commit timestamp used (relevant for 1PC) and
// the redo LSN of the commit record, which the CN tracks for RO session
// consistency.
type CommitResp struct {
	CommitTS hlc.Timestamp
	LSN      wal.LSN
}

// AbortReq rolls back a branch.
type AbortReq struct{ TxnID uint64 }

// ResolveTxnReq asks a transaction's primary branch instance for the
// authoritative outcome of an in-doubt transaction. If no durable commit
// point exists, the primary writes a durable presumed-abort tombstone
// (RecResolveAbort) before answering, so a late commit-point write is
// refused and every participant converges on the same verdict.
type ResolveTxnReq struct{ TxnID uint64 }

// ResolveTxnResp is the primary's verdict: commit at CommitTS, or abort.
type ResolveTxnResp struct {
	Committed bool
	CommitTS  hlc.Timestamp
}

// ROReadReq is a point read served by an RO node. MinLSN implements
// session consistency (§II-C): the RO waits until it has applied redo up
// to MinLSN before reading. SnapshotTS fixes the MVCC snapshot.
type ROReadReq struct {
	Table      uint32
	PK         []byte
	SnapshotTS hlc.Timestamp
	MinLSN     wal.LSN
}

// ROScanReq is the scan analogue of ROReadReq.
type ROScanReq struct {
	Table      uint32
	Index      string
	Start, End []byte
	Limit      int
	SnapshotTS hlc.Timestamp
	MinLSN     wal.LSN
	// Filter/Projection: DN-side pushdown, as in ScanReq.
	Filter     sql.Expr
	Projection []int
	// UseColumnIndex executes the scan against the RO's in-memory column
	// index when available (§VI-E).
	UseColumnIndex bool
	// Aggregate, when non-nil, pushes partial aggregation down to the
	// column index (§VI-E: "the first phase of aggregation is
	// offloaded").
	Aggregate *PushAgg
	// WantBatch asks for a columnar response (ScanResp.Batch): row-store
	// scans columnarize once at the source, column-index scans answer
	// zero-copy from their vectors. Used by the CN's vectorized executor.
	WantBatch bool
}

// PushAgg describes a pushed-down partial aggregation: group-by column
// positions and aggregate specs over column positions.
type PushAgg struct {
	GroupBy []int
	Aggs    []PushAggSpec
}

// PushAggSpec is one pushed aggregate. Either Col (a plain schema
// column, vectorized) or Expr (a bound scalar expression evaluated per
// qualifying row, e.g. l_extendedprice * (1 - l_discount)) supplies the
// aggregated value.
type PushAggSpec struct {
	Func string // COUNT, SUM, AVG, MIN, MAX
	Col  int    // ignored when Star or Expr is set
	Expr sql.Expr
	Star bool
}

// CreateTableReq provisions a table on the instance and its replicas.
type CreateTableReq struct {
	ID     uint32
	Tenant uint32
	Schema *types.Schema
}

// CreateIndexReq provisions a local secondary index.
type CreateIndexReq struct {
	Table uint32
	Name  string
	Cols  []string
}

// StatusReq asks for instance health (role, LSNs, RO lag).
type StatusReq struct{}

// StatusResp is the health snapshot.
type StatusResp struct {
	Name     string
	IsLeader bool
	TailLSN  wal.LSN
	DLSN     wal.LSN
	ROs      []ROStatus
}

// ROStatus is one RO replica's sync state.
type ROStatus struct {
	Name       string
	AppliedLSN wal.LSN
	Evicted    bool
}

// schemaJSON is the wire form of a schema for DDL replication.
type schemaJSON struct {
	Name       string   `json:"name"`
	Cols       []string `json:"cols"`
	Kinds      []uint8  `json:"kinds"`
	PKCols     []int    `json:"pk"`
	ImplicitPK bool     `json:"implicit_pk"`
}

// EncodeSchema serializes a schema for RecDDL payloads.
func EncodeSchema(s *types.Schema) []byte {
	j := schemaJSON{Name: s.Name, PKCols: s.PKCols, ImplicitPK: s.ImplicitPK}
	for _, c := range s.Columns {
		j.Cols = append(j.Cols, c.Name)
		j.Kinds = append(j.Kinds, uint8(c.Kind))
	}
	b, err := json.Marshal(j)
	if err != nil {
		panic("dn: schema marshal: " + err.Error()) // schemas are always marshalable
	}
	return b
}

// DecodeSchema parses a RecDDL schema payload.
func DecodeSchema(b []byte) (*types.Schema, error) {
	var j schemaJSON
	if err := json.Unmarshal(b, &j); err != nil {
		return nil, err
	}
	s := &types.Schema{Name: j.Name, PKCols: j.PKCols, ImplicitPK: j.ImplicitPK}
	for i, name := range j.Cols {
		s.Columns = append(s.Columns, types.Column{Name: name, Kind: types.Kind(j.Kinds[i])})
	}
	return s, nil
}
