package dn

// In-doubt transaction resolution (paper §IV).
//
// A coordinator (CN) is stateless and may vanish at any point of the 2PC
// flow. The recovery rule reproduced here is the commit-point protocol:
// the commit decision is durable exactly when a RecCommitPoint record for
// the transaction is majority-replicated on its *primary branch* (the
// first-written branch). A participant stuck in PREPARED consults the
// primary with ResolveTxn:
//
//   - commit point found        -> commit at the recorded timestamp
//   - tombstone found           -> abort
//   - neither (presumed abort)  -> the primary durably logs a
//     RecResolveAbort tombstone, then answers abort; a late commit-point
//     write is refused by the tombstone, so participants can never
//     diverge.
//
// Two sweeps drive resolution: each instance's flusher loop resolves its
// own PREPARED branches past Config.InDoubtAfter, and the cluster-level
// recovery loop (internal/core) re-runs the sweep with leader-aware
// routing after failovers. Branches inherited through Paxos failover
// (present only in the applier's replayed state, with no live engine
// transaction) are resolved by proposing the verdict as a redo record and
// replaying it locally.

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/hlc"
	"repro/internal/storage"
	"repro/internal/wal"
)

// errResolveInProgress tells a resolver the outcome is being decided
// right now (a commit point mid-durability-wait, or a concurrent
// tombstone write); the caller retries on its next sweep tick.
var errResolveInProgress = errors.New("dn: transaction resolution in progress; retry")

// staleActiveFactor scales InDoubtAfter into the expiry age for ACTIVE
// (never-prepared) branches whose coordinator vanished pre-prepare.
// Generous, because aborting a live interactive transaction is worse
// than briefly leaking a dead one (presumed abort keeps it safe either
// way: nothing ACTIVE can have committed anywhere).
const staleActiveFactor = 25

// resolveCallTimeout bounds each ResolveTxn RPC so a partitioned primary
// stalls a sweep tick, not forever.
const resolveCallTimeout = 150 * time.Millisecond

// finishedCap bounds the settled-outcome and decision maps.
const finishedCap = 1 << 16

// decide claims the commit/abort decision slot for a transaction whose
// primary branch is this instance. The first claimant wins; later calls
// see the existing decision (won=false).
func (i *Instance) decide(globalID uint64, commit bool, ts hlc.Timestamp) (decision, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if d, ok := i.decisions[globalID]; ok {
		return *d, false
	}
	i.decisions[globalID] = &decision{commit: commit, ts: ts}
	i.decFIFO = append(i.decFIFO, globalID)
	for len(i.decFIFO) > finishedCap {
		delete(i.decisions, i.decFIFO[0])
		i.decFIFO = i.decFIFO[1:]
	}
	return decision{commit: commit, ts: ts}, true
}

func (i *Instance) markDecisionDurable(globalID uint64) {
	i.mu.Lock()
	if d, ok := i.decisions[globalID]; ok {
		d.durable = true
	}
	i.mu.Unlock()
}

func (i *Instance) dropDecision(globalID uint64) {
	i.mu.Lock()
	delete(i.decisions, globalID)
	i.mu.Unlock()
}

// noteFinished records a settled branch outcome for idempotent retries.
func (i *Instance) noteFinished(globalID uint64, f finishedTxn) {
	i.mu.Lock()
	if _, ok := i.finished[globalID]; !ok {
		i.finished[globalID] = f
		i.finFIFO = append(i.finFIFO, globalID)
		for len(i.finFIFO) > finishedCap {
			delete(i.finished, i.finFIFO[0])
			i.finFIFO = i.finFIFO[1:]
		}
	}
	i.mu.Unlock()
}

func (i *Instance) finishedOutcome(globalID uint64) (finishedTxn, bool) {
	i.mu.Lock()
	defer i.mu.Unlock()
	f, ok := i.finished[globalID]
	return f, ok
}

// commitPointFor reports the durable commit decision for a transaction,
// from this leader's own log writes or from replayed (inherited) state.
func (i *Instance) commitPointFor(globalID uint64) (hlc.Timestamp, bool) {
	i.mu.Lock()
	if d, ok := i.decisions[globalID]; ok && d.commit && d.durable {
		ts := d.ts
		i.mu.Unlock()
		return ts, true
	}
	i.mu.Unlock()
	return i.applier.CommitPoint(globalID)
}

// abortVerdict reports a durable presumed-abort tombstone.
func (i *Instance) abortVerdict(globalID uint64) bool {
	i.mu.Lock()
	if d, ok := i.decisions[globalID]; ok && !d.commit && d.durable {
		i.mu.Unlock()
		return true
	}
	i.mu.Unlock()
	return i.applier.ResolvedAbort(globalID)
}

// handleResolve serves ResolveTxnReq: the primary branch's authoritative
// verdict. Writing the presumed-abort tombstone requires leadership of
// the primary's group; answering from an already-durable verdict does
// not (replicas replay commit points and tombstones too).
func (i *Instance) handleResolve(m ResolveTxnReq) (ResolveTxnResp, error) {
	if ts, ok := i.commitPointFor(m.TxnID); ok {
		return ResolveTxnResp{Committed: true, CommitTS: ts}, nil
	}
	if i.abortVerdict(m.TxnID) {
		return ResolveTxnResp{}, nil
	}
	i.mu.Lock()
	_, inFlight := i.decisions[m.TxnID]
	i.mu.Unlock()
	if inFlight {
		// A commit point (or another resolver's tombstone) is being made
		// durable right now; don't guess.
		return ResolveTxnResp{}, errResolveInProgress
	}
	if !i.IsLeader() {
		return ResolveTxnResp{}, fmt.Errorf("%w: %s cannot write a resolution tombstone", ErrNotLeader, i.cfg.Name)
	}
	if !i.node.LeaderCaughtUp() {
		// Freshly promoted: the commit point may sit in the un-replayed
		// backlog. Answering presumed-abort from incomplete state would
		// break atomicity; make the resolver retry instead.
		return ResolveTxnResp{}, errResolveInProgress
	}
	if _, won := i.decide(m.TxnID, false, 0); !won {
		return ResolveTxnResp{}, errResolveInProgress
	}
	rec := wal.Record{Type: wal.RecResolveAbort, TxnID: m.TxnID}
	end, err := i.node.Propose(rec)
	if err != nil {
		i.dropDecision(m.TxnID)
		return ResolveTxnResp{}, err
	}
	if err := i.node.AwaitDurable(end); err != nil {
		i.dropDecision(m.TxnID)
		return ResolveTxnResp{}, err
	}
	i.markDecisionDurable(m.TxnID)
	// Fold the tombstone into replayed state (a leader applies its own
	// proposals itself) and abort this instance's own branch of the
	// transaction, if any — the primary is usually also a participant.
	_ = i.applier.Apply([]wal.Record{rec})
	i.abortLocalBranch(m.TxnID)
	i.resolvedAborts.Add(1)
	return ResolveTxnResp{}, nil
}

// abortLocalBranch aborts this instance's live branch of globalID, if one
// exists and is still undecided locally.
func (i *Instance) abortLocalBranch(globalID uint64) {
	i.mu.Lock()
	e, ok := i.txns[globalID]
	i.mu.Unlock()
	if !ok {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.txn.Status()
	if st == storage.TxnCommitted || st == storage.TxnAborted {
		return
	}
	proposedAny := e.proposed > 0
	if err := i.eng.Abort(e.txn); err != nil {
		return
	}
	if proposedAny {
		// Followers buffered this branch's redo: ship an abort marker.
		_, _ = i.node.Propose(wal.Record{Type: wal.RecAbort, TxnID: e.txn.ID})
	}
	i.mu.Lock()
	delete(i.txns, globalID)
	i.mu.Unlock()
	i.noteFinished(globalID, finishedTxn{})
}

// askPrimary fetches the authoritative verdict for globalID from the
// (routed) primary branch instance.
func (i *Instance) askPrimary(globalID uint64, primary string) (ResolveTxnResp, error) {
	if primary == i.cfg.Name {
		return i.handleResolve(ResolveTxnReq{TxnID: globalID})
	}
	reply, err := i.cfg.Net.CallTimeout(i.cfg.Name, primary,
		ResolveTxnReq{TxnID: globalID}, resolveCallTimeout)
	if err != nil {
		return ResolveTxnResp{}, err
	}
	return reply.(ResolveTxnResp), nil
}

// ResolveInDoubt sweeps this instance's in-doubt transaction branches —
// live branches stuck PREPARED past InDoubtAfter, ACTIVE branches whose
// coordinator never came back, and prepared branches inherited through
// Paxos failover — and drives each to commit or abort via its primary
// branch. route maps a recorded primary instance name to that group's
// current leader (nil = ask the recorded name as-is; the cluster layer
// passes real routing after failovers). Returns branches resolved.
func (i *Instance) ResolveInDoubt(route func(string) string) int {
	if route == nil {
		route = func(s string) string { return s }
	}
	now := i.timeSrc.Now()
	resolved := 0

	// Pass 1: branches this instance coordinates live engine state for.
	type cand struct {
		id uint64
		e  *txnEntry
	}
	i.mu.Lock()
	cands := make([]cand, 0, len(i.txns))
	for id, e := range i.txns {
		cands = append(cands, cand{id, e})
	}
	i.mu.Unlock()
	for _, c := range cands {
		c.e.mu.Lock()
		st := c.e.txn.Status()
		primary := c.e.primary
		inDoubt := st == storage.TxnPrepared && !c.e.preparedAt.IsZero() &&
			now.Sub(c.e.preparedAt) > i.cfg.InDoubtAfter
		stale := st == storage.TxnActive && !c.e.startedAt.IsZero() &&
			now.Sub(c.e.startedAt) > staleActiveFactor*i.cfg.InDoubtAfter
		c.e.mu.Unlock()
		switch {
		case inDoubt && primary != "":
			if i.resolveLocalBranch(c.id, c.e, route(primary)) {
				resolved++
			}
		case stale:
			// Never prepared: presumed abort applies unilaterally.
			i.abortLocalBranch(c.id)
			i.resolvedAborts.Add(1)
			resolved++
		}
	}

	// Pass 2 (leader only): prepared branches inherited through failover.
	// These live in replayed applier state with no engine transaction;
	// the verdict is applied by proposing it as a redo record. Resolution
	// waits InDoubtAfter from first observation — the origin's wall-clock
	// prepare time is unknowable here.
	if i.IsLeader() {
		live := make(map[uint64]bool)
		for _, b := range i.applier.PreparedBranches() {
			live[b.TxnID] = true
			i.mu.Lock()
			first, seen := i.inDoubtSeen[b.TxnID]
			if !seen {
				i.inDoubtSeen[b.TxnID] = now
			}
			i.mu.Unlock()
			if !seen || now.Sub(first) <= i.cfg.InDoubtAfter {
				continue
			}
			if i.resolveInherited(b, route) {
				resolved++
			}
		}
		i.mu.Lock()
		for id := range i.inDoubtSeen {
			if !live[id] {
				delete(i.inDoubtSeen, id)
			}
		}
		i.mu.Unlock()
	}
	return resolved
}

// resolveLocalBranch drives one live PREPARED branch to its verdict.
func (i *Instance) resolveLocalBranch(globalID uint64, e *txnEntry, primary string) bool {
	resp, err := i.askPrimary(globalID, primary)
	if err != nil {
		return false // unreachable or undecided; retry next sweep
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.txn.Status() != storage.TxnPrepared {
		return false // a late coordinator RPC settled it first
	}
	if resp.Committed {
		i.clock.Update(resp.CommitTS)
		if err := i.eng.Commit(e.txn, resp.CommitTS); err != nil {
			return false
		}
		if err := i.proposeTail(e, true); err != nil {
			return false
		}
		i.markDirtyPages(e.txn)
		lsn := i.node.DLSN()
		i.mu.Lock()
		delete(i.txns, globalID)
		i.mu.Unlock()
		i.noteFinished(globalID, finishedTxn{committed: true, commitTS: resp.CommitTS, lsn: lsn})
		i.resolvedCommits.Add(1)
		return true
	}
	proposedAny := e.proposed > 0
	if err := i.eng.Abort(e.txn); err != nil {
		return false
	}
	if proposedAny {
		_, _ = i.node.Propose(wal.Record{Type: wal.RecAbort, TxnID: e.txn.ID})
	}
	i.mu.Lock()
	delete(i.txns, globalID)
	i.mu.Unlock()
	i.noteFinished(globalID, finishedTxn{})
	i.resolvedAborts.Add(1)
	return true
}

// resolveInherited drives one failover-inherited prepared branch to its
// verdict by proposing the outcome as a redo record and replaying it.
func (i *Instance) resolveInherited(b storage.PreparedBranch, route func(string) string) bool {
	if b.GlobalID == 0 || b.Primary == "" {
		return false // pre-recovery prepare format: not resolvable
	}
	resp, err := i.askPrimary(b.GlobalID, route(b.Primary))
	if err != nil {
		return false
	}
	var rec wal.Record
	if resp.Committed {
		i.clock.Update(resp.CommitTS)
		rec = wal.Record{Type: wal.RecCommit, TxnID: b.TxnID,
			Payload: storage.EncodeTS(resp.CommitTS)}
	} else {
		rec = wal.Record{Type: wal.RecAbort, TxnID: b.TxnID}
	}
	end, err := i.node.Propose(rec)
	if err != nil {
		return false
	}
	if err := i.node.AwaitDurable(end); err != nil {
		return false
	}
	// Leaders apply their own proposals (OnApply covers only the
	// follower-era backlog).
	if err := i.applier.Apply([]wal.Record{rec}); err != nil {
		return false
	}
	if resp.Committed {
		i.resolvedCommits.Add(1)
	} else {
		i.resolvedAborts.Add(1)
	}
	return true
}

// InDoubtBranches counts branches with an undecided 2PC outcome on this
// instance: live PREPARED branches plus prepared branches inherited in
// replayed state. Recovery should drive this to zero.
func (i *Instance) InDoubtBranches() int {
	i.mu.Lock()
	n := 0
	for _, e := range i.txns {
		if e.txn.Status() == storage.TxnPrepared {
			n++
		}
	}
	i.mu.Unlock()
	return n + len(i.applier.PreparedBranches())
}

// ResolutionStats reports how many branches recovery committed/aborted.
func (i *Instance) ResolutionStats() (commits, aborts uint64) {
	return i.resolvedCommits.Load(), i.resolvedAborts.Load()
}
