package dn

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/hlc"
	"repro/internal/paxos"
	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/wal"
)

func usersSchema() *types.Schema {
	return types.NewSchema("users", []types.Column{
		{Name: "id", Kind: types.KindInt},
		{Name: "name", Kind: types.KindString},
		{Name: "balance", Kind: types.KindInt},
	}, []int{0})
}

func userRow(id int64, name string, bal int64) types.Row {
	return types.Row{types.Int(id), types.Str(name), types.Int(bal)}
}

func pkOf(id int64) []byte { return types.EncodeKey(nil, types.Int(id)) }

// client is a minimal CN stand-in driving DN RPCs.
type client struct {
	net  *simnet.Network
	name string
}

func newClient(t *testing.T, net *simnet.Network, name string, dc simnet.DC) *client {
	t.Helper()
	net.Register(name, dc, func(string, any) (any, error) { return nil, nil })
	return &client{net: net, name: name}
}

func (c *client) call(t *testing.T, to string, msg any) any {
	t.Helper()
	reply, err := c.net.Call(c.name, to, msg)
	if err != nil {
		t.Fatalf("call %T to %s: %v", msg, to, err)
	}
	return reply
}

// singleInstance builds a 1-member DN group.
func singleInstance(t *testing.T) (*Instance, *client, *simnet.Network) {
	t.Helper()
	net := simnet.New(simnet.ZeroTopology())
	inst, err := NewInstance(Config{
		Name: "dn1", DC: simnet.DC1, Net: net,
		Group:   "g1",
		Members: []paxos.Member{{Name: "dn1", DC: simnet.DC1}},

		Bootstrap: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(inst.Stop)
	cl := newClient(t, net, "cn1", simnet.DC1)
	return inst, cl, net
}

var txnSeq uint64 = 1000

func nextTxnID() uint64 { txnSeq++; return txnSeq }

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

func TestSingleInstanceWriteCommitRead(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	if err := inst.CreateTable(1, 0, usersSchema()); err != nil {
		t.Fatal(err)
	}
	clock := hlc.NewClock(nil)
	txnID := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: txnID, SnapshotTS: clock.Now()})
	cl.call(t, "dn1", WriteReq{TxnID: txnID, Table: 1, Op: OpInsert, Row: userRow(1, "alice", 100)})
	resp := cl.call(t, "dn1", CommitReq{TxnID: txnID}).(CommitResp)
	if resp.CommitTS.IsZero() {
		t.Fatal("1PC commit did not choose a timestamp")
	}

	rID := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: rID, SnapshotTS: inst.Clock().Now()})
	rr := cl.call(t, "dn1", ReadReq{TxnID: rID, Table: 1, PK: pkOf(1)}).(ReadResp)
	if !rr.OK || rr.Row[1].AsString() != "alice" {
		t.Fatalf("read = %+v", rr)
	}
	cl.call(t, "dn1", AbortReq{TxnID: rID})
}

func TestTwoPhaseCommitFlow(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	clock := hlc.NewClock(nil)
	snapshot := clock.Now()
	txnID := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: txnID, SnapshotTS: snapshot})
	cl.call(t, "dn1", WriteReq{TxnID: txnID, Table: 1, Op: OpInsert, Row: userRow(1, "a", 1)})
	prep := cl.call(t, "dn1", PrepareReq{TxnID: txnID}).(PrepareResp)
	if prep.PrepareTS <= snapshot {
		t.Fatalf("prepare_ts %v <= snapshot %v: HLC update rule broken", prep.PrepareTS, snapshot)
	}
	commitTS := prep.PrepareTS // coordinator takes the max (single participant)
	cl.call(t, "dn1", CommitReq{TxnID: txnID, CommitTS: commitTS})

	rID := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: rID, SnapshotTS: inst.Clock().Now()})
	rr := cl.call(t, "dn1", ReadReq{TxnID: rID, Table: 1, PK: pkOf(1)}).(ReadResp)
	if !rr.OK {
		t.Fatal("2PC-committed row invisible")
	}
	cl.call(t, "dn1", AbortReq{TxnID: rID})
}

func TestAbortDiscardsBranch(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	clock := hlc.NewClock(nil)
	txnID := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: txnID, SnapshotTS: clock.Now()})
	cl.call(t, "dn1", WriteReq{TxnID: txnID, Table: 1, Op: OpInsert, Row: userRow(1, "a", 1)})
	cl.call(t, "dn1", AbortReq{TxnID: txnID})

	rID := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: rID, SnapshotTS: inst.Clock().Now()})
	rr := cl.call(t, "dn1", ReadReq{TxnID: rID, Table: 1, PK: pkOf(1)}).(ReadResp)
	if rr.OK {
		t.Fatal("aborted write visible")
	}
	// Branch is gone.
	if _, err := cl.net.Call(cl.name, "dn1", WriteReq{TxnID: txnID, Table: 1, Op: OpInsert, Row: userRow(2, "b", 1)}); err == nil {
		t.Fatal("write on aborted branch succeeded")
	}
}

func TestUnknownBranchErrors(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	_, err := cl.net.Call(cl.name, "dn1", ReadReq{TxnID: 999999, Table: 1, PK: pkOf(1)})
	if err == nil || !strings.Contains(err.Error(), "unknown transaction") {
		t.Fatalf("err = %v", err)
	}
}

func TestScanThroughRPC(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	clock := hlc.NewClock(nil)
	w := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
	for i := int64(0); i < 20; i++ {
		cl.call(t, "dn1", WriteReq{TxnID: w, Table: 1, Op: OpInsert, Row: userRow(i, fmt.Sprintf("u%d", i), i)})
	}
	cl.call(t, "dn1", CommitReq{TxnID: w})

	r := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: r, SnapshotTS: inst.Clock().Now()})
	sr := cl.call(t, "dn1", ScanReq{TxnID: r, Table: 1,
		Start: pkOf(5), End: pkOf(15), Limit: 5}).(ScanResp)
	if len(sr.Rows) != 5 || sr.Rows[0][0].AsInt() != 5 {
		t.Fatalf("scan = %d rows, first %v", len(sr.Rows), sr.Rows[0])
	}
	cl.call(t, "dn1", AbortReq{TxnID: r})
}

func TestROServesReadsWithSessionConsistency(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	ro, err := inst.AddRO("dn1-ro1")
	if err != nil {
		t.Fatal(err)
	}
	clock := hlc.NewClock(nil)
	w := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
	cl.call(t, "dn1", WriteReq{TxnID: w, Table: 1, Op: OpInsert, Row: userRow(1, "alice", 100)})
	resp := cl.call(t, "dn1", CommitReq{TxnID: w}).(CommitResp)

	// Session-consistent read: MinLSN = the commit's LSN forces the RO to
	// wait until it has applied our write.
	rr := cl.call(t, "dn1-ro1", ROReadReq{
		Table: 1, PK: pkOf(1), SnapshotTS: inst.Clock().Now(), MinLSN: resp.LSN,
	}).(ReadResp)
	if !rr.OK || rr.Row[2].AsInt() != 100 {
		t.Fatalf("RO read = %+v", rr)
	}
	if ro.AppliedLSN() < resp.LSN {
		t.Fatal("RO applied LSN below the write it served")
	}
}

func TestROScan(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	inst.AddRO("dn1-ro1")
	clock := hlc.NewClock(nil)
	w := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
	for i := int64(0); i < 10; i++ {
		cl.call(t, "dn1", WriteReq{TxnID: w, Table: 1, Op: OpInsert, Row: userRow(i, "u", i)})
	}
	resp := cl.call(t, "dn1", CommitReq{TxnID: w}).(CommitResp)

	sr := cl.call(t, "dn1-ro1", ROScanReq{
		Table: 1, SnapshotTS: inst.Clock().Now(), MinLSN: resp.LSN,
	}).(ScanResp)
	if len(sr.Rows) != 10 {
		t.Fatalf("RO scan = %d rows", len(sr.Rows))
	}
}

func TestROAddedAfterDataStillCatchesUp(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	clock := hlc.NewClock(nil)
	w := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
	cl.call(t, "dn1", WriteReq{TxnID: w, Table: 1, Op: OpInsert, Row: userRow(1, "early", 1)})
	resp := cl.call(t, "dn1", CommitReq{TxnID: w}).(CommitResp)

	// RO added after the write: it must replay from the log base.
	inst.AddRO("dn1-ro-late")
	rr := cl.call(t, "dn1-ro-late", ROReadReq{
		Table: 1, PK: pkOf(1), SnapshotTS: inst.Clock().Now(), MinLSN: resp.LSN,
	}).(ReadResp)
	if !rr.OK || rr.Row[1].AsString() != "early" {
		t.Fatalf("late RO read = %+v", rr)
	}
}

func TestLaggingROEviction(t *testing.T) {
	net := simnet.New(simnet.ZeroTopology())
	inst, err := NewInstance(Config{
		Name: "dn1", DC: simnet.DC1, Net: net,
		Group: "g1", Members: []paxos.Member{{Name: "dn1", DC: simnet.DC1}},
		Bootstrap:  true,
		ROLagLimit: 512, // tiny limit so the test trips it fast
	})
	if err != nil {
		t.Fatal(err)
	}
	defer inst.Stop()
	cl := newClient(t, net, "cn1", simnet.DC1)
	inst.CreateTable(1, 0, usersSchema())
	ro, _ := inst.AddRO("dn1-ro1")
	ro.SetApplyDelay(200 * time.Millisecond) // severe lag

	clock := hlc.NewClock(nil)
	for i := int64(0); i < 50; i++ {
		w := nextTxnID()
		cl.call(t, "dn1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
		cl.call(t, "dn1", WriteReq{TxnID: w, Table: 1, Op: OpInsert,
			Row: userRow(i, strings.Repeat("x", 100), i)})
		cl.call(t, "dn1", CommitReq{TxnID: w})
	}
	waitFor(t, 5*time.Second, "RO eviction", func() bool {
		return len(inst.EvictedROs()) == 1
	})
}

func TestMultiDCReplicationAndFollowerRO(t *testing.T) {
	net := simnet.New(simnet.ZeroTopology())
	members := []paxos.Member{
		{Name: "dn-dc1", DC: simnet.DC1},
		{Name: "dn-dc2", DC: simnet.DC2},
		{Name: "dn-dc3", DC: simnet.DC3},
	}
	var insts []*Instance
	for idx, m := range members {
		inst, err := NewInstance(Config{
			Name: m.Name, DC: m.DC, Net: net,
			Group: "g1", Members: members,
			Bootstrap: idx == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer inst.Stop()
		insts = append(insts, inst)
	}
	leader := insts[0]
	cl := newClient(t, net, "cn1", simnet.DC1)
	if err := leader.CreateTable(1, 0, usersSchema()); err != nil {
		t.Fatal(err)
	}
	// DDL reaches followers.
	waitFor(t, 2*time.Second, "DDL replication", func() bool {
		_, err2 := insts[1].Engine().TableByName("users")
		_, err3 := insts[2].Engine().TableByName("users")
		return err2 == nil && err3 == nil
	})

	// Follower RO created before data.
	insts[1].AddRO("dn-dc2-ro1")

	clock := hlc.NewClock(nil)
	w := nextTxnID()
	cl.call(t, "dn-dc1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
	cl.call(t, "dn-dc1", WriteReq{TxnID: w, Table: 1, Op: OpInsert, Row: userRow(1, "geo", 42)})
	resp := cl.call(t, "dn-dc1", CommitReq{TxnID: w}).(CommitResp)

	// Follower engines converge.
	for _, f := range insts[1:] {
		f := f
		waitFor(t, 2*time.Second, "follower apply on "+f.Name(), func() bool {
			row, ok, _ := f.Engine().GetAt(1, pkOf(1), f.Clock().Now())
			return ok && row[2].AsInt() == 42
		})
	}
	// The follower's RO serves the row (reads in remote DCs without
	// crossing DC boundaries — the §II-A locality claim).
	rr := cl.call(t, "dn-dc2-ro1", ROReadReq{
		Table: 1, PK: pkOf(1), SnapshotTS: leader.Clock().Now(), MinLSN: resp.LSN,
	}).(ReadResp)
	if !rr.OK || rr.Row[1].AsString() != "geo" {
		t.Fatalf("follower RO read = %+v", rr)
	}
	// Writes rejected on followers.
	if err := insts[1].handleBegin(BeginReq{TxnID: nextTxnID(), SnapshotTS: clock.Now()}); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("follower begin err = %v", err)
	}
}

func TestWriteConflictSurfacesThroughRPC(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	clock := hlc.NewClock(nil)
	seed := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: seed, SnapshotTS: clock.Now()})
	cl.call(t, "dn1", WriteReq{TxnID: seed, Table: 1, Op: OpInsert, Row: userRow(1, "a", 1)})
	cl.call(t, "dn1", CommitReq{TxnID: seed})

	t1 := nextTxnID()
	t2 := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: t1, SnapshotTS: inst.Clock().Now()})
	cl.call(t, "dn1", BeginReq{TxnID: t2, SnapshotTS: inst.Clock().Now()})
	cl.call(t, "dn1", WriteReq{TxnID: t1, Table: 1, Op: OpUpdate, Row: userRow(1, "a", 2)})
	_, err := cl.net.Call(cl.name, "dn1", WriteReq{TxnID: t2, Table: 1, Op: OpUpdate, Row: userRow(1, "a", 3)})
	if err == nil || !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("err = %v", err)
	}
	cl.call(t, "dn1", CommitReq{TxnID: t1})
	cl.call(t, "dn1", AbortReq{TxnID: t2})
}

func TestStatusSurface(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	inst.AddRO("dn1-ro1")
	st := cl.call(t, "dn1", StatusReq{}).(StatusResp)
	if !st.IsLeader || st.Name != "dn1" || len(st.ROs) != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestCreateIndexReplicatedToROs(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	inst.AddRO("dn1-ro1")
	if err := inst.CreateIndex(1, "by_name", []string{"name"}); err != nil {
		t.Fatal(err)
	}
	clock := hlc.NewClock(nil)
	w := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
	cl.call(t, "dn1", WriteReq{TxnID: w, Table: 1, Op: OpInsert, Row: userRow(1, "zoe", 5)})
	resp := cl.call(t, "dn1", CommitReq{TxnID: w}).(CommitResp)
	sr := cl.call(t, "dn1-ro1", ROScanReq{
		Table: 1, Index: "by_name", SnapshotTS: inst.Clock().Now(), MinLSN: resp.LSN,
	}).(ScanResp)
	if len(sr.Rows) != 1 || sr.Rows[0][1].AsString() != "zoe" {
		t.Fatalf("RO index scan = %+v", sr.Rows)
	}
}

func TestSchemaCodecRoundTrip(t *testing.T) {
	s := usersSchema()
	got, err := DecodeSchema(EncodeSchema(s))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || len(got.Columns) != len(s.Columns) ||
		got.PKCols[0] != s.PKCols[0] || got.ImplicitPK != s.ImplicitPK {
		t.Fatalf("schema round trip: %+v", got)
	}
	implicit := types.NewSchema("t", []types.Column{{Name: "a", Kind: types.KindInt}}, nil)
	got2, _ := DecodeSchema(EncodeSchema(implicit))
	if !got2.ImplicitPK || got2.ColIndex(types.ImplicitPKName) < 0 {
		t.Fatal("implicit PK lost in codec")
	}
	if _, err := DecodeSchema([]byte("not json")); err == nil {
		t.Fatal("bad schema payload should error")
	}
}

func TestMinROAckBoundsLogPurge(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	inst.AddRO("dn1-ro1")
	clock := hlc.NewClock(nil)
	var lastLSN wal.LSN
	for i := int64(0); i < 5; i++ {
		w := nextTxnID()
		cl.call(t, "dn1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
		cl.call(t, "dn1", WriteReq{TxnID: w, Table: 1, Op: OpInsert, Row: userRow(i, "x", i)})
		lastLSN = cl.call(t, "dn1", CommitReq{TxnID: w}).(CommitResp).LSN
	}
	waitFor(t, 2*time.Second, "RO ack convergence", func() bool {
		return inst.MinROAck() >= lastLSN
	})
}

func TestROColumnIndexScanAndAggPushdown(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	ro, err := inst.AddRO("dn1-ro1")
	if err != nil {
		t.Fatal(err)
	}
	if err := ro.EnableColumnIndex([]uint32{1}, 1); err != nil {
		t.Fatal(err)
	}
	clock := hlc.NewClock(nil)
	var last wal.LSN
	for i := int64(0); i < 20; i++ {
		w := nextTxnID()
		cl.call(t, "dn1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
		cl.call(t, "dn1", WriteReq{TxnID: w, Table: 1, Op: OpInsert, Row: userRow(i, "u", i*10)})
		last = cl.call(t, "dn1", CommitReq{TxnID: w}).(CommitResp).LSN
	}
	// Plain column-index scan.
	sr := cl.call(t, "dn1-ro1", ROScanReq{
		Table: 1, SnapshotTS: inst.Clock().Now(), MinLSN: last, UseColumnIndex: true,
	}).(ScanResp)
	if len(sr.Rows) != 20 {
		t.Fatalf("colindex scan = %d rows", len(sr.Rows))
	}
	// Pushed-down aggregation: SUM(balance), COUNT(*).
	ar := cl.call(t, "dn1-ro1", ROScanReq{
		Table: 1, SnapshotTS: inst.Clock().Now(), MinLSN: last, UseColumnIndex: true,
		Aggregate: &PushAgg{Aggs: []PushAggSpec{
			{Func: "SUM", Col: 2}, {Func: "COUNT", Star: true},
		}},
	}).(ScanResp)
	if len(ar.Rows) != 1 {
		t.Fatalf("agg rows = %d", len(ar.Rows))
	}
	if ar.Rows[0][0].AsInt() != 1900 || ar.Rows[0][1].AsInt() != 20 {
		t.Fatalf("pushed agg = %v", ar.Rows[0])
	}
}

func TestROColumnIndexBackfillExistingData(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	clock := hlc.NewClock(nil)
	w := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
	cl.call(t, "dn1", WriteReq{TxnID: w, Table: 1, Op: OpInsert, Row: userRow(1, "pre", 7)})
	last := cl.call(t, "dn1", CommitReq{TxnID: w}).(CommitResp).LSN

	ro, _ := inst.AddRO("dn1-ro1")
	// Wait for the replica to apply, then enable with backfill.
	cl.call(t, "dn1-ro1", ROReadReq{Table: 1, PK: pkOf(1),
		SnapshotTS: inst.Clock().Now(), MinLSN: last})
	if err := ro.EnableColumnIndex([]uint32{1}, 1); err != nil {
		t.Fatal(err)
	}
	sr := cl.call(t, "dn1-ro1", ROScanReq{
		Table: 1, SnapshotTS: inst.Clock().Now(), MinLSN: last, UseColumnIndex: true,
	}).(ScanResp)
	if len(sr.Rows) != 1 || sr.Rows[0][1].AsString() != "pre" {
		t.Fatalf("backfilled scan = %v", sr.Rows)
	}
}

func TestRedoPurgeAfterConsumersCatchUp(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	inst.AddRO("dn1-ro1")
	clock := hlc.NewClock(nil)
	var last wal.LSN
	for i := int64(0); i < 30; i++ {
		w := nextTxnID()
		cl.call(t, "dn1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
		cl.call(t, "dn1", WriteReq{TxnID: w, Table: 1, Op: OpInsert,
			Row: userRow(i, strings.Repeat("p", 64), i)})
		last = cl.call(t, "dn1", CommitReq{TxnID: w}).(CommitResp).LSN
	}
	// Once the RO has applied everything and pages are flushed, the
	// flusher loop purges the redo prefix (§II-C step 8).
	waitFor(t, 5*time.Second, "redo purge", func() bool {
		return inst.Paxos().Log().BaseLSN() >= last/2 // most of the log gone
	})
	// The system still works after purging: reads, writes, RO reads.
	w := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
	cl.call(t, "dn1", WriteReq{TxnID: w, Table: 1, Op: OpInsert, Row: userRow(100, "post", 1)})
	resp := cl.call(t, "dn1", CommitReq{TxnID: w}).(CommitResp)
	rr := cl.call(t, "dn1-ro1", ROReadReq{Table: 1, PK: pkOf(100),
		SnapshotTS: inst.Clock().Now(), MinLSN: resp.LSN}).(ReadResp)
	if !rr.OK || rr.Row[1].AsString() != "post" {
		t.Fatalf("post-purge RO read = %+v", rr)
	}
}

func TestBackgroundVacuumTrimsVersions(t *testing.T) {
	inst, cl, _ := singleInstance(t)
	inst.CreateTable(1, 0, usersSchema())
	clock := hlc.NewClock(nil)
	// Overwrite one row many times; background vacuum (with no open
	// snapshots pinning history) reclaims the chain.
	w := nextTxnID()
	cl.call(t, "dn1", BeginReq{TxnID: w, SnapshotTS: clock.Now()})
	cl.call(t, "dn1", WriteReq{TxnID: w, Table: 1, Op: OpInsert, Row: userRow(1, "v", 0)})
	cl.call(t, "dn1", CommitReq{TxnID: w})
	for i := int64(1); i <= 50; i++ {
		u := nextTxnID()
		cl.call(t, "dn1", BeginReq{TxnID: u, SnapshotTS: inst.Clock().Now()})
		cl.call(t, "dn1", WriteReq{TxnID: u, Table: 1, Op: OpUpdate, Row: userRow(1, "v", i)})
		cl.call(t, "dn1", CommitReq{TxnID: u})
	}
	// The row remains readable at its newest version after vacuuming.
	waitFor(t, 3*time.Second, "vacuum cycle", func() bool {
		row, ok, _ := inst.Engine().GetAt(1, pkOf(1), inst.Clock().Now())
		return ok && row[2].AsInt() == 50
	})
}

// TestRONeverServesUndurableData: RO replicas only consume redo below
// the group DLSN (§III): data proposed by a leader that cannot reach a
// majority must never become visible on an RO, because a re-election
// could truncate it.
func TestRONeverServesUndurableData(t *testing.T) {
	net := simnet.New(simnet.ZeroTopology())
	members := []paxos.Member{
		{Name: "dn-a", DC: simnet.DC1},
		{Name: "dn-b", DC: simnet.DC2},
		{Name: "dn-c", DC: simnet.DC3},
	}
	var insts []*Instance
	for i, m := range members {
		inst, err := NewInstance(Config{
			Name: m.Name, DC: m.DC, Net: net,
			Group: "gu", Members: members, Bootstrap: i == 0,
			ElectionTimeout: 10 * time.Second, // keep the leader stable
		})
		if err != nil {
			t.Fatal(err)
		}
		defer inst.Stop()
		insts = append(insts, inst)
	}
	leader := insts[0]
	if err := leader.CreateTable(1, 0, usersSchema()); err != nil {
		t.Fatal(err)
	}
	ro, err := leader.AddRO("dn-a-ro")
	if err != nil {
		t.Fatal(err)
	}
	cl := newClient(t, net, "cnu", simnet.DC1)

	// A durable write reaches the RO.
	w := nextTxnID()
	cl.call(t, "dn-a", BeginReq{TxnID: w, SnapshotTS: hlc.NewClock(nil).Now()})
	cl.call(t, "dn-a", WriteReq{TxnID: w, Table: 1, Op: OpInsert, Row: userRow(1, "durable", 1)})
	resp := cl.call(t, "dn-a", CommitReq{TxnID: w}).(CommitResp)
	rr := cl.call(t, "dn-a-ro", ROReadReq{Table: 1, PK: pkOf(1),
		SnapshotTS: leader.Clock().Now(), MinLSN: resp.LSN}).(ReadResp)
	if !rr.OK {
		t.Fatal("durable write not on RO")
	}
	durableLSN := ro.AppliedLSN()

	// Cut the leader off from its followers; propose without waiting.
	net.SetDown("gu/dn-b", true)
	net.SetDown("gu/dn-c", true)
	if _, err := leader.Paxos().Propose(wal.Record{
		Type: wal.RecInsert, TableID: 1, TxnID: 999999,
		Key: pkOf(2), Payload: nil,
	}); err != nil {
		t.Fatal(err)
	}
	// Give the RO shipper time to (incorrectly) ship if it were going to.
	time.Sleep(100 * time.Millisecond)
	if got := ro.AppliedLSN(); got != durableLSN {
		t.Fatalf("RO advanced past DLSN: %d > %d", got, durableLSN)
	}
}
