package dn

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/hlc"
	"repro/internal/obs"
	"repro/internal/sql"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

// projectRow narrows a row to the requested column positions (nil =
// whole row). A fresh slice is returned so callers can't alias storage.
func projectRow(row types.Row, proj []int) types.Row {
	if proj == nil {
		return row
	}
	out := make(types.Row, len(proj))
	for i, c := range proj {
		if c >= 0 && c < len(row) {
			out[i] = row[c]
		}
	}
	return out
}

// handle dispatches CN requests. Each arrives on its own goroutine (the
// caller's), so blocking on durability waits stalls only that request —
// the Go analogue of the paper's async commit freeing foreground threads.
// A Deadlined envelope is unwrapped first: expired requests are refused
// at the door, and the deadline bounds the prepare/commit quorum waits.
func (i *Instance) handle(from string, msg any) (any, error) {
	var deadline time.Time
	if env, ok := msg.(Deadlined); ok {
		deadline = env.Deadline
		msg = env.Req
		if !deadline.IsZero() && i.timeSrc.Until(deadline) <= 0 {
			i.mDeadline.Add(1)
			return nil, fmt.Errorf("dn %s: %T: %w", i.cfg.Name, msg, obs.ErrDeadlineExceeded)
		}
	}
	switch m := msg.(type) {
	case BeginReq:
		return nil, i.handleBegin(m)
	case WriteReq:
		return nil, i.handleWrite(m)
	case ReadReq:
		return i.handleRead(m)
	case MultiGetReq:
		return i.handleMultiGet(m)
	case MultiWriteReq:
		return nil, i.handleMultiWrite(m)
	case ScanReq:
		return i.handleScan(m)
	case PrepareReq:
		return i.handlePrepare(m, deadline)
	case CommitReq:
		return i.handleCommit(m, deadline)
	case AbortReq:
		return nil, i.handleAbort(m)
	case ResolveTxnReq:
		return i.handleResolve(m)
	case CreateTableReq:
		return nil, i.CreateTable(m.ID, m.Tenant, m.Schema)
	case CreateIndexReq:
		return nil, i.CreateIndex(m.Table, m.Name, m.Cols)
	case roAck:
		i.handleROAck(m)
		return nil, nil
	case StatusReq:
		return i.status(), nil
	default:
		return nil, fmt.Errorf("dn: %s: unexpected message %T", i.cfg.Name, msg)
	}
}

// branch resolves (or lazily creates) the local branch of a distributed
// transaction.
func (i *Instance) branch(txnID uint64) (*txnEntry, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	e, ok := i.txns[txnID]
	if !ok {
		return nil, fmt.Errorf("%w: %d on %s", ErrUnknownTxn, txnID, i.cfg.Name)
	}
	return e, nil
}

// handleBegin opens a branch. HLC-SI step 3: fold the coordinator's
// snapshot_ts into the local clock so node.hlc >= snapshot_ts, which the
// §IV proof relies on.
func (i *Instance) handleBegin(m BeginReq) error {
	if !i.IsLeader() {
		return fmt.Errorf("%w: %s", ErrNotLeader, i.cfg.Name)
	}
	i.clock.Update(m.SnapshotTS)
	txn := i.eng.Begin(m.SnapshotTS)
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.stopped {
		return ErrStopped
	}
	if _, dup := i.txns[m.TxnID]; dup {
		// Duplicate or retried BeginReq (lost reply): the branch exists,
		// which is exactly what the coordinator asked for.
		_ = i.eng.Abort(txn)
		return nil
	}
	i.txns[m.TxnID] = &txnEntry{txn: txn, startedAt: i.timeSrc.Now()}
	return nil
}

// branchOrBegin resolves the local branch, opening it implicitly when a
// batched request is the branch's first contact with this DN. Folding
// the begin into the batched request is what keeps a multi-point
// statement at exactly one round trip per touched DN.
func (i *Instance) branchOrBegin(txnID uint64, snap hlc.Timestamp) (*txnEntry, error) {
	i.mu.Lock()
	if e, ok := i.txns[txnID]; ok {
		i.mu.Unlock()
		return e, nil
	}
	i.mu.Unlock()
	if !i.IsLeader() {
		return nil, fmt.Errorf("%w: %s", ErrNotLeader, i.cfg.Name)
	}
	i.clock.Update(snap)
	txn := i.eng.Begin(snap)
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.stopped {
		_ = i.eng.Abort(txn)
		return nil, ErrStopped
	}
	if e, ok := i.txns[txnID]; ok {
		// Lost a creation race against a concurrent request of the same
		// transaction; discard the speculative engine txn.
		_ = i.eng.Abort(txn)
		return e, nil
	}
	e := &txnEntry{txn: txn, startedAt: i.timeSrc.Now()}
	i.txns[txnID] = e
	return e, nil
}

func (i *Instance) handleWrite(m WriteReq) error {
	e, err := i.branch(m.TxnID)
	if err != nil {
		return err
	}
	i.stats.writes.Add(1)
	return i.applyWrite(e, m.Table, m.Op, m.Row, m.PK)
}

func (i *Instance) applyWrite(e *txnEntry, table uint32, op WriteOp, row types.Row, pk []byte) error {
	switch op {
	case OpInsert:
		return i.eng.Insert(e.txn, table, row)
	case OpUpdate:
		return i.eng.Update(e.txn, table, row)
	case OpDelete:
		return i.eng.Delete(e.txn, table, pk)
	default:
		return fmt.Errorf("dn: unknown write op %d", op)
	}
}

// readGuard gates RO snapshot reads on leadership validity. A leader
// inside its lease serves locally — no quorum round, the paper's lease
// read (counted in paxos.lease_reads). One whose lease lapsed must
// re-confirm its epoch with a majority before answering, so an isolated
// deposed leader can never serve stale rows.
func (i *Instance) readGuard() error {
	if i.node.LeaseRead() {
		return nil
	}
	if err := i.node.ConfirmLeadership(); err != nil {
		return fmt.Errorf("%w: %s: %v", ErrNotLeader, i.cfg.Name, err)
	}
	return nil
}

func (i *Instance) handleRead(m ReadReq) (ReadResp, error) {
	e, err := i.branch(m.TxnID)
	if err != nil {
		return ReadResp{}, err
	}
	if err := i.readGuard(); err != nil {
		return ReadResp{}, err
	}
	i.stats.pointReads.Add(1)
	i.svc.serve(pointCost)
	row, ok, err := i.eng.Get(e.txn, m.Table, m.PK)
	return ReadResp{Row: row, OK: ok}, err
}

func (i *Instance) handleMultiGet(m MultiGetReq) (MultiGetResp, error) {
	e, err := i.branchOrBegin(m.TxnID, m.SnapshotTS)
	if err != nil {
		return MultiGetResp{}, err
	}
	if err := i.readGuard(); err != nil {
		return MultiGetResp{}, err
	}
	i.stats.multiGets.Add(1)
	i.svc.serve(pointCost * float64(len(m.Gets)))
	out := make([]ReadResp, len(m.Gets))
	for k, g := range m.Gets {
		row, ok, err := i.eng.Get(e.txn, g.Table, g.PK)
		if err != nil {
			return MultiGetResp{}, err
		}
		out[k] = ReadResp{Row: row, OK: ok}
	}
	return MultiGetResp{Results: out}, nil
}

func (i *Instance) handleMultiWrite(m MultiWriteReq) error {
	e, err := i.branchOrBegin(m.TxnID, m.SnapshotTS)
	if err != nil {
		return err
	}
	i.stats.multiWrites.Add(1)
	for _, w := range m.Writes {
		if err := i.applyWrite(e, w.Table, w.Op, w.Row, w.PK); err != nil {
			return err
		}
	}
	return nil
}

// rpcStats counts hot-path request types so benchmarks and tests can
// assert RPC budgets (batched paths must cost one multi-get per DN, not
// one point read per key).
type rpcStats struct {
	pointReads  atomic.Uint64
	multiGets   atomic.Uint64
	writes      atomic.Uint64
	multiWrites atomic.Uint64
}

// RPCStats returns cumulative per-type request counts.
func (i *Instance) RPCStats() (pointReads, multiGets, writes, multiWrites uint64) {
	return i.stats.pointReads.Load(), i.stats.multiGets.Load(),
		i.stats.writes.Load(), i.stats.multiWrites.Load()
}

// Service-cost constants: a scanned row costs one row-unit, a point
// operation about one, and column-index rows a quarter (vectorized).
const (
	pointCost    = 1.0
	colIndexCost = 0.25
)

func (i *Instance) handleScan(m ScanReq) (ScanResp, error) {
	e, err := i.branch(m.TxnID)
	if err != nil {
		return ScanResp{}, err
	}
	if err := i.readGuard(); err != nil {
		return ScanResp{}, err
	}
	var rows []types.Row
	var evalErr error
	collect := func(_ []byte, row types.Row) bool {
		if m.Filter != nil {
			v, err := sql.Eval(m.Filter, row)
			if err != nil {
				evalErr = err
				return false
			}
			if !v.IsTruthy() {
				return true
			}
		}
		rows = append(rows, projectRow(row, m.Projection))
		return m.Limit <= 0 || len(rows) < m.Limit
	}
	examined := 0
	countingCollect := collect
	collect = func(pk []byte, row types.Row) bool {
		examined++
		return countingCollect(pk, row)
	}
	if m.Index != "" {
		err = i.eng.IndexScan(e.txn, m.Table, m.Index, m.Start, m.End, collect)
	} else {
		err = i.eng.ScanRange(e.txn, m.Table, m.Start, m.End, collect)
	}
	if err == nil {
		err = evalErr
	}
	i.svc.serve(float64(examined))
	return ScanResp{Rows: rows}, err
}

// handlePrepare is 2PC phase one (§IV step 4): validate, mark PREPARED
// at ClockAdvance(), persist the branch's redo durably (writes + prepare
// marker through Paxos), then return prepare_ts to the coordinator. The
// prepare record carries the coordinator's txn ID and the primary branch
// name so the branch stays resolvable after any crash. A retried prepare
// (lost reply) answers the already-recorded prepare timestamp.
func (i *Instance) handlePrepare(m PrepareReq, deadline time.Time) (PrepareResp, error) {
	e, err := i.branch(m.TxnID)
	if err != nil {
		return PrepareResp{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.txn.Status() == storage.TxnPrepared {
		return PrepareResp{PrepareTS: e.txn.PrepareTS()}, nil
	}
	prepareTS := i.clock.Advance()
	if err := i.eng.Prepare(e.txn, prepareTS, m.TxnID, m.Primary); err != nil {
		return PrepareResp{}, err
	}
	e.primary = m.Primary
	e.preparedAt = i.timeSrc.Now()
	if err := i.proposeTailUntil(e, true, deadline); err != nil {
		return PrepareResp{}, err
	}
	return PrepareResp{PrepareTS: prepareTS}, nil
}

// handleCommit finalizes a branch. Two-phase path: the coordinator sends
// the decided commit_ts (max of prepare timestamps), we fold it into the
// clock (§IV step 7) and commit. 1PC fast path (CommitTS zero): the
// branch is the only participant, so choose commit_ts locally.
//
// CommitPoint (primary branch only): the commit decision record is
// proposed immediately ahead of the branch's redo tail, so the single
// durability wait below covers both, and log order guarantees failover
// truncation can never retain the commit marker while losing the
// decision. A presumed-abort tombstone written by a resolver in the
// meantime refuses the commit point — the transaction is already aborted.
func (i *Instance) handleCommit(m CommitReq, deadline time.Time) (CommitResp, error) {
	if fin, ok := i.finishedOutcome(m.TxnID); ok {
		return commitRespFromFinished(m.TxnID, fin)
	}
	e, err := i.branch(m.TxnID)
	if err != nil {
		return CommitResp{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if fin, ok := i.finishedOutcome(m.TxnID); ok {
		// A duplicate raced us to the entry before it was removed.
		return commitRespFromFinished(m.TxnID, fin)
	}
	commitTS := m.CommitTS
	if commitTS.IsZero() {
		commitTS = i.clock.Advance()
	} else {
		i.clock.Update(commitTS)
	}
	if m.CommitPoint {
		if d, won := i.decide(m.TxnID, true, commitTS); !won && !d.commit {
			return CommitResp{}, fmt.Errorf("dn: txn %d: commit point refused, resolver already aborted", m.TxnID)
		}
		if _, err := i.node.Propose(wal.Record{Type: wal.RecCommitPoint,
			TxnID: m.TxnID, Payload: storage.EncodeTS(commitTS)}); err != nil {
			i.dropDecision(m.TxnID)
			return CommitResp{}, err
		}
	}
	if err := i.eng.Commit(e.txn, commitTS); err != nil {
		return CommitResp{}, err
	}
	if err := i.proposeTailUntil(e, true, deadline); err != nil {
		return CommitResp{CommitTS: commitTS}, err
	}
	if m.CommitPoint {
		i.markDecisionDurable(m.TxnID)
	}
	i.markDirtyPages(e.txn)
	i.mu.Lock()
	delete(i.txns, m.TxnID)
	i.mu.Unlock()
	lsn := i.node.DLSN()
	i.noteFinished(m.TxnID, finishedTxn{committed: true, commitTS: commitTS, lsn: lsn})
	return CommitResp{CommitTS: commitTS, LSN: lsn}, nil
}

// commitRespFromFinished answers a retried commit from the recorded
// outcome: idempotent success if it committed, a hard error if a
// resolver (or abort) settled it the other way.
func commitRespFromFinished(txnID uint64, fin finishedTxn) (CommitResp, error) {
	if fin.committed {
		return CommitResp{CommitTS: fin.commitTS, LSN: fin.lsn}, nil
	}
	return CommitResp{}, fmt.Errorf("dn: txn %d already aborted", txnID)
}

func (i *Instance) handleAbort(m AbortReq) error {
	if fin, ok := i.finishedOutcome(m.TxnID); ok {
		if fin.committed {
			return fmt.Errorf("dn: txn %d already committed", m.TxnID)
		}
		return nil // retried abort: already settled that way
	}
	e, err := i.branch(m.TxnID)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.txn.Status()
	if st == storage.TxnAborted {
		return nil
	}
	if st == storage.TxnCommitted {
		return fmt.Errorf("dn: txn %d already committed", m.TxnID)
	}
	proposedAny := e.proposed > 0
	if err := i.eng.Abort(e.txn); err != nil {
		return err
	}
	if proposedAny {
		// Followers buffered this txn's rows: ship an abort marker so
		// they drop it.
		if _, err := i.node.Propose(wal.Record{Type: wal.RecAbort, TxnID: e.txn.ID}); err != nil {
			return err
		}
	}
	i.mu.Lock()
	delete(i.txns, m.TxnID)
	i.mu.Unlock()
	i.noteFinished(m.TxnID, finishedTxn{})
	return nil
}

// proposeTail ships the branch's not-yet-proposed redo records through
// Paxos. When wait is true it blocks until the group DLSN covers them
// (async commit: the waiting happens in this request's goroutine while
// other requests proceed).
func (i *Instance) proposeTail(e *txnEntry, wait bool) error {
	return i.proposeTailUntil(e, wait, time.Time{})
}

// proposeTailUntil is proposeTail with the durability wait bounded by
// the statement deadline. On expiry the redo stays proposed (it will
// become durable — or be truncated by a failover — on its own) but the
// request goroutine is released with obs.ErrDeadlineExceeded, which the
// coordinator treats as an unknown outcome, same as a timed-out RPC.
func (i *Instance) proposeTailUntil(e *txnEntry, wait bool, deadline time.Time) error {
	redo := e.txn.Redo()
	if e.proposed >= len(redo) {
		return nil
	}
	end, err := i.node.Propose(redo[e.proposed:]...)
	if err != nil {
		return err
	}
	e.proposed = len(redo)
	if !wait {
		return nil
	}
	err = i.node.AwaitDurableUntil(end, deadline)
	if errors.Is(err, obs.ErrDeadlineExceeded) {
		i.mDeadline.Add(1)
	}
	return err
}

// markDirtyPages records buffer-pool dirt for the txn's writes at the
// current log tail (flushed later, bounded by DLSN).
func (i *Instance) markDirtyPages(txn *storage.Txn) {
	lsn := i.node.Log().TailLSN()
	for _, rec := range txn.Redo() {
		switch rec.Type {
		case wal.RecInsert, wal.RecUpdate, wal.RecDelete:
			i.eng.Pool().MarkDirty(rec.TableID, rec.Key, lsn)
		}
	}
}

func (i *Instance) status() StatusResp {
	i.mu.Lock()
	defer i.mu.Unlock()
	st := StatusResp{
		Name:     i.cfg.Name,
		IsLeader: i.IsLeader(),
		TailLSN:  i.node.Log().TailLSN(),
		DLSN:     i.node.DLSN(),
	}
	for _, ro := range i.ros {
		st.ROs = append(st.ROs, ROStatus{
			Name:       ro.name,
			AppliedLSN: ro.appliedLSN(),
			Evicted:    i.evicted[ro.name],
		})
	}
	return st
}
