package dn

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hlc"
	"repro/internal/obs"
	"repro/internal/paxos"
	"repro/internal/polarfs"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

// Errors.
var (
	ErrNotLeader  = errors.New("dn: instance is not the group leader")
	ErrUnknownTxn = errors.New("dn: unknown transaction branch")
	ErrStopped    = errors.New("dn: instance stopped")
)

// DefaultROLagLimit matches the paper's eviction heuristic ("say the lag
// is larger than one million [bytes of redo]").
const DefaultROLagLimit wal.LSN = 1 << 20

// Config configures a DN instance (one PolarDB instance in one DC).
type Config struct {
	// Name is the instance's simnet endpoint.
	Name string
	DC   simnet.DC
	Net  *simnet.Network

	// Group members (one instance per DC). A single-member group is the
	// single-DC deployment; Propose then commits locally without peers.
	Group   string
	Members []paxos.Member
	// Bootstrap makes this instance the initial leader.
	Bootstrap bool

	// Volume, when non-nil, receives dirty-page writes (PolarFS).
	Volume *polarfs.Volume

	// ROLagLimit overrides the eviction threshold.
	ROLagLimit wal.LSN

	// ServiceRate models the node's compute capacity in rows processed
	// per second per core (0 = unlimited; nodes have 8 simulated cores).
	// Scans cost their examined rows; point operations cost ~1 row;
	// column-index scans cost a quarter (vectorized). RO replicas get
	// their own capacity — which is precisely why adding RO nodes scales
	// read throughput (§II-C, Fig. 9b).
	ServiceRate float64
	// PaxosHeartbeat tunes the replication cadence (default 2ms).
	PaxosHeartbeat time.Duration
	// ElectionTimeout tunes failover detection (default 150ms).
	ElectionTimeout time.Duration

	// GroupCommitWindow tunes the leader's group-commit accumulation
	// window: 0 means the default (DefaultGroupCommitWindow); a negative
	// value disables group commit entirely (the per-MTR flush ablation).
	GroupCommitWindow time.Duration
	// GroupCommitBytes closes an accumulation window early (default 64KB).
	GroupCommitBytes int
	// FlushDelay models the latency of one redo flush to PolarFS
	// (default 0: free, as before this knob existed).
	FlushDelay time.Duration
	// PipelineDepth caps in-flight replication windows per peer
	// (default 8).
	PipelineDepth int

	// InDoubtAfter is how long a branch may sit PREPARED before the
	// instance treats its coordinator as dead and consults the
	// transaction's primary branch for the outcome (default 400ms). Must
	// comfortably exceed normal commit latency, or live transactions get
	// spuriously aborted by presumed-abort resolution.
	InDoubtAfter time.Duration

	// CompressionOff disables the compression stack end to end on this
	// instance: Paxos frames ship raw, and column indexes enabled on the
	// instance's RO replicas store raw vectors (the exact pre-encoding
	// layout). Compression is on by default.
	CompressionOff bool

	// Metrics, when non-nil, receives the instance's instruments
	// (currently the Paxos quorum-wait histogram).
	Metrics *obs.Registry
	// TimeSource drives the in-doubt sweep's timers (nil = wall time);
	// chaos tests inject a FakeClock to step through recovery windows.
	TimeSource obs.Clock
}

// DefaultInDoubtAfter is the default in-doubt resolution timeout.
const DefaultInDoubtAfter = 400 * time.Millisecond

// DefaultGroupCommitWindow is the default leader group-commit
// accumulation window: long enough for concurrent committers to share a
// flush, short enough to be invisible next to cross-DC RTTs.
const DefaultGroupCommitWindow = 50 * time.Microsecond

// txnEntry tracks one CN-coordinated transaction branch.
type txnEntry struct {
	// mu serializes lifecycle transitions (prepare/commit/abort/resolve)
	// on this branch: duplicated or retried coordinator RPCs may race the
	// in-doubt sweep, and proposeTail's bookkeeping is not atomic.
	mu  sync.Mutex
	txn *storage.Txn
	// proposed counts redo records already shipped through Paxos, so
	// commit ships only the tail.
	proposed int
	// primary names the transaction's primary branch instance, recorded
	// at prepare time (empty until prepared).
	primary string
	// startedAt/preparedAt drive the in-doubt sweep's timeouts.
	startedAt  time.Time
	preparedAt time.Time
}

// finishedTxn remembers a settled branch outcome so retried commit/abort
// RPCs (duplicates, or retries after a lost reply) answer consistently.
type finishedTxn struct {
	committed bool
	commitTS  hlc.Timestamp
	lsn       wal.LSN
}

// decision is the instance's in-memory commit/abort arbiter for
// transactions whose primary branch lives here. The first writer
// (commit-point request or presumed-abort resolver) wins; durable is set
// once the matching log record is majority-replicated, and only durable
// decisions are revealed to resolvers.
type decision struct {
	commit  bool
	ts      hlc.Timestamp
	durable bool
}

// Instance is one PolarDB instance: RW engine + redo + Paxos membership
// + local RO replicas.
type Instance struct {
	cfg   Config
	clock *hlc.Clock // hybrid logical clock (timestamps, not timers)
	// timeSrc is the injectable wall-time source for branch age and
	// in-doubt sweep timers.
	timeSrc obs.Clock
	eng     *storage.Engine
	node    *paxos.Node

	mu      sync.Mutex
	txns    map[uint64]*txnEntry
	ros     []*RO
	roCur   map[string]wal.LSN // shipping cursor per RO
	roAck   map[string]wal.LSN // applied LSN acked per RO
	evicted map[string]bool
	stopped bool

	// decisions arbitrates commit-point vs. presumed-abort races for
	// transactions whose primary branch is here (guarded by mu, FIFO-capped
	// by decFIFO).
	decisions map[uint64]*decision
	decFIFO   []uint64
	// finished remembers settled branch outcomes for idempotent RPC
	// retries; finFIFO caps it (guarded by mu).
	finished map[uint64]finishedTxn
	finFIFO  []uint64
	// inDoubtSeen records when the sweep first observed an inherited
	// (applier-side) prepared branch, so resolution waits InDoubtAfter
	// from observation, not from an unknowable remote wall-clock.
	inDoubtSeen map[uint64]time.Time

	// recovery counters (observability + test assertions).
	resolvedCommits atomic.Uint64
	resolvedAborts  atomic.Uint64

	applier *storage.Applier
	// svc is the node's service-capacity model (nil = unlimited).
	svc *svcModel
	// stats counts hot-path request types (RPC-budget assertions).
	stats rpcStats
	// mDeadline counts requests refused or unparked because their
	// statement deadline expired (nil-safe).
	mDeadline *obs.Counter

	done chan struct{}
	wg   sync.WaitGroup
}

// NewInstance creates and starts a DN instance.
func NewInstance(cfg Config) (*Instance, error) {
	if cfg.ROLagLimit == 0 {
		cfg.ROLagLimit = DefaultROLagLimit
	}
	if cfg.PaxosHeartbeat == 0 {
		cfg.PaxosHeartbeat = 2 * time.Millisecond
	}
	if cfg.ElectionTimeout == 0 {
		cfg.ElectionTimeout = 150 * time.Millisecond
	}
	if cfg.InDoubtAfter == 0 {
		cfg.InDoubtAfter = DefaultInDoubtAfter
	}
	inst := &Instance{
		cfg:         cfg,
		clock:       hlc.NewClock(nil),
		timeSrc:     obs.Or(cfg.TimeSource),
		eng:         storage.NewEngine(),
		txns:        make(map[uint64]*txnEntry),
		roCur:       make(map[string]wal.LSN),
		roAck:       make(map[string]wal.LSN),
		evicted:     make(map[string]bool),
		decisions:   make(map[uint64]*decision),
		finished:    make(map[uint64]finishedTxn),
		inDoubtSeen: make(map[uint64]time.Time),
		mDeadline:   cfg.Metrics.Counter("deadline.exceeded"),
		done:        make(chan struct{}),
	}
	inst.applier = storage.NewApplier(inst.eng)
	inst.svc = newSvcModel(cfg.ServiceRate, 0)
	gcWindow := cfg.GroupCommitWindow
	if gcWindow == 0 {
		gcWindow = DefaultGroupCommitWindow
	}
	if gcWindow < 0 {
		gcWindow = 0 // ablation: per-MTR flushes
	}
	node, err := paxos.NewNode(paxos.Config{
		Group:             cfg.Group,
		Self:              cfg.Name,
		Members:           cfg.Members,
		Net:               cfg.Net,
		HeartbeatEvery:    cfg.PaxosHeartbeat,
		ElectionTimeout:   cfg.ElectionTimeout,
		Pipelined:         true,
		PipelineDepth:     cfg.PipelineDepth,
		GroupCommitWindow: gcWindow,
		GroupCommitBytes:  cfg.GroupCommitBytes,
		FlushDelay:        cfg.FlushDelay,
		NoCompress:        cfg.CompressionOff,
		OnApply:           inst.onApply,
		Clock:             cfg.TimeSource,
		Metrics:           cfg.Metrics,
		QuorumWait:        cfg.Metrics.Histogram("paxos.quorum_wait"),
	})
	if err != nil {
		return nil, err
	}
	inst.node = node
	cfg.Net.Register(cfg.Name, cfg.DC, inst.handle)
	if cfg.Bootstrap {
		node.Bootstrap()
	}
	node.Start()
	inst.wg.Add(2)
	go inst.roShipperLoop()
	go inst.flusherLoop()
	return inst, nil
}

// Stop terminates the instance and its RO replicas.
func (i *Instance) Stop() {
	i.mu.Lock()
	if i.stopped {
		i.mu.Unlock()
		return
	}
	i.stopped = true
	ros := append([]*RO(nil), i.ros...)
	i.mu.Unlock()
	close(i.done)
	i.wg.Wait()
	i.node.Stop()
	for _, ro := range ros {
		ro.stop()
	}
	i.cfg.Net.Unregister(i.cfg.Name)
}

// Name returns the instance endpoint name.
func (i *Instance) Name() string { return i.cfg.Name }

// DC returns the instance's datacenter.
func (i *Instance) DC() simnet.DC { return i.cfg.DC }

// IsLeader reports whether this instance's RW currently serves writes.
func (i *Instance) IsLeader() bool { return i.node.Role() == paxos.RoleLeader }

// Clock exposes the instance's HLC clock (tests and ablations).
func (i *Instance) Clock() *hlc.Clock { return i.clock }

// Engine exposes the local storage engine (used by colindex and tests).
func (i *Instance) Engine() *storage.Engine { return i.eng }

// Paxos exposes the replication node (status surfaces).
func (i *Instance) Paxos() *paxos.Node { return i.node }

// Applier exposes the redo applier (recovery status surfaces).
func (i *Instance) Applier() *storage.Applier { return i.applier }

// onApply is the follower-side apply path: redo committed by the group
// leader lands here once DLSN covers it.
func (i *Instance) onApply(recs []wal.Record, start, end wal.LSN) {
	i.applyRecords(recs)
}

// applyRecords handles DDL records inline and delegates rows to the
// applier.
func (i *Instance) applyRecords(recs []wal.Record) {
	run := recs[:0:0]
	flush := func() {
		if len(run) > 0 {
			_ = i.applier.Apply(run)
			run = run[:0]
		}
	}
	for _, rec := range recs {
		if rec.Type == wal.RecDDL {
			flush()
			if schema, err := DecodeSchema(rec.Payload); err == nil {
				_, _ = i.eng.CreateTable(rec.TableID, rec.TenantID, schema)
				i.createTableOnROs(rec.TableID, rec.TenantID, rec.Payload)
			}
			continue
		}
		run = append(run, rec)
	}
	flush()
}

// CreateTable provisions a table cluster-wide: locally, on local ROs,
// and (via a RecDDL redo record) on follower instances and their ROs.
func (i *Instance) CreateTable(id, tenant uint32, schema *types.Schema) error {
	if _, err := i.eng.CreateTable(id, tenant, schema); err != nil {
		return err
	}
	payload := EncodeSchema(schema)
	i.createTableOnROs(id, tenant, payload)
	if i.IsLeader() && len(i.cfg.Members) > 1 {
		end, err := i.node.Propose(wal.Record{
			Type: wal.RecDDL, TableID: id, TenantID: tenant, Payload: payload,
		})
		if err != nil {
			return err
		}
		return i.node.AwaitDurable(end)
	}
	if i.IsLeader() {
		// Single-member group: still log the DDL for recovery replay.
		_, err := i.node.Propose(wal.Record{
			Type: wal.RecDDL, TableID: id, TenantID: tenant, Payload: payload,
		})
		return err
	}
	return nil
}

func (i *Instance) createTableOnROs(id, tenant uint32, schemaPayload []byte) {
	schema, err := DecodeSchema(schemaPayload)
	if err != nil {
		return
	}
	i.mu.Lock()
	ros := append([]*RO(nil), i.ros...)
	i.mu.Unlock()
	for _, ro := range ros {
		_, _ = ro.eng.CreateTable(id, tenant, schema)
	}
}

// CreateIndex provisions a local secondary index on this instance and
// its ROs (indexes are node-local acceleration structures).
func (i *Instance) CreateIndex(table uint32, name string, cols []string) error {
	if _, err := i.eng.CreateIndex(table, name, cols); err != nil {
		return err
	}
	i.mu.Lock()
	ros := append([]*RO(nil), i.ros...)
	i.mu.Unlock()
	for _, ro := range ros {
		if _, err := ro.eng.CreateIndex(table, name, cols); err != nil {
			return err
		}
	}
	return nil
}

// flusherLoop periodically flushes dirty pages modified before the DLSN
// to PolarFS (§III: "the leader can safely flush dirty pages modified
// before DLSN"), purges redo that every consumer has moved past
// (§II-C step 8), and vacuums MVCC garbage below the oldest active
// snapshot.
func (i *Instance) flusherLoop() {
	defer i.wg.Done()
	ticker := time.NewTicker(10 * time.Millisecond)
	defer ticker.Stop()
	vacuumTick := 0
	for {
		select {
		case <-i.done:
			return
		case <-ticker.C:
		}
		dlsn := i.node.DLSN()
		_, _ = i.eng.Pool().FlushBefore(dlsn, i.writePage)
		i.purgeRedo(dlsn)
		if vacuumTick%8 == 4 {
			// Autonomous in-doubt sweep: resolve against the recorded
			// primary as-is. The cluster-level recovery loop re-runs this
			// with leader-aware routing when the primary's group failed over.
			i.ResolveInDoubt(nil)
		}
		if vacuumTick++; vacuumTick%16 == 0 {
			// With open transactions the oldest snapshot pins history;
			// otherwise everything superseded before "now" is dead (all
			// future snapshots exceed the current clock).
			horizon, ok := i.eng.MinActiveSnapshot()
			if !ok {
				horizon = i.clock.Now()
			}
			i.eng.Vacuum(horizon)
		}
	}
}

// purgeRedo discards redo below the lowest offset any consumer still
// needs: the majority-durable prefix, this node's own apply position
// (a follower's state machine replays [applied, dlsn) asynchronously —
// with group commit DLSN advances in window-sized jumps, so that gap is
// routinely non-empty when the purge tick fires), every RO replica's
// applied position, every Paxos peer's acknowledged position, and the
// oldest unflushed dirty page (recovery replays from there).
func (i *Instance) purgeRedo(dlsn wal.LSN) {
	bound := dlsn
	if m := i.node.ApplyFloor(); m < bound {
		bound = m
	}
	if m := i.node.MinPeerMatch(); m < bound {
		bound = m
	}
	if m := i.MinROAck(); m < bound {
		bound = m
	}
	if oldest, dirty := i.eng.Pool().OldestDirtyLSN(); dirty && oldest < bound {
		bound = oldest
	}
	log := i.node.Log()
	if bound > log.BaseLSN() && bound <= log.FlushedLSN() {
		log.Purge(bound)
	}
}

// writePage persists one 16KB page image to the instance's volume.
func (i *Instance) writePage(id storage.PageID) error {
	if i.cfg.Volume == nil {
		return nil
	}
	// Pages get stable slots in the volume; content is synthetic (the
	// engine recovers from redo, pages exist to model flush I/O cost).
	slot := (int64(id.TableID)*1031 + int64(id.PageNo)) % 4096
	buf := make([]byte, storage.PageSize)
	return i.cfg.Volume.WriteAt(i.cfg.Name, slot*storage.PageSize, buf)
}
