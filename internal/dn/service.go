package dn

import (
	"sync"
	"time"
)

// svcModel simulates a node's finite compute capacity as a queueing
// station: Cores concurrent servers, each processing rows at
// rowsPerSecond. Heavy scans occupy a core for rows/rate seconds;
// cheap point operations accumulate as "debt" paid off in ~1ms slices
// so OS timer granularity does not inflate them.
//
// This is the simulation piece behind two paper behaviours: AP scans on
// the RW node contend with TP transactions for the same cores (§VII-C
// configs 1-2), and adding RO nodes adds capacity, so multi-stream
// TPC-H gets faster with each replica (Fig. 9b).
type svcModel struct {
	sem        chan struct{}
	rowsPerSec float64

	mu   sync.Mutex
	debt time.Duration
}

// defaultSvcCores matches the paper's 8-core DN instances.
const defaultSvcCores = 8

// newSvcModel builds a model; rate <= 0 returns nil (unlimited).
func newSvcModel(rate float64, cores int) *svcModel {
	if rate <= 0 {
		return nil
	}
	if cores <= 0 {
		cores = defaultSvcCores
	}
	return &svcModel{sem: make(chan struct{}, cores), rowsPerSec: rate}
}

// serve charges the cost of processing rows. Safe on a nil model.
func (m *svcModel) serve(rows float64) {
	if m == nil || rows <= 0 {
		return
	}
	d := time.Duration(rows / m.rowsPerSec * float64(time.Second))
	m.sem <- struct{}{}
	defer func() { <-m.sem }()
	if d >= 200*time.Microsecond {
		time.Sleep(d)
		return
	}
	// Amortize sub-timer-granularity work.
	m.mu.Lock()
	m.debt += d
	var pay time.Duration
	if m.debt >= time.Millisecond {
		pay, m.debt = m.debt, 0
	}
	m.mu.Unlock()
	if pay > 0 {
		time.Sleep(pay)
	}
}
