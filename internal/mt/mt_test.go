package mt

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simnet"
	"repro/internal/types"
	"repro/internal/wal"
)

func itemSchema() *types.Schema {
	return types.NewSchema("items", []types.Column{
		{Name: "id", Kind: types.KindInt},
		{Name: "val", Kind: types.KindString},
	}, []int{0})
}

func itemRow(id int64, val string) types.Row {
	return types.Row{types.Int(id), types.Str(val)}
}

func pkOf(id int64) []byte { return types.EncodeKey(nil, types.Int(id)) }

func newMT(t *testing.T, rwNames ...string) *Cluster {
	t.Helper()
	c := NewCluster(simnet.New(simnet.ZeroTopology()))
	for i, n := range rwNames {
		if _, err := c.AddRW(n, simnet.DC(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// seedTenant creates a tenant with one table and n committed rows.
func seedTenant(t *testing.T, c *Cluster, id TenantID, rw string, n int64) uint32 {
	t.Helper()
	if _, err := c.CreateTenant(id, rw); err != nil {
		t.Fatal(err)
	}
	tableID, err := c.CreateTable(id, itemSchema())
	if err != nil {
		t.Fatal(err)
	}
	node, _ := c.RWNode(rw)
	tx, err := node.Begin(id)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		if err := tx.Insert(tableID, itemRow(i, fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return tableID
}

func TestTenantCRUD(t *testing.T) {
	c := newMT(t, "rw1")
	table := seedTenant(t, c, 1, "rw1", 10)
	rw, _ := c.RWNode("rw1")
	tx, _ := rw.Begin(1)
	row, ok, err := tx.Get(table, pkOf(3))
	if err != nil || !ok || row[1].AsString() != "v3" {
		t.Fatalf("get = %v %v %v", row, ok, err)
	}
	tx.Update(table, itemRow(3, "updated"))
	tx.Delete(table, pkOf(4))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2, _ := rw.Begin(1)
	count := 0
	tx2.Scan(table, nil, nil, func(_ []byte, _ types.Row) bool { count++; return true })
	tx2.Abort()
	if count != 9 {
		t.Fatalf("rows = %d", count)
	}
}

func TestBeginOnWrongRWFails(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	seedTenant(t, c, 1, "rw1", 1)
	rw2, _ := c.RWNode("rw2")
	if _, err := rw2.Begin(1); !errors.Is(err, ErrNotBound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCrossTenantRejected(t *testing.T) {
	c := newMT(t, "rw1")
	t1 := seedTenant(t, c, 1, "rw1", 1)
	t2 := seedTenant(t, c, 2, "rw1", 1)
	_ = t1
	rw, _ := c.RWNode("rw1")
	tx, _ := rw.Begin(1)
	defer tx.Abort()
	// Touching tenant 2's table from tenant 1's transaction fails.
	if err := tx.Insert(t2, itemRow(99, "x")); !errors.Is(err, ErrCrossTenant) {
		t.Fatalf("err = %v", err)
	}
}

func TestMasterAssignment(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	if c.Master() != "rw1" {
		t.Fatalf("master = %s", c.Master())
	}
}

func TestTransferMovesTenantWithoutCopy(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	table := seedTenant(t, c, 1, "rw1", 1000)

	stats, err := c.Transfer(1, "rw1", "rw2")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total <= 0 {
		t.Fatal("no transfer time recorded")
	}
	// Binding moved.
	if bound, _, _ := c.BindingOf(1); bound != "rw2" {
		t.Fatalf("bound to %s", bound)
	}
	// Data readable on the destination without any copy.
	rw2, _ := c.RWNode("rw2")
	tx, err := rw2.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	row, ok, _ := tx.Get(table, pkOf(500))
	if !ok || row[1].AsString() != "v500" {
		t.Fatalf("row after transfer = %v %v", row, ok)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Source refuses the tenant now.
	rw1, _ := c.RWNode("rw1")
	if _, err := rw1.Begin(1); !errors.Is(err, ErrNotBound) {
		t.Fatalf("source still serves tenant: %v", err)
	}
}

func TestTransferValidations(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	seedTenant(t, c, 1, "rw1", 1)
	if _, err := c.Transfer(1, "rw2", "rw1"); !errors.Is(err, ErrNotBound) {
		t.Fatalf("wrong source err = %v", err)
	}
	if _, err := c.Transfer(1, "rw1", "rw1"); !errors.Is(err, ErrAlreadyBoundRW) {
		t.Fatalf("self transfer err = %v", err)
	}
	if _, err := c.Transfer(99, "rw1", "rw2"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown tenant err = %v", err)
	}
	if _, err := c.Transfer(1, "rw1", "ghost"); !errors.Is(err, ErrUnknownRW) {
		t.Fatalf("unknown RW err = %v", err)
	}
}

func TestTransferPausesNewTransactions(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	table := seedTenant(t, c, 1, "rw1", 100)
	rw1, _ := c.RWNode("rw1")
	rw2, _ := c.RWNode("rw2")

	// Start a long-running txn, then kick off the transfer; a new Begin
	// during the transfer must block and then land on the new RW.
	hold, err := rw1.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	transferDone := make(chan error, 1)
	go func() {
		_, err := c.Transfer(1, "rw1", "rw2")
		transferDone <- err
	}()
	time.Sleep(10 * time.Millisecond) // transfer is now draining
	beginDone := make(chan error, 1)
	go func() {
		// Paused during migration; after resume the binding points at
		// rw2, so rw1.Begin correctly fails with ErrNotBound and the
		// caller (CN) retries on rw2 — emulate that.
		_, err := rw1.Begin(1)
		if errors.Is(err, ErrNotBound) {
			tx2, err2 := rw2.Begin(1)
			if err2 == nil {
				defer tx2.Abort()
				_, _, err2 = tx2.Get(table, pkOf(1))
			}
			beginDone <- err2
			return
		}
		beginDone <- err
	}()
	select {
	case <-beginDone:
		t.Fatal("Begin did not block during migration drain")
	case <-time.After(30 * time.Millisecond):
	}
	// Finish the held txn so the drain completes.
	if err := hold.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-transferDone; err != nil {
		t.Fatal(err)
	}
	if err := <-beginDone; err != nil {
		t.Fatalf("begin after migration: %v", err)
	}
}

func TestCommitAbortsOnBindingChange(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	table := seedTenant(t, c, 1, "rw1", 10)
	rw1, _ := c.RWNode("rw1")
	tx, _ := rw1.Begin(1)
	if err := tx.Update(table, itemRow(1, "stale-write")); err != nil {
		t.Fatal(err)
	}
	// Migrate while the txn is in flight. Transfer drains active txns,
	// so simulate the lease-loss path: finish the drain by moving the
	// binding directly (a lease expiry rebind).
	c.mu.Lock()
	c.version++
	c.bindings[1] = binding{rw: "rw2", version: c.version}
	c.mu.Unlock()
	rw2, _ := c.RWNode("rw2")
	rw2.mu.Lock()
	rw2.open[1] = func() *Tenant { t, _ := c.Tenant(1); return t }()
	rw2.mu.Unlock()
	rw2.Clock().Update(rw1.Clock().Last()) // rebind RPC carries the HLC

	if err := tx.Commit(); !errors.Is(err, ErrStaleBinding) {
		t.Fatalf("commit err = %v", err)
	}
	// The stale write must not be visible.
	tx2, _ := rw2.Begin(1)
	defer tx2.Abort()
	row, _, _ := tx2.Get(table, pkOf(1))
	if row[1].AsString() == "stale-write" {
		t.Fatal("aborted stale write visible")
	}
}

func TestTransferIsFasterThanCopy(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	const rows = 5000
	t1 := seedTenant(t, c, 1, "rw1", rows)
	seedTenant(t, c, 2, "rw1", rows)

	// Steady state: the background flusher has checkpointed the bulk
	// load; only a small working set is dirty when the migration starts.
	ten1, _ := c.Tenant(1)
	ten1.Engine().Pool().FlushBefore(wal.LSN(^uint64(0)>>1), nil)
	rw1, _ := c.RWNode("rw1")
	wtx, _ := rw1.Begin(1)
	for i := int64(0); i < 50; i++ {
		wtx.Update(t1, itemRow(i, "dirty"))
	}
	if err := wtx.Commit(); err != nil {
		t.Fatal(err)
	}

	fast, err := c.Transfer(1, "rw1", "rw2")
	if err != nil {
		t.Fatal(err)
	}
	slow, err := c.TransferByCopy(2, "rw1", "rw2", 2*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if slow.RowsCopy != rows {
		t.Fatalf("copied %d rows", slow.RowsCopy)
	}
	if slow.Total < 5*fast.Total {
		t.Fatalf("copy (%v) should be much slower than rebind (%v)", slow.Total, fast.Total)
	}
	// Both tenants serve on rw2.
	rw2, _ := c.RWNode("rw2")
	for _, id := range []TenantID{1, 2} {
		tx, err := rw2.Begin(id)
		if err != nil {
			t.Fatalf("tenant %d: %v", id, err)
		}
		tx.Abort()
	}
}

func TestFailRWRedistributesTenants(t *testing.T) {
	c := newMT(t, "rw1", "rw2", "rw3")
	tables := make(map[TenantID]uint32)
	for id := TenantID(1); id <= 4; id++ {
		tables[id] = seedTenant(t, c, id, "rw1", 50)
	}
	stats, err := c.FailRW("rw1")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Tenants != 4 {
		t.Fatalf("recovered %d tenants", stats.Tenants)
	}
	if stats.ReplayedTxns != 4 { // one seed txn per tenant
		t.Fatalf("replayed %d txns", stats.ReplayedTxns)
	}
	// Master lease moved off the dead node.
	if c.Master() == "rw1" {
		t.Fatal("master still the dead node")
	}
	// Every tenant is bound to a survivor, data intact.
	for id := TenantID(1); id <= 4; id++ {
		bound, _, err := c.BindingOf(id)
		if err != nil || bound == "rw1" {
			t.Fatalf("tenant %d bound to %s (%v)", id, bound, err)
		}
		rw, _ := c.RWNode(bound)
		tx, err := rw.Begin(id)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok, _ := tx.Get(tables[id], pkOf(25)); !ok {
			t.Fatalf("tenant %d lost data", id)
		}
		tx.Abort()
	}
	// Dead node refuses transactions.
	rw1, _ := c.RWNode("rw1")
	if _, err := rw1.Begin(1); err == nil {
		t.Fatal("dead RW accepted a transaction")
	}
}

func TestFailRWNoSurvivors(t *testing.T) {
	c := newMT(t, "rw1")
	seedTenant(t, c, 1, "rw1", 1)
	if _, err := c.FailRW("rw1"); !errors.Is(err, ErrNoSurvivors) {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentTenantsOnDistinctRWsScaleIndependently(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	t1 := seedTenant(t, c, 1, "rw1", 0)
	t2 := seedTenant(t, c, 2, "rw2", 0)
	var wg sync.WaitGroup
	work := func(rwName string, tenant TenantID, table uint32) {
		defer wg.Done()
		rw, _ := c.RWNode(rwName)
		for i := int64(0); i < 300; i++ {
			tx, err := rw.Begin(tenant)
			if err != nil {
				t.Error(err)
				return
			}
			if err := tx.Insert(table, itemRow(i, "w")); err != nil {
				tx.Abort()
				t.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}
	wg.Add(2)
	go work("rw1", 1, t1)
	go work("rw2", 2, t2)
	wg.Wait()
	for _, pair := range []struct {
		rw     string
		tenant TenantID
		table  uint32
	}{{"rw1", 1, t1}, {"rw2", 2, t2}} {
		rw, _ := c.RWNode(pair.rw)
		tx, _ := rw.Begin(pair.tenant)
		n := 0
		tx.Scan(pair.table, nil, nil, func(_ []byte, _ types.Row) bool { n++; return true })
		tx.Abort()
		if n != 300 {
			t.Fatalf("tenant %d has %d rows", pair.tenant, n)
		}
	}
}

func TestCreateTenantDuplicate(t *testing.T) {
	c := newMT(t, "rw1")
	c.CreateTenant(1, "rw1")
	if _, err := c.CreateTenant(1, "rw1"); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.CreateTenant(2, "ghost"); !errors.Is(err, ErrUnknownRW) {
		t.Fatalf("err = %v", err)
	}
}

func TestTenantsOfListsBindings(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	seedTenant(t, c, 1, "rw1", 1)
	seedTenant(t, c, 2, "rw1", 1)
	seedTenant(t, c, 3, "rw2", 1)
	if got := len(c.TenantsOf("rw1")); got != 2 {
		t.Fatalf("rw1 tenants = %d", got)
	}
	c.Transfer(2, "rw1", "rw2")
	if got := len(c.TenantsOf("rw2")); got != 2 {
		t.Fatalf("rw2 tenants after transfer = %d", got)
	}
}

// TestMDLBlocksDDLUntilDMLDrains: §V — a DDL acquires the exclusive MDL
// and therefore waits for in-flight transactions; new DML waits behind
// the DDL.
func TestMDLBlocksDDLUntilDMLDrains(t *testing.T) {
	c := newMT(t, "rw1")
	table := seedTenant(t, c, 1, "rw1", 5)
	rw, _ := c.RWNode("rw1")

	hold, err := rw.Begin(1) // holds the shared MDL
	if err != nil {
		t.Fatal(err)
	}
	if err := hold.Update(table, itemRow(1, "before-ddl")); err != nil {
		t.Fatal(err)
	}
	ddlDone := make(chan error, 1)
	go func() {
		schema := types.NewSchema("added", []types.Column{{Name: "id", Kind: types.KindInt}}, []int{0})
		_, err := c.CreateTable(1, schema)
		ddlDone <- err
	}()
	select {
	case <-ddlDone:
		t.Fatal("DDL did not wait for the in-flight transaction's MDL")
	case <-time.After(50 * time.Millisecond):
	}
	if err := hold.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-ddlDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("DDL still blocked after DML drained")
	}
	// New DML proceeds after the DDL completes.
	tx, err := rw.Begin(1)
	if err != nil {
		t.Fatal(err)
	}
	tx.Abort()
}
