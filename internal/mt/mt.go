// Package mt implements PolarDB-MT (paper §V): a PolarDB variant where
// multiple RW nodes share storage but serve disjoint tenants, giving
// scalable writes at the cost of forbidding cross-tenant transactions.
//
// Model notes. A tenant's persistent state lives in a shared-storage
// Engine (standing in for the tenant's tables/files on PolarFS). RW
// nodes never copy that state: binding a tenant to an RW merely grants
// the RW the right to open it (cache its metadata, write to it). That is
// exactly why tenant transfer is ~constant-time while the traditional
// shared-nothing alternative copies every row — the asymmetry Figure 8
// measures. Each RW additionally keeps its own private redo log (Fig. 5)
// recording its tenants' transactions; on RW failure, survivors divide
// the dead node's log by tenant and replay the partitions in parallel
// (storage.Applier.TenantFilter).
package mt

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/hlc"
	"repro/internal/obs"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

// TenantID identifies a tenant (a collection of schemas/tables; §V).
type TenantID uint32

// Errors.
var (
	ErrNotBound        = errors.New("mt: tenant not bound to this RW node")
	ErrTenantPaused    = errors.New("mt: tenant is migrating; transaction paused")
	ErrCrossTenant     = errors.New("mt: cross-tenant transactions are not supported")
	ErrUnknownTenant   = errors.New("mt: unknown tenant")
	ErrUnknownRW       = errors.New("mt: unknown RW node")
	ErrRWDead          = errors.New("mt: RW node is dead")
	ErrStaleBinding    = errors.New("mt: binding changed during transaction")
	ErrMasterOnly      = errors.New("mt: operation requires the master RW (dictionary leaseholder)")
	ErrTenantExists    = errors.New("mt: tenant already exists")
	ErrNoSurvivors     = errors.New("mt: no surviving RW nodes for failover")
	ErrAlreadyBoundRW  = errors.New("mt: tenant already bound to that RW")
	ErrTransferStopped = errors.New("mt: transfer aborted")
)

// Tenant is the shared-storage representation of one tenant: its engine
// holds the tenant's tables as they exist on PolarFS.
type Tenant struct {
	ID  TenantID
	eng *storage.Engine

	// mdl is the metadata lock (§V): DML holds it shared for the
	// transaction's lifetime; DDL takes it exclusively, so "the MDL ...
	// will block all subsequent DML/DDL statements for the table" and a
	// DDL waits for in-flight transactions to drain.
	mdl sync.RWMutex

	// rows counts committed rows across tables, to size data-copy cost.
	mu     sync.Mutex
	tables []uint32
	// load counts committed transactions — the autopilot's per-tenant
	// traffic signal.
	load int64
}

// Load returns the tenant's cumulative committed-transaction count.
func (t *Tenant) Load() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.load
}

func (t *Tenant) addLoad(n int64) {
	t.mu.Lock()
	t.load += n
	t.mu.Unlock()
}

// Engine exposes the tenant's shared-storage engine.
func (t *Tenant) Engine() *storage.Engine { return t.eng }

// Tables lists the tenant's table IDs.
func (t *Tenant) Tables() []uint32 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]uint32(nil), t.tables...)
}

// binding is one row of the internal system table mapping tenants to RW
// nodes (§V "the binding information ... is stored in an internal system
// table, which is shared with upper-level components").
type binding struct {
	rw      string
	version int64
}

// Cluster is a PolarDB-MT deployment: the shared storage, the RW nodes,
// and the master-managed binding table + data dictionary.
type Cluster struct {
	net *simnet.Network

	mu       sync.Mutex
	rws      map[string]*RW
	tenants  map[TenantID]*Tenant
	bindings map[TenantID]binding
	version  int64
	// master is the dictionary leaseholder RW (§V: "Only one RW node can
	// grab a lease. The leaseholder manages the data dictionary").
	master string
	// paused gates new transactions per migrating tenant.
	paused map[TenantID]chan struct{}

	nextTable uint32

	// commitCost/rwCores model each RW node's finite capacity: a commit
	// occupies one of rwCores slots for commitCost. Zero = unlimited.
	// This is what makes write throughput scale with the RW count
	// (Fig. 8a's +113%/+94%/+68% after each doubling).
	commitCost time.Duration
	rwCores    int

	// mRetries/mFailures count transfer retry outcomes (nil-safe; wired
	// by SetMetrics under the autopilot.* namespace).
	mRetries, mFailures *obs.Counter
	// transferFault, when set, is a chaos hook invoked at each transfer
	// stage; a non-nil return injects that error into the protocol.
	transferFault func(stage string) error
	nextAutoRW    int
}

// SetMetrics exposes transfer retry counters through a registry:
// autopilot.migration_retries and autopilot.migration_failures.
func (c *Cluster) SetMetrics(reg *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.mRetries = reg.Counter("autopilot.migration_retries")
	c.mFailures = reg.Counter("autopilot.migration_failures")
}

// SetTransferFault installs a chaos hook: fn is invoked at each transfer
// stage ("flush", "rebind", "open") and any error it returns is injected
// there. Tests use it to throw transient simnet errors at the protocol.
func (c *Cluster) SetTransferFault(fn func(stage string) error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.transferFault = fn
}

// fault runs the chaos hook for one stage.
func (c *Cluster) fault(stage string) error {
	c.mu.Lock()
	fn := c.transferFault
	c.mu.Unlock()
	if fn == nil {
		return nil
	}
	return fn(stage)
}

// NewCluster creates an empty PolarDB-MT cluster.
func NewCluster(net *simnet.Network) *Cluster {
	return &Cluster{
		net:      net,
		rws:      make(map[string]*RW),
		tenants:  make(map[TenantID]*Tenant),
		bindings: make(map[TenantID]binding),
		paused:   make(map[TenantID]chan struct{}),
	}
}

// SetRWCapacity models each RW node's compute capacity: a transaction
// commit occupies one of cores execution slots for cost. Applies to RW
// nodes added afterwards. cost = 0 disables the model.
func (c *Cluster) SetRWCapacity(cost time.Duration, cores int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cores <= 0 {
		cores = 8
	}
	c.commitCost = cost
	c.rwCores = cores
}

// AddRW registers a new RW node. The first RW becomes master
// (dictionary leaseholder). Creating an RW allocates no data — the §V
// scale-out step "an empty RW node is created".
func (c *Cluster) AddRW(name string, dc simnet.DC) (*RW, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.rws[name]; dup {
		return nil, fmt.Errorf("mt: RW %q exists", name)
	}
	rw := &RW{
		name:    name,
		dc:      dc,
		cluster: c,
		clock:   hlc.NewClock(nil),
		open:    make(map[TenantID]*Tenant),
		redo:    wal.NewLog(),
		active:  make(map[TenantID]int),
	}
	if c.commitCost > 0 {
		rw.svc = make(chan struct{}, c.rwCores)
		rw.svcCost = c.commitCost
	}
	c.rws[name] = rw
	if c.master == "" {
		c.master = name
	}
	return rw, nil
}

// Master returns the dictionary leaseholder's name.
func (c *Cluster) Master() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.master
}

// RWNode resolves an RW by name.
func (c *Cluster) RWNode(name string) (*RW, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rw, ok := c.rws[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRW, name)
	}
	return rw, nil
}

// RWNames lists RW nodes.
func (c *Cluster) RWNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.rws))
	for n := range c.rws {
		out = append(out, n)
	}
	return out
}

// CreateTenant provisions a tenant bound to the given RW. Only the
// master validates tenant DDL (§V), so this goes through it logically;
// the simulation enforces the check directly.
func (c *Cluster) CreateTenant(id TenantID, rwName string) (*Tenant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tenants[id]; dup {
		return nil, fmt.Errorf("%w: %d", ErrTenantExists, id)
	}
	rw, ok := c.rws[rwName]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownRW, rwName)
	}
	t := &Tenant{ID: id, eng: storage.NewEngine()}
	c.tenants[id] = t
	c.version++
	c.bindings[id] = binding{rw: rwName, version: c.version}
	rw.mu.Lock()
	rw.open[id] = t
	rw.mu.Unlock()
	return t, nil
}

// Tenant resolves a tenant.
func (c *Cluster) Tenant(id TenantID) (*Tenant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tenants[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownTenant, id)
	}
	return t, nil
}

// BindingOf returns the RW currently serving a tenant.
func (c *Cluster) BindingOf(id TenantID) (string, int64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b, ok := c.bindings[id]
	if !ok {
		return "", 0, fmt.Errorf("%w: %d", ErrUnknownTenant, id)
	}
	return b.rw, b.version, nil
}

// TenantsOf lists tenants bound to an RW.
func (c *Cluster) TenantsOf(rwName string) []TenantID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []TenantID
	for id, b := range c.bindings {
		if b.rw == rwName {
			out = append(out, id)
		}
	}
	return out
}

// CreateTable creates a table inside a tenant, delegating the dictionary
// write to the master (§V: the owner RW acquires an exclusive MDL,
// forwards the modification to the master, which validates ownership).
func (c *Cluster) CreateTable(tenant TenantID, schema *types.Schema) (uint32, error) {
	c.mu.Lock()
	t, ok := c.tenants[tenant]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: %d", ErrUnknownTenant, tenant)
	}
	c.nextTable++
	id := c.nextTable
	c.mu.Unlock()

	// Exclusive MDL: waits for in-flight DML on the tenant, blocks new
	// statements until the dictionary change lands (§V). The owner RW
	// then forwards the change to the master for validation; ownership
	// was already checked through the binding above.
	t.mdl.Lock()
	defer t.mdl.Unlock()
	if _, err := t.eng.CreateTable(id, uint32(tenant), schema); err != nil {
		return 0, err
	}
	t.mu.Lock()
	t.tables = append(t.tables, id)
	t.mu.Unlock()
	return id, nil
}

// pauseGate returns the pause channel for a tenant if migration is in
// progress (nil otherwise).
func (c *Cluster) pauseGate(id TenantID) chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.paused[id]
}
