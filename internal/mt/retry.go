package mt

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/autopilot"
	"repro/internal/gms"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/simnet"
)

// IsTransient classifies errors a tenant transfer can safely retry:
// simnet-level faults (timeouts, partitions, endpoints mid-restart) are
// weather, not verdicts — the move itself is still valid.
func IsTransient(err error) bool {
	return errors.Is(err, simnet.ErrTimeout) ||
		errors.Is(err, simnet.ErrPartitioned) ||
		errors.Is(err, simnet.ErrEndpointDown)
}

// TransferWithRetry runs Transfer with bounded retry/backoff for
// transient faults, resuming half-applied moves idempotently: if a prior
// attempt crashed after the rebind (step 4) but before the destination
// opened the tenant (step 5), the wrapper finishes the open instead of
// re-running the protocol. Retries and terminal failures are counted on
// the autopilot.migration_retries / autopilot.migration_failures
// counters (SetMetrics).
func (c *Cluster) TransferWithRetry(tenant TenantID, from, to string, tries int, backoff time.Duration) (TransferStats, error) {
	if tries <= 0 {
		tries = 3
	}
	if backoff <= 0 {
		backoff = 5 * time.Millisecond
	}
	// The shared retry engine drives the ladder: jittered exponential
	// backoff from the caller's base, counting each transient failure on
	// the retry counter exactly as the old hand-rolled loop did.
	pol := retry.Policy{Attempts: tries, Base: backoff, Cap: 8 * backoff, Jitter: 0.5}
	var stats TransferStats
	err := retry.Do(obs.Wall, pol, func(e error) bool {
		if !IsTransient(e) {
			return false
		}
		c.mRetries.Inc()
		return true
	}, func() error {
		// Idempotency gate: a previous attempt may have gotten the binding
		// flipped already — complete the open and call it done.
		if bound, _, berr := c.BindingOf(tenant); berr == nil && bound == to {
			if cerr := c.completeTransfer(tenant, from, to); cerr == nil {
				stats = TransferStats{Tenant: tenant, From: from, To: to}
				return nil
			}
		}
		var terr error
		stats, terr = c.Transfer(tenant, from, to)
		return terr
	})
	if err == nil {
		return stats, nil
	}
	c.mFailures.Inc()
	if !IsTransient(err) {
		return stats, err
	}
	return stats, fmt.Errorf("mt: transfer of tenant %d gave up after %d attempts: %w", tenant, tries, err)
}

// completeTransfer finishes a move whose binding already points at the
// destination: open the tenant there, carry the HLC forward, lift the
// pause gate. Safe to call when the move already completed (no-op).
func (c *Cluster) completeTransfer(tenant TenantID, from, to string) error {
	c.mu.Lock()
	src := c.rws[from]
	dst := c.rws[to]
	t, okT := c.tenants[tenant]
	gate, paused := c.paused[tenant]
	if paused {
		delete(c.paused, tenant)
	}
	c.mu.Unlock()
	if dst == nil || !okT {
		return fmt.Errorf("%w: %s", ErrUnknownRW, to)
	}
	dst.mu.Lock()
	dst.open[tenant] = t
	dst.mu.Unlock()
	if src != nil {
		src.mu.Lock()
		delete(src.open, tenant)
		src.mu.Unlock()
		dst.clock.Update(src.clock.Last())
	}
	if paused {
		close(gate)
	}
	return nil
}

// --- autopilot.Target over the MT cluster ---

// tenantGroup is the pseudo table-group name tenant placement reports
// under: shard i of the group is the i-th tenant in sorted-ID order.
const tenantGroup = "tenants"

type mtTarget struct{ c *Cluster }

// ElasticTarget exposes the MT cluster to the autopilot: tenants are the
// "shards", RW nodes the owners, and a migration step is a tenant
// transfer. Tenant IDs map to shard indices in sorted order at each
// call; the mapping is stable while no tenants are created mid-move.
func (c *Cluster) ElasticTarget() autopilot.Target { return mtTarget{c} }

// sortedTenants lists tenant IDs in ascending order.
func (c *Cluster) sortedTenants() []TenantID {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TenantID, 0, len(c.tenants))
	for id := range c.tenants {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m mtTarget) Tables() []string { return []string{tenantGroup} }

func (m mtTarget) ShardLoads(string) []int64 {
	ids := m.c.sortedTenants()
	out := make([]int64, len(ids))
	for i, id := range ids {
		if t, err := m.c.Tenant(id); err == nil {
			out[i] = t.Load()
		}
	}
	return out
}

func (m mtTarget) Placement(string) (string, []string, error) {
	ids := m.c.sortedTenants()
	owners := make([]string, len(ids))
	for i, id := range ids {
		rw, _, err := m.c.BindingOf(id)
		if err != nil {
			return "", nil, err
		}
		owners[i] = rw
	}
	return tenantGroup, owners, nil
}

func (m mtTarget) Nodes() []string {
	names := m.c.RWNames()
	sort.Strings(names)
	var live []string
	for _, n := range names {
		if rw, err := m.c.RWNode(n); err == nil && !rw.Dead() {
			live = append(live, n)
		}
	}
	return live
}

func (m mtTarget) Migrate(step gms.MigrationStep) error {
	ids := m.c.sortedTenants()
	if step.Shard < 0 || step.Shard >= len(ids) {
		return fmt.Errorf("%w: tenant index %d of %d", gms.ErrStalePlacement, step.Shard, len(ids))
	}
	id := ids[step.Shard]
	if bound, _, err := m.c.BindingOf(id); err == nil && bound == step.To {
		return nil // already moved (resumed)
	} else if err == nil && bound != step.From {
		return fmt.Errorf("%w: tenant %d on %s, step wants %s→%s",
			gms.ErrStalePlacement, id, bound, step.From, step.To)
	}
	_, err := m.c.TransferWithRetry(id, step.From, step.To, 3, 5*time.Millisecond)
	return err
}

// Abort lifts the pause gate a half-applied transfer may have left.
func (m mtTarget) Abort(step gms.MigrationStep) error {
	ids := m.c.sortedTenants()
	if step.Shard < 0 || step.Shard >= len(ids) {
		return nil
	}
	id := ids[step.Shard]
	m.c.mu.Lock()
	gate, paused := m.c.paused[id]
	if paused {
		delete(m.c.paused, id)
	}
	m.c.mu.Unlock()
	if paused {
		close(gate)
	}
	return nil
}

// SplitShard is meaningless for tenants (a tenant is indivisible).
func (m mtTarget) SplitShard(string, int) error { return autopilot.ErrUnsupported }

// AddNode provisions a fresh empty RW — §V scale-out.
func (m mtTarget) AddNode() (string, error) {
	m.c.mu.Lock()
	m.c.nextAutoRW++
	name := fmt.Sprintf("rw-auto%d", m.c.nextAutoRW)
	m.c.mu.Unlock()
	if _, err := m.c.AddRW(name, simnet.DC1); err != nil {
		return "", err
	}
	return name, nil
}

// PlanRebalance spreads tenant counts evenly across live RWs.
func (m mtTarget) PlanRebalance() []gms.MigrationStep {
	ids := m.c.sortedTenants()
	nodes := m.Nodes()
	if len(nodes) < 2 {
		return nil
	}
	count := make(map[string]int, len(nodes))
	for _, n := range nodes {
		count[n] = 0
	}
	owner := make([]string, len(ids))
	for i, id := range ids {
		rw, _, err := m.c.BindingOf(id)
		if err != nil {
			return nil
		}
		owner[i] = rw
		count[rw]++
	}
	var steps []gms.MigrationStep
	for {
		var maxN, minN string
		for _, n := range nodes {
			if maxN == "" || count[n] > count[maxN] {
				maxN = n
			}
			if minN == "" || count[n] < count[minN] {
				minN = n
			}
		}
		if count[maxN]-count[minN] <= 1 {
			return steps
		}
		for i := len(ids) - 1; i >= 0; i-- {
			if owner[i] == maxN {
				steps = append(steps, gms.MigrationStep{Group: tenantGroup, Shard: i, From: maxN, To: minN})
				owner[i] = minN
				count[maxN]--
				count[minN]++
				break
			}
		}
	}
}
