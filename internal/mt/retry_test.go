package mt

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simnet"
)

func TestIsTransient(t *testing.T) {
	for _, err := range []error{
		simnet.ErrTimeout, simnet.ErrPartitioned, simnet.ErrEndpointDown,
		fmt.Errorf("wrapped: %w", simnet.ErrTimeout),
	} {
		if !IsTransient(err) {
			t.Errorf("IsTransient(%v) = false", err)
		}
	}
	for _, err := range []error{nil, errors.New("disk on fire"), ErrNotBound} {
		if IsTransient(err) {
			t.Errorf("IsTransient(%v) = true", err)
		}
	}
}

// Transient faults mid-transfer are retried with backoff and counted on
// the autopilot.migration_retries counter; the move still lands.
func TestTransferWithRetryTransient(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	tableID := seedTenant(t, c, 7, "rw1", 5)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)

	fails := 0
	c.SetTransferFault(func(stage string) error {
		if stage == "flush" && fails < 2 {
			fails++
			return simnet.ErrTimeout
		}
		return nil
	})
	if _, err := c.TransferWithRetry(7, "rw1", "rw2", 5, 100*time.Microsecond); err != nil {
		t.Fatalf("transfer did not survive transient faults: %v", err)
	}
	if got := reg.Counter("autopilot.migration_retries").Value(); got != 2 {
		t.Fatalf("migration_retries = %d, want 2", got)
	}
	if got := reg.Counter("autopilot.migration_failures").Value(); got != 0 {
		t.Fatalf("migration_failures = %d, want 0", got)
	}
	// The tenant is fully usable on the destination.
	rw2, _ := c.RWNode("rw2")
	tx, err := rw2.Begin(7)
	if err != nil {
		t.Fatalf("Begin on destination: %v", err)
	}
	if _, ok, err := tx.Get(tableID, pkOf(3)); err != nil || !ok {
		t.Fatalf("row lost in transfer: ok=%v err=%v", ok, err)
	}
	tx.Abort()
}

// A fault in the "open" phase leaves the move half-applied: the binding
// already points at the destination but the tenant is not opened there.
// The retry wrapper must complete the open idempotently instead of
// re-running (and failing) the full protocol.
func TestTransferWithRetryResumesHalfApplied(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	tableID := seedTenant(t, c, 9, "rw1", 5)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)

	failed := false
	c.SetTransferFault(func(stage string) error {
		if stage == "open" && !failed {
			failed = true
			return simnet.ErrEndpointDown
		}
		return nil
	})
	if _, err := c.TransferWithRetry(9, "rw1", "rw2", 5, 100*time.Microsecond); err != nil {
		t.Fatalf("half-applied move not resumed: %v", err)
	}
	if bound, _, _ := c.BindingOf(9); bound != "rw2" {
		t.Fatalf("bound to %s, want rw2", bound)
	}
	if got := reg.Counter("autopilot.migration_retries").Value(); got != 1 {
		t.Fatalf("migration_retries = %d, want 1", got)
	}
	rw2, _ := c.RWNode("rw2")
	tx, err := rw2.Begin(9)
	if err != nil {
		t.Fatalf("tenant not opened on destination after resume: %v", err)
	}
	if _, ok, err := tx.Get(tableID, pkOf(0)); err != nil || !ok {
		t.Fatalf("row lost across resume: ok=%v err=%v", ok, err)
	}
	tx.Abort()
}

// Non-transient errors fail immediately (no retry storm) and count as a
// migration failure; the binding stays put.
func TestTransferWithRetryNonTransient(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	seedTenant(t, c, 11, "rw1", 2)
	reg := obs.NewRegistry()
	c.SetMetrics(reg)

	boom := errors.New("disk on fire")
	c.SetTransferFault(func(stage string) error {
		if stage == "flush" {
			return boom
		}
		return nil
	})
	_, err := c.TransferWithRetry(11, "rw1", "rw2", 5, 100*time.Microsecond)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the underlying fault", err)
	}
	if got := reg.Counter("autopilot.migration_retries").Value(); got != 0 {
		t.Fatalf("migration_retries = %d, want 0 for a non-transient fault", got)
	}
	if got := reg.Counter("autopilot.migration_failures").Value(); got != 1 {
		t.Fatalf("migration_failures = %d, want 1", got)
	}
	if bound, _, _ := c.BindingOf(11); bound != "rw1" {
		t.Fatalf("bound to %s, want rw1 after a failed move", bound)
	}
}

// The mt cluster's autopilot adapter: tenants act as shards of a pseudo
// group, and a Migrate step is a tenant transfer.
func TestMTElasticTarget(t *testing.T) {
	c := newMT(t, "rw1", "rw2")
	seedTenant(t, c, 1, "rw1", 2)
	seedTenant(t, c, 2, "rw1", 2)
	tgt := c.ElasticTarget()

	group, owners, err := tgt.Placement(tenantGroup)
	if err != nil || group != tenantGroup {
		t.Fatalf("placement: %s %v", group, err)
	}
	if len(owners) != 2 || owners[0] != "rw1" || owners[1] != "rw1" {
		t.Fatalf("owners = %v", owners)
	}
	// Count-based plan spreads the two tenants over both RWs.
	steps := tgt.PlanRebalance()
	if len(steps) != 1 || steps[0].To != "rw2" {
		t.Fatalf("plan = %+v", steps)
	}
	if err := tgt.Migrate(steps[0]); err != nil {
		t.Fatalf("migrate: %v", err)
	}
	// Re-running the same step is a no-op (idempotent resume).
	if err := tgt.Migrate(steps[0]); err != nil {
		t.Fatalf("re-migrate: %v", err)
	}
	if more := tgt.PlanRebalance(); len(more) != 0 {
		t.Fatalf("second plan = %+v, want empty", more)
	}
}
