package mt

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/hlc"
	"repro/internal/simnet"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

// RW is one read-write node of a PolarDB-MT cluster. It can serve any
// tenant currently bound to it; binding is checked at transaction start
// and re-validated (by version) at commit, standing in for the paper's
// lease subscription ("when the RW node finds that the lease is lost, it
// will suspend the submission of all outstanding transactions").
type RW struct {
	name    string
	dc      simnet.DC
	cluster *Cluster
	clock   *hlc.Clock

	mu   sync.Mutex
	open map[TenantID]*Tenant // tenants with cached metadata
	// redo is the node's PRIVATE redo log (Fig. 5: "each RW node has its
	// own private redo log"); records carry TenantID so recovery can
	// divide the log by tenant.
	redo *wal.Log
	// active counts in-flight transactions per tenant (drained during
	// transfer).
	active map[TenantID]int
	dead   bool

	// svc/svcCost model the node's commit capacity (see SetRWCapacity).
	svc     chan struct{}
	svcCost time.Duration
}

// Name returns the node name.
func (rw *RW) Name() string { return rw.name }

// Clock exposes the node clock.
func (rw *RW) Clock() *hlc.Clock { return rw.clock }

// RedoLog exposes the private redo log (recovery reads it).
func (rw *RW) RedoLog() *wal.Log { return rw.redo }

// Tx is a tenant-scoped transaction on one RW node.
type Tx struct {
	rw      *RW
	tenant  *Tenant
	txn     *storage.Txn
	version int64 // binding version at start; re-checked at commit
	done    bool
}

// Dead reports whether the node has been failed.
func (rw *RW) Dead() bool {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.dead
}

// Begin starts a transaction on the given tenant. It fails if the tenant
// is not bound here (the CN retries against the right RW), blocks if the
// tenant is mid-migration, and rejects dead nodes.
func (rw *RW) Begin(tenant TenantID) (*Tx, error) {
	// Migration gate: §V "They pause new transactions to the tenant".
	if gate := rw.cluster.pauseGate(tenant); gate != nil {
		<-gate
	}
	rw.mu.Lock()
	if rw.dead {
		rw.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrRWDead, rw.name)
	}
	rw.mu.Unlock()

	bound, version, err := rw.cluster.BindingOf(tenant)
	if err != nil {
		return nil, err
	}
	if bound != rw.name {
		return nil, fmt.Errorf("%w: %d is on %s", ErrNotBound, tenant, bound)
	}
	rw.mu.Lock()
	t, ok := rw.open[tenant]
	if !ok {
		// Shouldn't happen when bound; defensive.
		rw.mu.Unlock()
		return nil, fmt.Errorf("%w: %d not opened on %s", ErrNotBound, tenant, rw.name)
	}
	rw.active[tenant]++
	rw.mu.Unlock()
	// Shared MDL for the transaction's lifetime (released in finish):
	// concurrent DDL waits for us, and we wait for in-flight DDL.
	t.mdl.RLock()
	return &Tx{
		rw:      rw,
		tenant:  t,
		txn:     t.eng.Begin(rw.clock.Now()),
		version: version,
	}, nil
}

func (tx *Tx) finish() {
	tx.tenant.mdl.RUnlock()
	tx.rw.mu.Lock()
	tx.rw.active[tx.tenant.ID]--
	tx.rw.mu.Unlock()
	tx.done = true
}

// checkTable enforces the single-tenant rule: the table must belong to
// this transaction's tenant.
func (tx *Tx) checkTable(table uint32) error {
	t, err := tx.tenant.eng.Table(table)
	if err != nil {
		return fmt.Errorf("%w: table %d not in tenant %d", ErrCrossTenant, table, tx.tenant.ID)
	}
	if TenantID(t.Tenant) != tx.tenant.ID {
		return fmt.Errorf("%w: table %d", ErrCrossTenant, table)
	}
	return nil
}

// Insert adds a row.
func (tx *Tx) Insert(table uint32, row types.Row) error {
	if err := tx.checkTable(table); err != nil {
		return err
	}
	return tx.tenant.eng.Insert(tx.txn, table, row)
}

// Update replaces a row.
func (tx *Tx) Update(table uint32, row types.Row) error {
	if err := tx.checkTable(table); err != nil {
		return err
	}
	return tx.tenant.eng.Update(tx.txn, table, row)
}

// Delete removes a row.
func (tx *Tx) Delete(table uint32, pk []byte) error {
	if err := tx.checkTable(table); err != nil {
		return err
	}
	return tx.tenant.eng.Delete(tx.txn, table, pk)
}

// Get reads a row.
func (tx *Tx) Get(table uint32, pk []byte) (types.Row, bool, error) {
	if err := tx.checkTable(table); err != nil {
		return nil, false, err
	}
	return tx.tenant.eng.Get(tx.txn, table, pk)
}

// Scan streams a key range.
func (tx *Tx) Scan(table uint32, start, end []byte, fn func(pk []byte, row types.Row) bool) error {
	if err := tx.checkTable(table); err != nil {
		return err
	}
	return tx.tenant.eng.ScanRange(tx.txn, table, start, end, fn)
}

// Commit finalizes the transaction, re-validating the binding version:
// if the tenant migrated mid-transaction (lease lost), the transaction
// aborts (§V: "it will immediately abort all affected transactions").
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrStaleBinding
	}
	defer tx.finish()
	bound, version, err := tx.rw.cluster.BindingOf(tx.tenant.ID)
	if err == nil && (bound != tx.rw.name || version != tx.version) {
		_ = tx.tenant.eng.Abort(tx.txn)
		return fmt.Errorf("%w: tenant %d moved to %s", ErrStaleBinding, tx.tenant.ID, bound)
	}
	if rw := tx.rw; rw.svc != nil {
		// Occupy an execution slot for the commit's service time.
		rw.svc <- struct{}{}
		time.Sleep(rw.svcCost)
		<-rw.svc
	}
	if err := tx.tenant.eng.Commit(tx.txn, tx.rw.clock.Advance()); err != nil {
		return err
	}
	tx.tenant.addLoad(1)
	// Append the transaction's redo to this RW's private log and mark
	// buffer-pool dirt (flushed on transfer).
	redo := tx.txn.Redo()
	if len(redo) > 0 {
		_, end := tx.rw.redo.AppendMTR(redo...)
		tx.rw.redo.SetFlushed(end)
		for _, rec := range redo {
			switch rec.Type {
			case wal.RecInsert, wal.RecUpdate, wal.RecDelete:
				tx.tenant.eng.Pool().MarkDirty(rec.TableID, rec.Key, end)
			}
		}
	}
	return nil
}

// Abort rolls back.
func (tx *Tx) Abort() error {
	if tx.done {
		return ErrStaleBinding
	}
	defer tx.finish()
	return tx.tenant.eng.Abort(tx.txn)
}

// activeTxns reports in-flight transactions for a tenant.
func (rw *RW) activeTxns(tenant TenantID) int {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return rw.active[tenant]
}

// OpenTenants lists tenants with cached metadata on this node.
func (rw *RW) OpenTenants() []TenantID {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	out := make([]TenantID, 0, len(rw.open))
	for id := range rw.open {
		out = append(out, id)
	}
	return out
}
