package mt

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/wal"
)

// TransferStats reports what one tenant transfer did, and how long each
// protocol phase took — the quantities behind Figure 8(a).
type TransferStats struct {
	Tenant        TenantID
	From, To      string
	DrainWait     time.Duration
	FlushPages    int
	FlushTime     time.Duration
	RebindTime    time.Duration
	OpenTime      time.Duration
	Total         time.Duration
	PausedNewTxns bool
}

// Transfer migrates a tenant between RW nodes following §V exactly:
//
//  1. pause new transactions to the tenant (CN/proxy keeps connections
//     alive; paused transactions block on the gate);
//  2. wait for the source RW to complete ongoing statements;
//  3. flush all dirty pages associated with the tenant to PolarFS and
//     close the tenant's cached metadata on the source;
//  4. update the binding in the system table;
//  5. the destination opens the tenant's files and fetches metadata from
//     the master RW;
//  6. resume paused transactions.
//
// No row data moves — that is the entire point.
func (c *Cluster) Transfer(tenant TenantID, from, to string) (TransferStats, error) {
	start := time.Now()
	stats := TransferStats{Tenant: tenant, From: from, To: to}

	c.mu.Lock()
	src, okSrc := c.rws[from]
	dst, okDst := c.rws[to]
	t, okT := c.tenants[tenant]
	if !okSrc || !okDst {
		c.mu.Unlock()
		return stats, fmt.Errorf("%w: %s or %s", ErrUnknownRW, from, to)
	}
	if !okT {
		c.mu.Unlock()
		return stats, fmt.Errorf("%w: %d", ErrUnknownTenant, tenant)
	}
	if b := c.bindings[tenant]; b.rw != from {
		c.mu.Unlock()
		return stats, fmt.Errorf("%w: bound to %s, not %s", ErrNotBound, b.rw, from)
	}
	if from == to {
		c.mu.Unlock()
		return stats, fmt.Errorf("%w: %s", ErrAlreadyBoundRW, to)
	}
	// Step 1: pause new transactions.
	if _, already := c.paused[tenant]; already {
		c.mu.Unlock()
		return stats, fmt.Errorf("mt: tenant %d already migrating", tenant)
	}
	gate := make(chan struct{})
	c.paused[tenant] = gate
	c.mu.Unlock()
	stats.PausedNewTxns = true
	resume := func() {
		c.mu.Lock()
		delete(c.paused, tenant)
		c.mu.Unlock()
		close(gate)
	}

	// Step 2: drain ongoing transactions gracefully.
	drainStart := time.Now()
	for src.activeTxns(tenant) > 0 {
		time.Sleep(100 * time.Microsecond)
	}
	stats.DrainWait = time.Since(drainStart)

	// Step 3: flush the tenant's dirty pages to PolarFS and close the
	// cached metadata. Page flush I/O is charged per page.
	if err := c.fault("flush"); err != nil {
		resume()
		return stats, fmt.Errorf("mt: flush phase: %w", err)
	}
	flushStart := time.Now()
	for _, tableID := range t.Tables() {
		n, err := t.eng.Pool().FlushTable(tableID, nil)
		if err != nil {
			resume()
			return stats, err
		}
		stats.FlushPages += n
	}
	// Each 16 KB page write pays a storage round trip (~20 µs). PolarFS
	// pipelines flushes, so the cost is charged in aggregate — sleeping
	// per page would hit OS timer granularity and overstate it 50x.
	time.Sleep(time.Duration(stats.FlushPages) * 20 * time.Microsecond)
	src.mu.Lock()
	delete(src.open, tenant)
	src.mu.Unlock()
	stats.FlushTime = time.Since(flushStart)

	// Step 4: update the binding in the system table (master-managed).
	if err := c.fault("rebind"); err != nil {
		resume()
		return stats, fmt.Errorf("mt: rebind phase: %w", err)
	}
	rebindStart := time.Now()
	c.mu.Lock()
	c.version++
	c.bindings[tenant] = binding{rw: to, version: c.version}
	c.mu.Unlock()
	stats.RebindTime = time.Since(rebindStart)

	// Step 5: destination opens the tenant and fetches metadata from the
	// master RW (a small dictionary read, NOT a data copy). A fault here
	// leaves the move half-applied — rebound but not opened — which the
	// retry wrapper completes idempotently.
	if err := c.fault("open"); err != nil {
		resume()
		return stats, fmt.Errorf("mt: open phase: %w", err)
	}
	openStart := time.Now()
	dst.mu.Lock()
	dst.open[tenant] = t
	dst.mu.Unlock()
	// The dictionary fetch carries the source's HLC (every RPC does), so
	// the destination's snapshots cover everything the source committed.
	dst.clock.Update(src.clock.Last())
	time.Sleep(200 * time.Microsecond) // dictionary fetch round trip
	stats.OpenTime = time.Since(openStart)

	// Step 6: resume.
	resume()
	stats.Total = time.Since(start)
	return stats, nil
}

// CopyStats reports the traditional shared-nothing migration baseline:
// every committed row of the tenant is read, shipped and re-inserted.
type CopyStats struct {
	Tenant   TenantID
	RowsCopy int64
	Bytes    int64
	Total    time.Duration
}

// TransferByCopy is the Figure 8(b) baseline: migrate a tenant the
// shared-nothing way, by physically copying all rows into a fresh engine
// on the destination, then rebinding. Per-row costs (encode, network,
// insert) make this O(data volume).
func (c *Cluster) TransferByCopy(tenant TenantID, from, to string, perRowCost time.Duration) (CopyStats, error) {
	start := time.Now()
	stats := CopyStats{Tenant: tenant}
	c.mu.Lock()
	src, okSrc := c.rws[from]
	dst, okDst := c.rws[to]
	t, okT := c.tenants[tenant]
	if !okSrc || !okDst || !okT {
		c.mu.Unlock()
		return stats, fmt.Errorf("%w/%w", ErrUnknownRW, ErrUnknownTenant)
	}
	gate := make(chan struct{})
	c.paused[tenant] = gate
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.paused, tenant)
		c.mu.Unlock()
		close(gate)
	}()
	for src.activeTxns(tenant) > 0 {
		time.Sleep(100 * time.Microsecond)
	}

	// Build the destination copy row by row.
	newEng := storage.NewEngine()
	snapshot := src.clock.Now()
	for _, tableID := range t.Tables() {
		tbl, err := t.eng.Table(tableID)
		if err != nil {
			return stats, err
		}
		if _, err := newEng.CreateTable(tableID, uint32(tenant), tbl.Schema); err != nil {
			return stats, err
		}
		wtxn := newEng.Begin(snapshot)
		var pendingCost time.Duration
		err = t.eng.ScanRangeAt(tableID, nil, nil, snapshot, func(pk []byte, row types.Row) bool {
			enc := types.EncodeRow(nil, row)
			stats.Bytes += int64(len(enc))
			stats.RowsCopy++
			if perRowCost > 0 {
				// Charge transfer cost in ~1ms slices: per-row sleeps
				// would be quantized up by the OS timer and overstate
				// the baseline (we want it slow for the *right* reason).
				pendingCost += perRowCost
				if pendingCost >= time.Millisecond {
					time.Sleep(pendingCost)
					pendingCost = 0
				}
			}
			return newEng.Insert(wtxn, tableID, row) == nil
		})
		if err != nil {
			return stats, err
		}
		if pendingCost > 0 {
			time.Sleep(pendingCost)
		}
		if err := newEng.Commit(wtxn, src.clock.Advance()); err != nil {
			return stats, err
		}
	}

	// Swap the tenant's storage to the copy and rebind.
	dst.clock.Update(src.clock.Last())
	c.mu.Lock()
	t.eng = newEng
	c.version++
	c.bindings[tenant] = binding{rw: to, version: c.version}
	c.mu.Unlock()
	src.mu.Lock()
	delete(src.open, tenant)
	src.mu.Unlock()
	dst.mu.Lock()
	dst.open[tenant] = t
	dst.mu.Unlock()
	stats.Total = time.Since(start)
	return stats, nil
}

// RecoveryStats reports an RW failover (§V: "if one RW node fails, one
// or more other RW nodes can take over its redo log. They divide log
// entries according to the tenant, replay them ... in parallel").
type RecoveryStats struct {
	Failed       string
	Tenants      int
	ReplayedTxns int64
	Total        time.Duration
}

// FailRW marks an RW dead and redistributes its tenants across the
// survivors, replaying the dead node's private redo log partitioned by
// tenant — each partition replayed by its adopting RW concurrently.
func (c *Cluster) FailRW(name string) (RecoveryStats, error) {
	start := time.Now()
	c.mu.Lock()
	dead, ok := c.rws[name]
	if !ok {
		c.mu.Unlock()
		return RecoveryStats{}, fmt.Errorf("%w: %s", ErrUnknownRW, name)
	}
	dead.mu.Lock()
	dead.dead = true
	dead.mu.Unlock()

	var survivors []*RW
	for n, rw := range c.rws {
		if n != name && !rw.dead {
			survivors = append(survivors, rw)
		}
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].name < survivors[j].name })
	if len(survivors) == 0 {
		c.mu.Unlock()
		return RecoveryStats{}, ErrNoSurvivors
	}
	if c.master == name {
		c.master = survivors[0].name // master lease moves to a survivor
	}
	var orphans []TenantID
	for id, b := range c.bindings {
		if b.rw == name {
			orphans = append(orphans, id)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	c.mu.Unlock()

	// Read the dead node's full redo once; each adopter replays only its
	// tenant's records (TenantFilter), all in parallel.
	log := dead.redo
	recs, err := log.ReadRecords(log.BaseLSN(), log.TailLSN())
	if err != nil {
		return RecoveryStats{}, err
	}
	stats := RecoveryStats{Failed: name, Tenants: len(orphans)}
	type result struct {
		txns int64
		err  error
	}
	results := make(chan result, len(orphans))
	for i, id := range orphans {
		adopter := survivors[i%len(survivors)]
		go func(id TenantID, adopter *RW) {
			n, err := c.adoptTenant(id, adopter, recs)
			results <- result{txns: n, err: err}
		}(id, adopter)
	}
	for range orphans {
		r := <-results
		if r.err != nil {
			return stats, r.err
		}
		stats.ReplayedTxns += r.txns
	}
	stats.Total = time.Since(start)
	return stats, nil
}

// adoptTenant rebinds one orphaned tenant to the adopter, replaying the
// dead RW's redo restricted to that tenant. The shared-storage engine
// already reflects committed state (pages + redo both live in PolarFS);
// replay validates the log partition end-to-end by applying it to a
// recovery engine and is the measured recovery work.
func (c *Cluster) adoptTenant(id TenantID, adopter *RW, recs []wal.Record) (int64, error) {
	t, err := c.Tenant(id)
	if err != nil {
		return 0, err
	}
	// Parallel per-tenant replay (Fig. 5's "redo logs belonging to
	// different tenants can be concurrently replayed").
	verify := storage.NewEngine()
	for _, tableID := range t.Tables() {
		tbl, err := t.eng.Table(tableID)
		if err != nil {
			return 0, err
		}
		if _, err := verify.CreateTable(tableID, uint32(id), tbl.Schema); err != nil {
			return 0, err
		}
	}
	ap := storage.NewApplier(verify)
	ap.TenantFilter = map[uint32]bool{uint32(id): true}
	if err := ap.Apply(recs); err != nil {
		return 0, err
	}

	c.mu.Lock()
	c.version++
	c.bindings[id] = binding{rw: adopter.name, version: c.version}
	c.mu.Unlock()
	adopter.mu.Lock()
	adopter.open[id] = t
	adopter.mu.Unlock()
	// Cover the dead node's timestamps: redo commit records carry them.
	for _, rec := range recs {
		if rec.Type == wal.RecCommit {
			adopter.clock.Update(storage.DecodeTS(rec.Payload))
		}
	}
	return ap.AppliedTxns(), nil
}
