package executor

import (
	"errors"

	"repro/internal/sql"
	"repro/internal/types"
	"repro/internal/vector"
)

// simpleBPred is one compiled col-op-literal conjunct evaluated with a
// typed kernel over a column vector. The comparison ops carry exactly
// the row-mode semantics: NULL operands never match, values compare via
// types.Value.Compare.
type simpleBPred struct {
	col int
	op  string // "=", "<>", "<", "<=", ">", ">=", "isnull", "notnull"
	val types.Value
}

// compileBatchPred decomposes an AND tree into typed-kernel conjuncts
// plus a residual expression for whatever doesn't fit. constFalse marks
// predicates that can never be truthy (a comparison against a NULL
// literal NULLs the conjunct, which falsifies the AND).
func compileBatchPred(e sql.Expr) (preds []simpleBPred, residual sql.Expr, constFalse bool) {
	var walk func(sql.Expr)
	walk = func(n sql.Expr) {
		if constFalse {
			return
		}
		if b, ok := n.(*sql.BinaryOp); ok && b.Op == "AND" {
			walk(b.L)
			walk(b.R)
			return
		}
		if p, ok, cf := compileBatchLeaf(n); cf {
			constFalse = true
			return
		} else if ok {
			preds = append(preds, p...)
			return
		}
		if residual == nil {
			residual = n
		} else {
			residual = &sql.BinaryOp{Op: "AND", L: residual, R: n}
		}
	}
	walk(e)
	return preds, residual, constFalse
}

// compileBatchLeaf compiles one conjunct; ok=false sends it to the
// residual, constFalse short-circuits the whole filter.
func compileBatchLeaf(n sql.Expr) (preds []simpleBPred, ok, constFalse bool) {
	switch e := n.(type) {
	case *sql.BinaryOp:
		switch e.Op {
		case "=", "<>", "<", "<=", ">", ">=":
		default:
			return nil, false, false
		}
		col, lit := e.L, e.R
		op := e.Op
		if _, isLit := col.(*sql.Literal); isLit {
			col, lit = lit, col
			op = flipCmp(op)
		}
		c, okc := col.(*sql.ColumnRef)
		l, okl := lit.(*sql.Literal)
		if !okc || !okl || c.Index < 0 {
			return nil, false, false
		}
		if l.Val.IsNull() {
			// col <op> NULL is NULL, which falsifies the conjunction.
			return nil, true, true
		}
		return []simpleBPred{{col: c.Index, op: op, val: l.Val}}, true, false
	case *sql.Between:
		if e.Not {
			return nil, false, false
		}
		c, okc := e.E.(*sql.ColumnRef)
		lo, okl := e.Lo.(*sql.Literal)
		hi, okh := e.Hi.(*sql.Literal)
		if !okc || !okl || !okh || c.Index < 0 {
			return nil, false, false
		}
		// Between compares via Compare (NULL sorts first): a NULL lo bound
		// is trivially satisfied, a NULL hi bound never is.
		if hi.Val.IsNull() {
			return nil, true, true
		}
		if lo.Val.IsNull() {
			return []simpleBPred{{col: c.Index, op: "<=", val: hi.Val}}, true, false
		}
		return []simpleBPred{
			{col: c.Index, op: ">=", val: lo.Val},
			{col: c.Index, op: "<=", val: hi.Val},
		}, true, false
	case *sql.IsNull:
		c, okc := e.E.(*sql.ColumnRef)
		if !okc || c.Index < 0 {
			return nil, false, false
		}
		op := "isnull"
		if e.Not {
			op = "notnull"
		}
		return []simpleBPred{{col: c.Index, op: op}}, true, false
	}
	return nil, false, false
}

func flipCmp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

// apply refines sel against one column, appending survivors to out.
// Typed fast paths cover the common vector/literal pairings; everything
// else boxes per position with Value.Compare, which keeps row-mode
// semantics for cross-class comparisons.
func (p simpleBPred) apply(vec *vector.Vector, sel, out []int) []int {
	switch p.op {
	case "isnull":
		for _, i := range sel {
			if vec.IsNull(i) {
				out = append(out, i)
			}
		}
		return out
	case "notnull":
		for _, i := range sel {
			if !vec.IsNull(i) {
				out = append(out, i)
			}
		}
		return out
	}
	if vec.Encoded() {
		if refined, ok := applyEncodedCmp(vec, p.op, p.val, sel, out); ok {
			return refined
		}
		for _, i := range sel {
			v := vec.Value(i)
			if v.IsNull() {
				continue
			}
			if cmpMatches(v.Compare(p.val), p.op) {
				out = append(out, i)
			}
		}
		return out
	}
	nulls := vec.Nulls
	switch {
	case vec.Kind == types.KindInt && p.val.K == types.KindInt:
		return applyIntCmp(vec.Ints, nulls, p.val.I, p.op, sel, out)
	case (vec.Kind == types.KindInt || vec.Kind == types.KindFloat) &&
		(p.val.K == types.KindInt || p.val.K == types.KindFloat):
		c := p.val.AsFloat()
		if vec.Kind == types.KindFloat {
			return applyFloatCmp(vec.Floats, nil, nulls, c, p.op, sel, out)
		}
		return applyFloatCmp(nil, vec.Ints, nulls, c, p.op, sel, out)
	case vec.Kind == types.KindString && p.val.K == types.KindString:
		return applyStrCmp(vec.Strs, nulls, p.val.S, p.op, sel, out)
	}
	for _, i := range sel {
		v := vec.Value(i)
		if v.IsNull() {
			continue
		}
		if cmpMatches(v.Compare(p.val), p.op) {
			out = append(out, i)
		}
	}
	return out
}

func cmpMatches(c int, op string) bool {
	switch op {
	case "=":
		return c == 0
	case "<>":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	default:
		return c >= 0
	}
}

// applyIntCmp is the int64 comparison kernel: one branch per row, no
// boxing, per-op loops so the comparison is a single machine op.
func applyIntCmp(ints []int64, nulls []bool, c int64, op string, sel, out []int) []int {
	switch op {
	case "=":
		for _, i := range sel {
			if (nulls == nil || !nulls[i]) && ints[i] == c {
				out = append(out, i)
			}
		}
	case "<>":
		for _, i := range sel {
			if (nulls == nil || !nulls[i]) && ints[i] != c {
				out = append(out, i)
			}
		}
	case "<":
		for _, i := range sel {
			if (nulls == nil || !nulls[i]) && ints[i] < c {
				out = append(out, i)
			}
		}
	case "<=":
		for _, i := range sel {
			if (nulls == nil || !nulls[i]) && ints[i] <= c {
				out = append(out, i)
			}
		}
	case ">":
		for _, i := range sel {
			if (nulls == nil || !nulls[i]) && ints[i] > c {
				out = append(out, i)
			}
		}
	default:
		for _, i := range sel {
			if (nulls == nil || !nulls[i]) && ints[i] >= c {
				out = append(out, i)
			}
		}
	}
	return out
}

// applyFloatCmp compares a float (or int, promoted) column against a
// numeric literal — mirroring Value.Compare's float promotion for mixed
// numeric kinds. Exactly one of floats/ints is non-nil.
func applyFloatCmp(floats []float64, ints []int64, nulls []bool, c float64, op string, sel, out []int) []int {
	at := func(i int) float64 {
		if floats != nil {
			return floats[i]
		}
		return float64(ints[i])
	}
	for _, i := range sel {
		if nulls != nil && nulls[i] {
			continue
		}
		v := at(i)
		var m bool
		switch op {
		case "=":
			m = v == c
		case "<>":
			m = v != c
		case "<":
			m = v < c
		case "<=":
			m = v <= c
		case ">":
			m = v > c
		default:
			m = v >= c
		}
		if m {
			out = append(out, i)
		}
	}
	return out
}

func applyStrCmp(strs []string, nulls []bool, c string, op string, sel, out []int) []int {
	for _, i := range sel {
		if nulls != nil && nulls[i] {
			continue
		}
		v := strs[i]
		var m bool
		switch op {
		case "=":
			m = v == c
		case "<>":
			m = v != c
		case "<":
			m = v < c
		case "<=":
			m = v <= c
		case ">":
			m = v > c
		default:
			m = v >= c
		}
		if m {
			out = append(out, i)
		}
	}
	return out
}

// BatchFilter refines the batch's selection vector in place: simple
// col-op-literal conjuncts run as typed kernels, the residual (OR
// trees, LIKE, arithmetic, IN) evaluates row-at-a-time on a scratch
// row. No column data is copied.
type BatchFilter struct {
	Input BatchOperator
	Pred  sql.Expr

	preds      []simpleBPred
	residual   sql.Expr
	constFalse bool
	scratch    types.Row
}

// Columns implements BatchOperator.
func (f *BatchFilter) Columns() []string { return f.Input.Columns() }

// Open implements BatchOperator.
func (f *BatchFilter) Open() error {
	f.preds, f.residual, f.constFalse = compileBatchPred(f.Pred)
	f.scratch = make(types.Row, len(f.Input.Columns()))
	return f.Input.Open()
}

// NextBatch implements BatchOperator.
func (f *BatchFilter) NextBatch() (*vector.Batch, error) {
	for {
		b, err := f.Input.NextBatch()
		if err != nil {
			return nil, err
		}
		if f.constFalse {
			b.Release()
			continue
		}
		sel := vector.GetSel()
		if b.Sel != nil {
			sel = append(sel, b.Sel...)
		} else {
			for i, n := 0, b.Cap(); i < n; i++ {
				sel = append(sel, i)
			}
		}
		tmp := vector.GetSel()
		for _, p := range f.preds {
			tmp = p.apply(b.Vecs[p.col], sel, tmp[:0])
			sel, tmp = tmp, sel
		}
		if f.residual != nil && len(sel) > 0 {
			tmp = tmp[:0]
			for _, i := range sel {
				for c, v := range b.Vecs {
					f.scratch[c] = v.Value(i)
				}
				v, err := sql.Eval(f.residual, f.scratch)
				if err != nil {
					vector.PutSel(sel)
					vector.PutSel(tmp)
					b.Release()
					return nil, err
				}
				if v.IsTruthy() {
					tmp = append(tmp, i)
				}
			}
			sel, tmp = tmp, sel
		}
		vector.PutSel(tmp)
		if len(sel) == 0 {
			vector.PutSel(sel)
			b.Release()
			continue
		}
		if b.Sel != nil && !b.Shared {
			vector.PutSel(b.Sel)
		}
		b.Sel = sel
		return b, nil
	}
}

// Close implements BatchOperator.
func (f *BatchFilter) Close() error { return f.Input.Close() }

// BatchProject evaluates projection expressions batch-at-a-time. When
// every expression is a bound column reference the output is a zero-copy
// view (shared vectors, shared selection); otherwise rows evaluate on a
// scratch row into a fresh batch.
type BatchProject struct {
	Input BatchOperator
	Exprs []sql.Expr
	Names []string

	refs    []int // column index per expr, or -1
	allRefs bool
	scratch types.Row
}

// Columns implements BatchOperator.
func (p *BatchProject) Columns() []string { return p.Names }

// Open implements BatchOperator.
func (p *BatchProject) Open() error {
	p.refs = make([]int, len(p.Exprs))
	p.allRefs = true
	for i, e := range p.Exprs {
		p.refs[i] = -1
		if c, ok := e.(*sql.ColumnRef); ok && c.Index >= 0 {
			p.refs[i] = c.Index
		} else {
			p.allRefs = false
		}
	}
	p.scratch = make(types.Row, len(p.Input.Columns()))
	return p.Input.Open()
}

// NextBatch implements BatchOperator.
func (p *BatchProject) NextBatch() (*vector.Batch, error) {
	b, err := p.Input.NextBatch()
	if err != nil {
		return nil, err
	}
	if p.allRefs {
		// Owner=b: releasing the view forwards to the input batch, whose
		// pooled storage the view borrows — without it the input would
		// never return to the pool.
		out := &vector.Batch{Vecs: make([]*vector.Vector, len(p.refs)), Sel: b.Sel, Shared: true, Owner: b}
		for i, c := range p.refs {
			out.Vecs[i] = b.Vecs[c]
		}
		return out, nil
	}
	out := vector.NewBatch(len(p.Exprs))
	n := b.NumRows()
	for i := 0; i < n; i++ {
		b.RowInto(p.scratch, i)
		for c, e := range p.Exprs {
			if idx := p.refs[c]; idx >= 0 {
				out.Vecs[c].AppendTyped(p.scratch[idx])
				continue
			}
			v, err := sql.Eval(e, p.scratch)
			if err != nil {
				out.Release()
				b.Release()
				return nil, err
			}
			out.Vecs[c].AppendTyped(v)
		}
	}
	b.Release()
	return out, nil
}

// Close implements BatchOperator.
func (p *BatchProject) Close() error { return p.Input.Close() }

// BatchLimit truncates the stream after N selected rows (N < 0 passes
// everything through).
type BatchLimit struct {
	Input BatchOperator
	N     int
	seen  int
}

// Columns implements BatchOperator.
func (l *BatchLimit) Columns() []string { return l.Input.Columns() }

// Open implements BatchOperator.
func (l *BatchLimit) Open() error { l.seen = 0; return l.Input.Open() }

// NextBatch implements BatchOperator.
func (l *BatchLimit) NextBatch() (*vector.Batch, error) {
	if l.N >= 0 && l.seen >= l.N {
		return nil, ErrEOF
	}
	b, err := l.Input.NextBatch()
	if err != nil {
		return nil, err
	}
	n := b.NumRows()
	if l.N >= 0 && l.seen+n > l.N {
		keep := l.N - l.seen
		if b.Sel != nil {
			b.Sel = b.Sel[:keep]
		} else {
			sel := vector.GetSel()
			for i := 0; i < keep; i++ {
				sel = append(sel, i)
			}
			b.Sel = sel
		}
		n = keep
	}
	l.seen += n
	return b, nil
}

// Close implements BatchOperator.
func (l *BatchLimit) Close() error { return l.Input.Close() }

// BatchSort materializes, orders with the row comparator (identical
// ordering to Sort by construction) and re-batches.
type BatchSort struct {
	Input BatchOperator
	Keys  []SortKey

	out  *BatchesSource
	done bool
}

// Columns implements BatchOperator.
func (s *BatchSort) Columns() []string { return s.Input.Columns() }

// Open implements BatchOperator.
func (s *BatchSort) Open() error {
	s.out, s.done = nil, false
	return s.Input.Open()
}

// NextBatch implements BatchOperator.
func (s *BatchSort) NextBatch() (*vector.Batch, error) {
	if !s.done {
		var rows []types.Row
		for {
			b, err := s.Input.NextBatch()
			if errors.Is(err, ErrEOF) {
				break
			}
			if err != nil {
				return nil, err
			}
			rows = b.AppendRows(rows)
			b.Release()
		}
		if err := sortRows(rows, s.Keys); err != nil {
			return nil, err
		}
		s.out = &BatchesSource{Batches: BatchesFromRows(rows, len(s.Input.Columns()))}
		s.done = true
	}
	return s.out.NextBatch()
}

// Close implements BatchOperator.
func (s *BatchSort) Close() error {
	s.out = nil
	return s.Input.Close()
}
