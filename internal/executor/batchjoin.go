package executor

import (
	"errors"

	"repro/internal/sql"
	"repro/internal/types"
	"repro/internal/vector"
)

// BatchHashJoin is the batch-mode equi-join. Semantics match HashJoin
// exactly (right side builds, left side probes in order, matches emit
// in build insertion order, NULL keys never match, LEFT OUTER emits
// null-extended rows, residual filters the joined layout) — the batch
// win is amortized probing: keys encode into a reused buffer straight
// from column vectors and output rows append into pooled vectors.
type BatchHashJoin struct {
	Left, Right BatchOperator
	// LeftKeys/RightKeys are bound against the respective child layouts.
	LeftKeys, RightKeys []sql.Expr
	Residual            sql.Expr
	Outer               bool

	cols  []string
	built bool
	table map[string][]types.Row

	keyVals  []types.Value
	keyBuf   []byte
	scratchL types.Row // left child layout
	scratchJ types.Row // joined layout (left ++ right)
	lrefs    []int     // LeftKeys column indexes, or nil if any key is complex

	// Per-output-row emission plan, rebuilt per probe batch: leftPos[k]
	// is the physical left-row position, rightRows[k] the matched build
	// row (nil = outer-join null extension). Left columns then emit via
	// typed gathers instead of boxing every value through a scratch row.
	leftPos   []int
	rightRows []types.Row
}

// Columns implements BatchOperator.
func (j *BatchHashJoin) Columns() []string {
	if j.cols == nil {
		j.cols = append(append([]string{}, j.Left.Columns()...), j.Right.Columns()...)
	}
	return j.cols
}

// Open implements BatchOperator.
func (j *BatchHashJoin) Open() error {
	j.built, j.table = false, nil
	lw, rw := len(j.Left.Columns()), len(j.Right.Columns())
	j.scratchL = make(types.Row, lw)
	j.scratchJ = make(types.Row, lw+rw)
	j.keyVals = make([]types.Value, len(j.LeftKeys))
	j.lrefs = columnRefIndexes(j.LeftKeys)
	if err := j.Left.Open(); err != nil {
		return err
	}
	return j.Right.Open()
}

// columnRefIndexes returns the bound column index per expression, or
// nil if any expression is not a plain column reference.
func columnRefIndexes(exprs []sql.Expr) []int {
	out := make([]int, len(exprs))
	for i, e := range exprs {
		c, ok := e.(*sql.ColumnRef)
		if !ok || c.Index < 0 {
			return nil
		}
		out[i] = c.Index
	}
	return out
}

// build hashes the right input, materializing rows only for non-NULL
// keys (NULL join keys never match, so their rows are dead weight).
func (j *BatchHashJoin) build() error {
	j.table = make(map[string][]types.Row)
	rrefs := columnRefIndexes(j.RightKeys)
	scratch := make(types.Row, len(j.Right.Columns()))
	for {
		b, err := j.Right.NextBatch()
		if errors.Is(err, ErrEOF) {
			break
		}
		if err != nil {
			return err
		}
		n := b.NumRows()
		for i := 0; i < n; i++ {
			ok := true
			if rrefs != nil {
				p := b.RowIdx(i)
				for k, c := range rrefs {
					v := b.Vecs[c].Value(p)
					if v.IsNull() {
						ok = false
						break
					}
					j.keyVals[k] = v
				}
			} else {
				b.RowInto(scratch, i)
				for k, e := range j.RightKeys {
					v, err := sql.Eval(e, scratch)
					if err != nil {
						b.Release()
						return err
					}
					if v.IsNull() {
						ok = false
						break
					}
					j.keyVals[k] = v
				}
			}
			if !ok {
				continue
			}
			j.keyBuf = types.EncodeKey(j.keyBuf[:0], j.keyVals...)
			key := string(j.keyBuf)
			j.table[key] = append(j.table[key], b.Row(i))
		}
		b.Release()
	}
	j.built = true
	return nil
}

// NextBatch implements BatchOperator. Each input batch probes into one
// output batch (sized by the match cardinality), preserving row-mode
// emission order.
func (j *BatchHashJoin) NextBatch() (*vector.Batch, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	lw := len(j.Left.Columns())
	rw := len(j.Right.Columns())
	// scratchL is only consulted for complex key expressions and
	// residual evaluation; the common equi-join path probes straight
	// from the vectors and never boxes the left row.
	needScratch := j.lrefs == nil || j.Residual != nil
	for {
		b, err := j.Left.NextBatch()
		if err != nil {
			return nil, err // includes ErrEOF
		}
		j.leftPos = j.leftPos[:0]
		j.rightRows = j.rightRows[:0]
		n := b.NumRows()
		for i := 0; i < n; i++ {
			if needScratch {
				b.RowInto(j.scratchL, i)
			}
			matches, ok, err := j.probe(b, i)
			if err != nil {
				b.Release()
				return nil, err
			}
			p := b.RowIdx(i)
			if !ok || len(matches) == 0 {
				if j.Outer {
					j.leftPos = append(j.leftPos, p)
					j.rightRows = append(j.rightRows, nil)
				}
				continue
			}
			if j.Outer && j.Residual != nil {
				// Residual-filtered LEFT OUTER: null-extend when no match
				// survives the residual (same as the row path).
				emitted := false
				for _, m := range matches {
					pass, err := j.residualPass(m)
					if err != nil {
						b.Release()
						return nil, err
					}
					if pass {
						j.leftPos = append(j.leftPos, p)
						j.rightRows = append(j.rightRows, m)
						emitted = true
					}
				}
				if !emitted {
					j.leftPos = append(j.leftPos, p)
					j.rightRows = append(j.rightRows, nil)
				}
				continue
			}
			for _, m := range matches {
				if j.Residual != nil {
					pass, err := j.residualPass(m)
					if err != nil {
						b.Release()
						return nil, err
					}
					if !pass {
						continue
					}
				}
				j.leftPos = append(j.leftPos, p)
				j.rightRows = append(j.rightRows, m)
			}
		}
		if len(j.leftPos) == 0 {
			b.Release()
			continue
		}
		out := vector.NewBatch(lw + rw)
		for c := 0; c < lw; c++ {
			out.Vecs[c].AppendGather(b.Vecs[c], j.leftPos)
		}
		for c := 0; c < rw; c++ {
			out.Vecs[lw+c].AppendRowsColumn(j.rightRows, c)
		}
		b.Release()
		return out, nil
	}
}

// probe computes the probe key for logical row i (already materialized
// into scratchL) and returns its build-side matches.
func (j *BatchHashJoin) probe(b *vector.Batch, i int) ([]types.Row, bool, error) {
	if j.lrefs != nil {
		p := b.RowIdx(i)
		for k, c := range j.lrefs {
			v := b.Vecs[c].Value(p)
			if v.IsNull() {
				return nil, false, nil
			}
			j.keyVals[k] = v
		}
	} else {
		for k, e := range j.LeftKeys {
			v, err := sql.Eval(e, j.scratchL)
			if err != nil {
				return nil, false, err
			}
			if v.IsNull() {
				return nil, false, nil
			}
			j.keyVals[k] = v
		}
	}
	j.keyBuf = types.EncodeKey(j.keyBuf[:0], j.keyVals...)
	return j.table[string(j.keyBuf)], true, nil
}

// residualPass evaluates the residual on scratchL ++ match.
func (j *BatchHashJoin) residualPass(match types.Row) (bool, error) {
	copy(j.scratchJ, j.scratchL)
	copy(j.scratchJ[len(j.scratchL):], match)
	v, err := sql.Eval(j.Residual, j.scratchJ)
	if err != nil {
		return false, err
	}
	return v.IsTruthy(), nil
}

// Close implements BatchOperator.
func (j *BatchHashJoin) Close() error {
	j.table = nil
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}
