// Batch execution mode (§VI-C/§VI-E): operators exchange column-major
// vector.Batch values (~1024 rows) instead of single rows. Iteration,
// predicate evaluation, group-key hashing and exchange locking amortize
// over the batch, which is where the Fig. 10 MPP and column-index
// speedups come from. Row mode (Operator) remains the TP path and the
// equivalence baseline; adapters below bridge the two worlds so every
// plan shape stays executable in either mode.
package executor

import (
	"errors"

	"repro/internal/types"
	"repro/internal/vector"
)

// BatchOperator is the batch-at-a-time volcano interface. NextBatch
// transfers ownership of the returned batch to the caller (see the
// vector.Batch ownership protocol); it returns ErrEOF when drained.
type BatchOperator interface {
	Columns() []string
	Open() error
	NextBatch() (*vector.Batch, error)
	Close() error
}

// BatchesSource serves pre-built batches (columnarized DN responses,
// zero-copy column-index scans, test fixtures).
type BatchesSource struct {
	Cols    []string
	Batches []*vector.Batch
	pos     int
}

// Columns implements BatchOperator.
func (s *BatchesSource) Columns() []string { return s.Cols }

// Open implements BatchOperator.
func (s *BatchesSource) Open() error { s.pos = 0; return nil }

// NextBatch implements BatchOperator.
func (s *BatchesSource) NextBatch() (*vector.Batch, error) {
	for s.pos < len(s.Batches) {
		b := s.Batches[s.pos]
		s.pos++
		if b != nil && b.NumRows() > 0 {
			return b, nil
		}
	}
	return nil, ErrEOF
}

// Close implements BatchOperator.
func (s *BatchesSource) Close() error { return nil }

// BatchCallbackSource pulls batches lazily from a fetch function (how
// DN shard scans stream into the batch executor; fetch returns nil when
// drained).
type BatchCallbackSource struct {
	Cols  []string
	Fetch func() (*vector.Batch, error)
	done  bool
}

// Columns implements BatchOperator.
func (s *BatchCallbackSource) Columns() []string { return s.Cols }

// Open implements BatchOperator.
func (s *BatchCallbackSource) Open() error { return nil }

// NextBatch implements BatchOperator.
func (s *BatchCallbackSource) NextBatch() (*vector.Batch, error) {
	for !s.done {
		b, err := s.Fetch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			s.done = true
			break
		}
		if b.NumRows() > 0 {
			return b, nil
		}
		b.Release()
	}
	return nil, ErrEOF
}

// Close implements BatchOperator.
func (s *BatchCallbackSource) Close() error { return nil }

// NewBatchRowsSource columnarizes a row slice into batches of the
// default size (the batch analogue of NewRowsSource).
func NewBatchRowsSource(cols []string, rows []types.Row) *BatchesSource {
	return &BatchesSource{Cols: cols, Batches: BatchesFromRows(rows, len(cols))}
}

// BatchesFromRows splits rows into DefaultSize batches, ncols wide.
func BatchesFromRows(rows []types.Row, ncols int) []*vector.Batch {
	var out []*vector.Batch
	for len(rows) > 0 {
		n := vector.DefaultSize
		if n > len(rows) {
			n = len(rows)
		}
		out = append(out, vector.FromRows(rows[:n], ncols))
		rows = rows[n:]
	}
	return out
}

// RowToBatch adapts a row operator to the batch interface by buffering
// DefaultSize rows per batch — the bridge for plan shapes with no
// native batch implementation (GSI routes, point lookups).
type RowToBatch struct {
	Op Operator
}

// Columns implements BatchOperator.
func (a *RowToBatch) Columns() []string { return a.Op.Columns() }

// Open implements BatchOperator.
func (a *RowToBatch) Open() error { return a.Op.Open() }

// NextBatch implements BatchOperator.
func (a *RowToBatch) NextBatch() (*vector.Batch, error) {
	b := vector.NewBatch(len(a.Op.Columns()))
	for b.NumRows() < vector.DefaultSize {
		row, err := a.Op.Next()
		if errors.Is(err, ErrEOF) {
			break
		}
		if err != nil {
			b.Release()
			return nil, err
		}
		b.AppendRow(row)
	}
	if b.NumRows() == 0 {
		b.Release()
		return nil, ErrEOF
	}
	return b, nil
}

// Close implements BatchOperator.
func (a *RowToBatch) Close() error { return a.Op.Close() }

// BatchToRow adapts a batch operator to the row interface (final
// merges that still run row-at-a-time, mixed-mode plans).
type BatchToRow struct {
	Op  BatchOperator
	cur *vector.Batch
	pos int
}

// Columns implements Operator.
func (a *BatchToRow) Columns() []string { return a.Op.Columns() }

// Open implements Operator.
func (a *BatchToRow) Open() error {
	a.cur, a.pos = nil, 0
	return a.Op.Open()
}

// Next implements Operator.
func (a *BatchToRow) Next() (types.Row, error) {
	for {
		if a.cur != nil && a.pos < a.cur.NumRows() {
			row := a.cur.Row(a.pos)
			a.pos++
			return row, nil
		}
		if a.cur != nil {
			a.cur.Release()
			a.cur = nil
		}
		b, err := a.Op.NextBatch()
		if err != nil {
			return nil, err
		}
		a.cur, a.pos = b, 0
	}
}

// Close implements Operator.
func (a *BatchToRow) Close() error {
	if a.cur != nil {
		a.cur.Release()
		a.cur = nil
	}
	return a.Op.Close()
}

// CollectBatch drains a batch operator into rows (the coordinator's
// final gather in batch mode).
func CollectBatch(op BatchOperator) ([]types.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []types.Row
	for {
		b, err := op.NextBatch()
		if errors.Is(err, ErrEOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = b.AppendRows(out)
		b.Release()
	}
}
