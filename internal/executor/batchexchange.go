package executor

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/htap"
	"repro/internal/obs"
	"repro/internal/vector"
)

// DefaultQueueHighWater is the exchange queue bound in batches: with
// ~1024-row batches, 8 buffered batches keep a fragment pipeline busy
// without letting a fast producer balloon memory.
const DefaultQueueHighWater = 8

// BatchQueue is the batch-mode exchange buffer between fragments: one
// queue operation moves ~1024 rows, and the queue is bounded — a
// producer that reaches the high-water mark blocks (or, on the htap
// scheduler, parks with JobBlocked) until the consumer drains.
type BatchQueue struct {
	// OnWait, when non-nil, is invoked after each consumer wait on an
	// empty queue with the wait's duration (tracing hook). Set it before
	// the consumer starts popping; it is read without locking.
	OnWait func(d time.Duration)

	mu      sync.Mutex
	cond    *sync.Cond
	batches []*vector.Batch
	closed  bool
	err     error
	high    int
	space   chan struct{} // closed when space frees or the queue closes
}

// NewBatchQueue creates a queue bounded at high batches (<=0 uses
// DefaultQueueHighWater).
func NewBatchQueue(high int) *BatchQueue {
	if high <= 0 {
		high = DefaultQueueHighWater
	}
	q := &BatchQueue{high: high}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// TryPush enqueues b, taking ownership. A closed queue drops (and
// recycles) the batch — the consumer aborted. When the queue is full it
// returns ok=false plus a channel that fires when space frees, so
// scheduler-driven producers can park without holding a worker.
func (q *BatchQueue) TryPush(b *vector.Batch) (ok bool, wait <-chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		b.Release()
		return true, nil
	}
	if len(q.batches) >= q.high {
		if q.space == nil {
			q.space = make(chan struct{})
		}
		return false, q.space
	}
	q.batches = append(q.batches, b)
	q.cond.Signal()
	return true, nil
}

// Push blocks until the batch is enqueued (plain-goroutine producers).
func (q *BatchQueue) Push(b *vector.Batch) {
	for {
		ok, wait := q.TryPush(b)
		if ok {
			return
		}
		<-wait
	}
}

// CloseWith marks the stream complete (err nil) or failed and releases
// any blocked producers.
func (q *BatchQueue) CloseWith(err error) {
	q.mu.Lock()
	if !q.closed {
		// Buffered batches stay poppable; only future pushes drop.
		q.closed = true
		q.err = err
		q.cond.Broadcast()
		q.notifySpace()
	}
	q.mu.Unlock()
}

// notifySpace wakes blocked producers; callers hold mu.
func (q *BatchQueue) notifySpace() {
	if q.space != nil {
		close(q.space)
		q.space = nil
	}
}

// Pop blocks for the next batch; ErrEOF at clean end. Time spent
// waiting on an empty queue (the consumer stalled on its producer) is
// accounted to the package exchange-wait counters and the OnWait hook.
func (q *BatchQueue) Pop() (*vector.Batch, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.batches) == 0 && !q.closed {
		start := time.Now()
		for len(q.batches) == 0 && !q.closed {
			q.cond.Wait()
		}
		d := time.Since(start)
		exchangeWaits.Add(1)
		exchangeWaitNanos.Add(int64(d))
		if q.OnWait != nil {
			q.OnWait(d)
		}
	}
	if len(q.batches) > 0 {
		b := q.batches[0]
		q.batches = q.batches[1:]
		if len(q.batches) < q.high {
			q.notifySpace()
		}
		return b, nil
	}
	if q.err != nil {
		return nil, q.err
	}
	return nil, ErrEOF
}

// ArmDeadline poisons the queue when the statement deadline passes:
// CloseWith(obs.ErrDeadlineExceeded) releases every parked producer
// (TryPush waiters, JobBlocked fragments) and surfaces the error to the
// consumer once the buffer drains — a timed-out statement frees its
// exchange instead of wedging scheduler workers. A zero deadline arms
// nothing; a queue that finishes first makes the late fire a no-op.
func (q *BatchQueue) ArmDeadline(clock obs.Clock, deadline time.Time) {
	if deadline.IsZero() {
		return
	}
	clock = obs.Or(clock)
	fired, _ := obs.After(clock, clock.Until(deadline))
	go func() {
		<-fired
		q.CloseWith(fmt.Errorf("batch exchange: %w", obs.ErrDeadlineExceeded))
	}()
}

// Len reports buffered batches (metrics/backpressure tests).
func (q *BatchQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.batches)
}

// Exchange-wait accounting across all BatchQueues in the process.
var (
	exchangeWaits     atomic.Int64
	exchangeWaitNanos atomic.Int64
)

// ExchangeWaitStats reports how often batch-exchange consumers stalled
// on an empty queue and for how long in total.
func ExchangeWaitStats() (waits int64, total time.Duration) {
	return exchangeWaits.Load(), time.Duration(exchangeWaitNanos.Load())
}

// BatchQueueSource adapts a BatchQueue to the BatchOperator interface.
type BatchQueueSource struct {
	Cols []string
	Q    *BatchQueue
}

// Columns implements BatchOperator.
func (s *BatchQueueSource) Columns() []string { return s.Cols }

// Open implements BatchOperator.
func (s *BatchQueueSource) Open() error { return nil }

// NextBatch implements BatchOperator.
func (s *BatchQueueSource) NextBatch() (*vector.Batch, error) { return s.Q.Pop() }

// Close implements BatchOperator.
func (s *BatchQueueSource) Close() error {
	s.Q.CloseWith(nil)
	return nil
}

// BatchGather merges several batch inputs by draining each in turn —
// the same order Gather uses, so row and batch mode merge identically.
type BatchGather struct {
	Cols   []string
	Inputs []BatchOperator
	cur    int
}

// Columns implements BatchOperator.
func (g *BatchGather) Columns() []string { return g.Cols }

// Open implements BatchOperator.
func (g *BatchGather) Open() error {
	g.cur = 0
	for _, in := range g.Inputs {
		if err := in.Open(); err != nil {
			return err
		}
	}
	return nil
}

// NextBatch implements BatchOperator.
func (g *BatchGather) NextBatch() (*vector.Batch, error) {
	for g.cur < len(g.Inputs) {
		b, err := g.Inputs[g.cur].NextBatch()
		if errors.Is(err, ErrEOF) {
			g.cur++
			continue
		}
		return b, err
	}
	return nil, ErrEOF
}

// Close implements BatchOperator.
func (g *BatchGather) Close() error {
	var first error
	for _, in := range g.Inputs {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// BatchFragmentJob pumps one fragment's batch operator tree into an
// exchange queue on the htap scheduler. The slice deadline is checked
// once per batch (~1024 rows), not per row, and a full queue parks the
// job with JobBlocked so backpressure frees the worker instead of
// spinning it.
type BatchFragmentJob struct {
	Op  BatchOperator
	Out *BatchQueue

	opened  bool
	pending *vector.Batch // batch awaiting queue space
}

// Run implements htap.Job.
func (f *BatchFragmentJob) Run(slice time.Duration) (htap.JobState, <-chan struct{}, error) {
	if !f.opened {
		if err := f.Op.Open(); err != nil {
			f.Out.CloseWith(err)
			return htap.JobDone, nil, err
		}
		f.opened = true
	}
	deadline := time.Now().Add(slice)
	for {
		if f.pending != nil {
			ok, wait := f.Out.TryPush(f.pending)
			if !ok {
				return htap.JobBlocked, wait, nil
			}
			f.pending = nil
		}
		b, err := f.Op.NextBatch()
		if errors.Is(err, ErrEOF) {
			f.Out.CloseWith(nil)
			_ = f.Op.Close()
			return htap.JobDone, nil, nil
		}
		if err != nil {
			f.Out.CloseWith(err)
			_ = f.Op.Close()
			return htap.JobDone, nil, err
		}
		ok, wait := f.Out.TryPush(b)
		if !ok {
			f.pending = b
			return htap.JobBlocked, wait, nil
		}
		if time.Now().After(deadline) {
			return htap.JobYielded, nil, nil
		}
	}
}

// BatchFragmentAssignment pairs a batch fragment with its CN scheduler.
type BatchFragmentAssignment struct {
	Op    BatchOperator
	Sched *htap.Scheduler
}

// RunBatchFragments executes batch fragments in parallel (one bounded
// exchange queue each) and returns a BatchGather over their outputs.
// queueHigh <= 0 uses DefaultQueueHighWater.
func RunBatchFragments(group htap.Group, assignments []BatchFragmentAssignment, queueHigh int) *BatchGather {
	return RunBatchFragmentsUntil(group, assignments, queueHigh, nil, time.Time{})
}

// RunBatchFragmentsUntil is RunBatchFragments with every exchange queue
// armed against the statement deadline (zero = unarmed, identical to
// RunBatchFragments).
func RunBatchFragmentsUntil(group htap.Group, assignments []BatchFragmentAssignment, queueHigh int, clock obs.Clock, deadline time.Time) *BatchGather {
	inputs := make([]BatchOperator, len(assignments))
	for i, a := range assignments {
		q := NewBatchQueue(queueHigh)
		q.ArmDeadline(clock, deadline)
		job := &BatchFragmentJob{Op: a.Op, Out: q}
		inputs[i] = &BatchQueueSource{Cols: a.Op.Columns(), Q: q}
		if a.Sched != nil {
			a.Sched.Submit(group, job)
		} else {
			// No scheduler (plain TP path): run on a goroutine, honoring
			// backpressure by sleeping on the wake channel.
			go func() {
				for {
					state, wake, _ := job.Run(time.Hour)
					switch state {
					case htap.JobDone:
						return
					case htap.JobBlocked:
						if wake != nil {
							<-wake
						}
					}
				}
			}()
		}
	}
	var cols []string
	if len(assignments) > 0 {
		cols = assignments[0].Op.Columns()
	}
	return &BatchGather{Cols: cols, Inputs: inputs}
}
