package executor

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sql"
	"repro/internal/types"
	"repro/internal/vector"
)

// BatchHashAgg is the batch-mode hash aggregate. It reuses aggState, so
// Complete/Partial/Final semantics (and AVG's two-column partial state)
// are identical to HashAgg; groups emit in sorted encoded-key order like
// the row path. The batch win: group keys box only the key columns and
// encode into a reused buffer (no per-row sql.Eval, no allocation on
// group hits), aggregate arguments read straight from vectors, and
// global aggregates over typed vectors run fused update kernels.
//
// Float SUM/AVG accumulation folds strictly in row order — including
// inside the fused kernels — so results are bit-identical to row mode
// (float addition is not associative; equivalence demands the same
// fold order, not just the same set of addends).
type BatchHashAgg struct {
	Input   BatchOperator
	GroupBy []sql.Expr
	Aggs    []AggSpec
	Mode    AggMode
	// Names overrides output column names (len = group cols + agg cols).
	Names []string

	groups map[string]*aggGroup
	order  []string
	out    *BatchesSource
	built  bool

	grefs   []int // GroupBy column indexes, or nil
	arefs   []int // per-agg Arg column index, -1 = complex, -2 = star
	keyVals []types.Value
	keyBuf  []byte
	scratch types.Row
}

// Columns implements BatchOperator (same naming scheme as HashAgg).
func (h *BatchHashAgg) Columns() []string {
	if h.Names != nil {
		return h.Names
	}
	return (&HashAgg{GroupBy: h.GroupBy, Aggs: h.Aggs, Mode: h.Mode}).Columns()
}

// Open implements BatchOperator.
func (h *BatchHashAgg) Open() error {
	h.groups, h.order, h.out, h.built = nil, nil, nil, false
	h.grefs = columnRefIndexes(h.GroupBy)
	h.arefs = make([]int, len(h.Aggs))
	for i, a := range h.Aggs {
		h.arefs[i] = -1
		if a.Star {
			h.arefs[i] = -2
		} else if c, ok := a.Arg.(*sql.ColumnRef); ok && c.Index >= 0 {
			h.arefs[i] = c.Index
		}
	}
	h.keyVals = make([]types.Value, len(h.GroupBy))
	h.scratch = make(types.Row, len(h.Input.Columns()))
	return h.Input.Open()
}

// NextBatch implements BatchOperator.
func (h *BatchHashAgg) NextBatch() (*vector.Batch, error) {
	if !h.built {
		if err := h.build(); err != nil {
			return nil, err
		}
	}
	return h.out.NextBatch()
}

func (h *BatchHashAgg) build() error {
	h.groups = make(map[string]*aggGroup)
	fused := h.fusable()
	for {
		b, err := h.Input.NextBatch()
		if errors.Is(err, ErrEOF) {
			break
		}
		if err != nil {
			return err
		}
		if fused {
			err = h.updateGlobalFused(b)
		} else {
			err = h.updateBatch(b)
		}
		b.Release()
		if err != nil {
			return err
		}
	}
	// Global aggregation over zero rows still yields one row (SQL).
	if len(h.GroupBy) == 0 && len(h.groups) == 0 {
		h.groups[""] = h.newGroup(nil)
	}
	h.order = make([]string, 0, len(h.groups))
	for k := range h.groups {
		h.order = append(h.order, k)
	}
	sort.Strings(h.order)
	ncols := len(h.Columns())
	var rows []types.Row
	for _, k := range h.order {
		g := h.groups[k]
		out := append(types.Row{}, g.keyVals...)
		for _, st := range g.states {
			out = append(out, st.final(h.Mode)...)
		}
		rows = append(rows, out)
	}
	h.out = &BatchesSource{Batches: BatchesFromRows(rows, ncols)}
	h.built = true
	return nil
}

// fusable reports whether the global fused kernels apply: no grouping,
// direct column (or star) arguments, no DISTINCT, not merging partials.
func (h *BatchHashAgg) fusable() bool {
	if len(h.GroupBy) != 0 || h.Mode == AggFinal {
		return false
	}
	for i, a := range h.Aggs {
		if a.Distinct || h.arefs[i] == -1 {
			return false
		}
	}
	return true
}

func (h *BatchHashAgg) newGroup(keyVals types.Row) *aggGroup {
	g := &aggGroup{keyVals: keyVals}
	for _, spec := range h.Aggs {
		g.states = append(g.states, newAggState(spec))
	}
	return g
}

// globalGroup returns the singleton group for non-grouped aggregation.
func (h *BatchHashAgg) globalGroup() *aggGroup {
	g, ok := h.groups[""]
	if !ok {
		g = h.newGroup(nil)
		h.groups[""] = g
	}
	return g
}

// updateGlobalFused runs the per-aggregate update kernels over one
// batch for global (non-grouped) aggregation.
func (h *BatchHashAgg) updateGlobalFused(b *vector.Batch) error {
	g := h.globalGroup()
	for i, spec := range h.Aggs {
		st := g.states[i]
		if h.arefs[i] == -2 { // COUNT(*)
			st.count += int64(b.NumRows())
			continue
		}
		vec := b.Vecs[h.arefs[i]]
		switch spec.Func {
		case "COUNT":
			st.count += countNonNull(vec, b.Sel)
		case "SUM", "AVG":
			sumKernel(st, vec, b.Sel)
		case "MIN", "MAX":
			minmaxKernel(st, vec, b.Sel, spec.Func == "MIN")
		}
	}
	return nil
}

func countNonNull(v *vector.Vector, sel []int) int64 {
	var n int64
	if sel != nil {
		for _, i := range sel {
			if !v.IsNull(i) {
				n++
			}
		}
		return n
	}
	for i, l := 0, v.Len(); i < l; i++ {
		if !v.IsNull(i) {
			n++
		}
	}
	return n
}

// forSel iterates the selected physical positions.
func forSel(v *vector.Vector, sel []int, fn func(i int)) {
	if sel != nil {
		for _, i := range sel {
			fn(i)
		}
		return
	}
	for i, l := 0, v.Len(); i < l; i++ {
		fn(i)
	}
}

// sumKernel folds a column into st.sum/st.count with Value.Add's
// promotion semantics: the integer fast path only runs while the
// accumulator is still integral (or empty) over an int column; any
// float anywhere switches to the in-order float fold so the result is
// bit-identical to the row path's left fold.
func sumKernel(st *aggState, v *vector.Vector, sel []int) {
	if v.Encoded() {
		if !sumEncoded(st, v, sel) {
			forSel(v, sel, func(i int) { st.add(v.Value(i)) })
		}
		return
	}
	if v.Kind == types.KindInt && (st.sum.IsNull() || st.sum.K == types.KindInt) {
		var acc int64
		var nn int64
		nulls := v.Nulls
		if sel != nil {
			for _, i := range sel {
				if nulls == nil || !nulls[i] {
					acc += v.Ints[i]
					nn++
				}
			}
		} else {
			for i, l := 0, v.Len(); i < l; i++ {
				if nulls == nil || !nulls[i] {
					acc += v.Ints[i]
					nn++
				}
			}
		}
		if nn > 0 {
			if st.sum.IsNull() {
				st.sum = types.Int(acc)
			} else {
				st.sum = types.Int(st.sum.I + acc)
			}
			st.count += nn
		}
		return
	}
	if v.Kind == types.KindFloat || v.Kind == types.KindInt {
		started := !st.sum.IsNull()
		var acc float64
		if started {
			acc = st.sum.AsFloat()
		}
		intSum := st.sum.K == types.KindInt // still integral: first float value promotes
		var accI int64
		if intSum {
			accI = st.sum.I
		}
		nulls := v.Nulls
		forSel(v, sel, func(i int) {
			if nulls != nil && nulls[i] {
				return
			}
			var f float64
			if v.Kind == types.KindFloat {
				f = v.Floats[i]
			} else {
				f = float64(v.Ints[i])
			}
			switch {
			case !started:
				// First value: Null.Add(v) keeps v's kind.
				if v.Kind == types.KindInt {
					intSum, accI = true, v.Ints[i]
				} else {
					acc = f
				}
				started = true
			case intSum && v.Kind == types.KindInt:
				accI += v.Ints[i]
			case intSum:
				acc, intSum = float64(accI)+f, false
			default:
				acc += f
			}
			st.count++
		})
		if started {
			if intSum {
				st.sum = types.Int(accI)
			} else {
				st.sum = types.Float(acc)
			}
		}
		return
	}
	// Boxed/string columns: defer to the row-path accumulator.
	forSel(v, sel, func(i int) { st.add(v.Value(i)) })
}

func minmaxKernel(st *aggState, v *vector.Vector, sel []int, min bool) {
	forSel(v, sel, func(i int) {
		val := v.Value(i)
		if val.IsNull() {
			return
		}
		if min {
			if st.min.IsNull() || val.Compare(st.min) < 0 {
				st.min = val
			}
		} else {
			if st.max.IsNull() || val.Compare(st.max) > 0 {
				st.max = val
			}
		}
	})
}

// updateBatch is the grouped (or partial-merge) path: group keys read
// straight from vectors into a reused encode buffer; complex
// expressions fall back to a scratch row.
func (h *BatchHashAgg) updateBatch(b *vector.Batch) error {
	n := b.NumRows()
	// Size the scratch row from the live batch: sources fed by exchange
	// gathers may not know their width until data arrives.
	if len(h.scratch) < b.NumCols() {
		h.scratch = make(types.Row, b.NumCols())
	}
	needRow := h.grefs == nil
	if !needRow && h.Mode != AggFinal {
		for i := range h.Aggs {
			if h.arefs[i] == -1 {
				needRow = true
				break
			}
		}
	}
	for i := 0; i < n; i++ {
		p := b.RowIdx(i)
		if needRow {
			b.RowInto(h.scratch, i)
		}
		if h.grefs != nil {
			for k, c := range h.grefs {
				h.keyVals[k] = b.Vecs[c].Value(p)
			}
		} else {
			for k, e := range h.GroupBy {
				v, err := sql.Eval(e, h.scratch)
				if err != nil {
					return err
				}
				h.keyVals[k] = v
			}
		}
		h.keyBuf = types.EncodeKey(h.keyBuf[:0], h.keyVals...)
		g, ok := h.groups[string(h.keyBuf)]
		if !ok {
			g = h.newGroup(append(types.Row{}, h.keyVals...))
			h.groups[string(h.keyBuf)] = g
		}
		if h.Mode == AggFinal {
			// Input rows are [groupCols..., stateCols...]: merge states.
			col := len(h.GroupBy)
			for k, spec := range h.Aggs {
				w := spec.stateWidth()
				if col+w > b.NumCols() {
					return fmt.Errorf("executor: partial state row too narrow: %d cols", b.NumCols())
				}
				for s := 0; s < w; s++ {
					h.scratch[s] = b.Vecs[col+s].Value(p)
				}
				g.states[k].merge(h.scratch[:w])
				col += w
			}
			continue
		}
		for k, spec := range h.Aggs {
			var v types.Value
			switch h.arefs[k] {
			case -2:
				v = types.Int(1)
			case -1:
				var err error
				v, err = sql.Eval(spec.Arg, h.scratch)
				if err != nil {
					return err
				}
			default:
				v = b.Vecs[h.arefs[k]].Value(p)
			}
			g.states[k].add(v)
		}
	}
	return nil
}

// Close implements BatchOperator.
func (h *BatchHashAgg) Close() error {
	h.groups, h.out = nil, nil
	return h.Input.Close()
}
