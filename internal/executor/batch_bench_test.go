package executor

import (
	"fmt"
	"testing"

	"repro/internal/sql"
	"repro/internal/types"
)

// Micro-benchmark for the vectorized engine: the same filter→join→agg
// pipeline in row and batch mode at several cardinalities. Batch mode
// includes columnarization of the row inputs (as the DN does once at
// the source), so the comparison charges batch mode its full cost.

var factCols = []string{"k", "a", "b"}
var dimCols = []string{"k", "name"}

func benchData(n int) (fact, dim []types.Row) {
	fact = make([]types.Row, n)
	for i := 0; i < n; i++ {
		fact[i] = types.Row{
			types.Int(int64(i % 100)),
			types.Float(float64(i) * 0.5),
			types.Int(int64(i % 1000)),
		}
	}
	dim = make([]types.Row, 100)
	for k := 0; k < 100; k++ {
		dim[k] = types.Row{types.Int(int64(k)), types.Str(fmt.Sprintf("name%d", k%10))}
	}
	return fact, dim
}

func benchAggs() []AggSpec {
	return []AggSpec{{Func: "COUNT", Star: true}, {Func: "SUM", Arg: col(1)}}
}

var benchPred = bin("<", col(2), lit(types.Int(500)))

func rowPipeline(fact, dim []types.Row) Operator {
	f := &Filter{Input: NewRowsSource(factCols, fact), Pred: benchPred}
	j := &HashJoin{Left: f, Right: NewRowsSource(dimCols, dim),
		LeftKeys: []sql.Expr{col(0)}, RightKeys: []sql.Expr{col(0)}}
	return &HashAgg{Input: j, GroupBy: []sql.Expr{col(4)},
		Aggs: benchAggs(), Mode: AggComplete, Names: []string{"name", "cnt", "sum"}}
}

func batchPipeline(fact, dim []types.Row) BatchOperator {
	f := &BatchFilter{Input: NewBatchRowsSource(factCols, fact), Pred: benchPred}
	j := &BatchHashJoin{Left: f, Right: NewBatchRowsSource(dimCols, dim),
		LeftKeys: []sql.Expr{col(0)}, RightKeys: []sql.Expr{col(0)}}
	return &BatchHashAgg{Input: j, GroupBy: []sql.Expr{col(4)},
		Aggs: benchAggs(), Mode: AggComplete, Names: []string{"name", "cnt", "sum"}}
}

// BenchmarkExecBatchVsRow is the acceptance gate for the batch engine:
// batch mode must beat row mode by >=2x on the 100k-row pipeline.
func BenchmarkExecBatchVsRow(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		fact, dim := benchData(n)
		b.Run(fmt.Sprintf("rows=%d/row", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Collect(rowPipeline(fact, dim)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("rows=%d/batch", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := CollectBatch(batchPipeline(fact, dim)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBenchPipelinesAgree pins the two benchmark pipelines to identical
// output, so the speedup comparison stays apples-to-apples.
func TestBenchPipelinesAgree(t *testing.T) {
	fact, dim := benchData(10_000)
	want, err := Collect(rowPipeline(fact, dim))
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectBatch(batchPipeline(fact, dim))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "bench-pipeline", got, want)
}
