// Package executor implements PolarDB-X's query execution operators and
// the MPP fragment machinery (paper §VI-C): volcano-style operators
// (scan sources, filter, project, hash join, nested-loop join, hash
// aggregation with partial/final split, sort, limit), bounded exchange
// queues with producer backpressure between fragments, and cooperative
// fragment jobs that run on the htap time-sliced scheduler. Every
// operator also has a batch-mode counterpart (BatchOperator) that moves
// column-major vector.Batch values instead of rows.
package executor

import (
	"errors"
	"sync"

	"repro/internal/types"
)

// ErrEOF signals operator exhaustion.
var ErrEOF = errors.New("executor: end of rows")

// Operator is the volcano iterator interface. Columns() names the output
// layout so the planner can bind expressions positionally.
type Operator interface {
	Columns() []string
	Open() error
	Next() (types.Row, error)
	Close() error
}

// RowsSource serves a materialized row slice (DN scan responses, test
// fixtures, VALUES lists).
type RowsSource struct {
	Cols []string
	Rows []types.Row
	pos  int
}

// NewRowsSource builds a source over rows with the given column names.
func NewRowsSource(cols []string, rows []types.Row) *RowsSource {
	return &RowsSource{Cols: cols, Rows: rows}
}

// Columns implements Operator.
func (s *RowsSource) Columns() []string { return s.Cols }

// Open implements Operator.
func (s *RowsSource) Open() error { s.pos = 0; return nil }

// Next implements Operator.
func (s *RowsSource) Next() (types.Row, error) {
	if s.pos >= len(s.Rows) {
		return nil, ErrEOF
	}
	r := s.Rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *RowsSource) Close() error { return nil }

// CallbackSource pulls rows lazily from a fetch function returning row
// batches; it is how DN shard scans stream into the executor without
// materializing everything (fetch returns nil when drained).
type CallbackSource struct {
	Cols  []string
	Fetch func() ([]types.Row, error)
	buf   []types.Row
	pos   int
	done  bool
}

// Columns implements Operator.
func (s *CallbackSource) Columns() []string { return s.Cols }

// Open implements Operator.
func (s *CallbackSource) Open() error { return nil }

// Next implements Operator.
func (s *CallbackSource) Next() (types.Row, error) {
	for {
		if s.pos < len(s.buf) {
			r := s.buf[s.pos]
			s.pos++
			return r, nil
		}
		if s.done {
			return nil, ErrEOF
		}
		batch, err := s.Fetch()
		if err != nil {
			return nil, err
		}
		if batch == nil {
			s.done = true
			return nil, ErrEOF
		}
		s.buf, s.pos = batch, 0
	}
}

// Close implements Operator.
func (s *CallbackSource) Close() error { return nil }

// DefaultRowQueueHighWater bounds row-mode exchange queues: the row
// equivalent of DefaultQueueHighWater batches of DefaultSize rows.
const DefaultRowQueueHighWater = 8 * 1024

// RowQueue is the row-mode exchange buffer between fragments: a bounded
// mutex-guarded queue. Producers hitting the high-water mark block (or
// park with JobBlocked via TryPush); consumers block until rows or
// close.
type RowQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	rows   []types.Row
	closed bool
	err    error
	high   int
	space  chan struct{} // closed when space frees or the queue closes
}

// NewRowQueue creates an empty queue bounded at the default high-water
// mark.
func NewRowQueue() *RowQueue { return NewRowQueueBounded(DefaultRowQueueHighWater) }

// NewRowQueueBounded creates an empty queue holding at most high rows
// (<=0 uses the default).
func NewRowQueueBounded(high int) *RowQueue {
	if high <= 0 {
		high = DefaultRowQueueHighWater
	}
	q := &RowQueue{high: high}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// TryPush appends a row unless the queue is at its high-water mark, in
// which case it returns ok=false plus a channel that fires when space
// frees — scheduler-driven producers park on it with JobBlocked instead
// of holding a worker. Pushing to a closed queue drops the row (the
// consumer aborted) and reports ok.
func (q *RowQueue) TryPush(r types.Row) (ok bool, wait <-chan struct{}) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return true, nil
	}
	if len(q.rows) >= q.high {
		if q.space == nil {
			q.space = make(chan struct{})
		}
		return false, q.space
	}
	q.rows = append(q.rows, r)
	q.cond.Signal()
	return true, nil
}

// Push appends a row, blocking while the queue is full.
func (q *RowQueue) Push(r types.Row) {
	for {
		ok, wait := q.TryPush(r)
		if ok {
			return
		}
		<-wait
	}
}

// notifySpace wakes blocked producers; callers hold mu.
func (q *RowQueue) notifySpace() {
	if q.space != nil {
		close(q.space)
		q.space = nil
	}
}

// CloseWith marks the stream complete (err nil) or failed.
func (q *RowQueue) CloseWith(err error) {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		q.err = err
		q.cond.Broadcast()
		q.notifySpace()
	}
	q.mu.Unlock()
}

// Pop blocks for the next row; returns ErrEOF at clean end or the
// producer's error.
func (q *RowQueue) Pop() (types.Row, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.rows) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.rows) > 0 {
		r := q.rows[0]
		q.rows = q.rows[1:]
		if len(q.rows) < q.high {
			q.notifySpace()
		}
		return r, nil
	}
	if q.err != nil {
		return nil, q.err
	}
	return nil, ErrEOF
}

// Len reports buffered rows (metrics/memory accounting).
func (q *RowQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.rows)
}

// QueueSource adapts a RowQueue to the Operator interface.
type QueueSource struct {
	Cols []string
	Q    *RowQueue
}

// Columns implements Operator.
func (s *QueueSource) Columns() []string { return s.Cols }

// Open implements Operator.
func (s *QueueSource) Open() error { return nil }

// Next implements Operator.
func (s *QueueSource) Next() (types.Row, error) { return s.Q.Pop() }

// Close implements Operator.
func (s *QueueSource) Close() error {
	s.Q.CloseWith(nil)
	return nil
}

// Gather merges several inputs (typically QueueSources fed by parallel
// fragments) in arrival order — the MPP exchange consumer.
type Gather struct {
	Cols   []string
	Inputs []Operator
	cur    int
}

// Columns implements Operator.
func (g *Gather) Columns() []string { return g.Cols }

// Open implements Operator.
func (g *Gather) Open() error {
	for _, in := range g.Inputs {
		if err := in.Open(); err != nil {
			return err
		}
	}
	return nil
}

// Next implements Operator: drains inputs round-robin-ish (current until
// EOF, then the next), which is order-agnostic merging.
func (g *Gather) Next() (types.Row, error) {
	for g.cur < len(g.Inputs) {
		row, err := g.Inputs[g.cur].Next()
		if errors.Is(err, ErrEOF) {
			g.cur++
			continue
		}
		return row, err
	}
	return nil, ErrEOF
}

// Close implements Operator.
func (g *Gather) Close() error {
	var first error
	for _, in := range g.Inputs {
		if err := in.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Collect drains an operator into a slice (coordinator's final gather).
func Collect(op Operator) ([]types.Row, error) {
	if err := op.Open(); err != nil {
		return nil, err
	}
	defer op.Close()
	var out []types.Row
	for {
		row, err := op.Next()
		if errors.Is(err, ErrEOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
}
