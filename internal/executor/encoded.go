package executor

import (
	"repro/internal/types"
	"repro/internal/vector"
)

// Encoded-vector kernels: batch operators receiving column-index views
// execute directly on the encoded payloads (dictionary codes, runs,
// packed words) instead of decoding them. Combinations without a
// code-space kernel fall back to the boxed accessors, which are always
// correct on encoded vectors — these dispatchers only exist so the hot
// pairings never box.

// applyEncodedCmp refines sel against `column OP literal` on an encoded
// vector. The bool result reports whether a code-space kernel applied;
// when false the caller must use the boxed per-position loop. Semantics
// match the raw typed kernels exactly: dictionary and bit-pack kernels
// mirror the direct typed comparisons (including the int-vs-float
// promotion), and the run-length kernel evaluates Value.Compare once
// per run — the same comparison the boxed loop would make per row.
func applyEncodedCmp(vec *vector.Vector, op string, lit types.Value, sel, out []int) ([]int, bool) {
	switch {
	case vec.Dict != nil:
		if lit.K != types.KindString {
			return nil, false
		}
		return vec.Dict.FilterCmp(op, lit.S, sel, out), true
	case vec.Pack != nil:
		if vec.Kind != types.KindInt {
			return nil, false // packed bools keep boxed Compare semantics
		}
		switch lit.K {
		case types.KindInt:
			return vec.Pack.FilterIntCmp(op, lit.I, sel, out), true
		case types.KindFloat:
			return vec.Pack.FilterFloatCmp(op, lit.F, sel, out), true
		}
		return nil, false
	case vec.RLE != nil:
		return vec.RLE.FilterCmp(op, lit, sel, out), true
	}
	return nil, false
}

// sumEncoded folds an encoded column into the SUM/AVG state. Only the
// still-integral accumulator over a bit-packed int column has a
// dedicated kernel (the Fig. 10 SUM shape); everything else reports
// false and takes the boxed in-order fold, preserving sumKernel's
// promotion semantics.
func sumEncoded(st *aggState, v *vector.Vector, sel []int) bool {
	if v.Pack != nil && v.Kind == types.KindInt && (st.sum.IsNull() || st.sum.K == types.KindInt) {
		sum, nn := v.Pack.SumInt(sel)
		if nn > 0 {
			if st.sum.IsNull() {
				st.sum = types.Int(sum)
			} else {
				st.sum = types.Int(st.sum.I + sum)
			}
			st.count += nn
		}
		return true
	}
	return false
}
