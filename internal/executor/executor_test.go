package executor

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/htap"
	"repro/internal/sql"
	"repro/internal/types"
)

// col builds a bound column reference.
func col(idx int) sql.Expr { return &sql.ColumnRef{Column: fmt.Sprintf("c%d", idx), Index: idx} }

func lit(v types.Value) sql.Expr { return &sql.Literal{Val: v} }

func bin(op string, l, r sql.Expr) sql.Expr { return &sql.BinaryOp{Op: op, L: l, R: r} }

// rows builds test rows of ints.
func intRows(vals ...[]int64) []types.Row {
	out := make([]types.Row, len(vals))
	for i, rv := range vals {
		row := make(types.Row, len(rv))
		for j, v := range rv {
			row[j] = types.Int(v)
		}
		out[i] = row
	}
	return out
}

func TestRowsSourceAndCollect(t *testing.T) {
	src := NewRowsSource([]string{"a"}, intRows([]int64{1}, []int64{2}))
	got, err := Collect(src)
	if err != nil || len(got) != 2 {
		t.Fatalf("collect = %v, %v", got, err)
	}
}

func TestFilter(t *testing.T) {
	src := NewRowsSource([]string{"a"}, intRows([]int64{1}, []int64{5}, []int64{10}))
	f := &Filter{Input: src, Pred: bin(">", col(0), lit(types.Int(4)))}
	got, err := Collect(f)
	if err != nil || len(got) != 2 || got[0][0].AsInt() != 5 {
		t.Fatalf("filter = %v, %v", got, err)
	}
}

func TestProject(t *testing.T) {
	src := NewRowsSource([]string{"a", "b"}, intRows([]int64{3, 4}))
	p := &Project{Input: src,
		Exprs: []sql.Expr{bin("*", col(0), col(1)), col(0)},
		Names: []string{"prod", "a"}}
	got, err := Collect(p)
	if err != nil || got[0][0].AsInt() != 12 || got[0][1].AsInt() != 3 {
		t.Fatalf("project = %v, %v", got, err)
	}
	if p.Columns()[0] != "prod" {
		t.Fatal("names")
	}
}

func TestLimit(t *testing.T) {
	src := NewRowsSource([]string{"a"}, intRows([]int64{1}, []int64{2}, []int64{3}))
	got, _ := Collect(&Limit{Input: src, N: 2})
	if len(got) != 2 {
		t.Fatalf("limit = %d rows", len(got))
	}
	src2 := NewRowsSource([]string{"a"}, intRows([]int64{1}))
	got2, _ := Collect(&Limit{Input: src2, N: -1})
	if len(got2) != 1 {
		t.Fatal("negative limit should pass through")
	}
}

func TestSortMultiKey(t *testing.T) {
	src := NewRowsSource([]string{"a", "b"},
		intRows([]int64{1, 9}, []int64{2, 1}, []int64{1, 3}))
	s := &Sort{Input: src, Keys: []SortKey{
		{Expr: col(0)}, {Expr: col(1), Desc: true},
	}}
	got, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]int64{{1, 9}, {1, 3}, {2, 1}}
	for i, w := range want {
		if got[i][0].AsInt() != w[0] || got[i][1].AsInt() != w[1] {
			t.Fatalf("sort[%d] = %v", i, got[i])
		}
	}
}

func TestHashJoinInner(t *testing.T) {
	left := NewRowsSource([]string{"l.id", "l.v"},
		intRows([]int64{1, 10}, []int64{2, 20}, []int64{3, 30}))
	right := NewRowsSource([]string{"r.id", "r.w"},
		intRows([]int64{2, 200}, []int64{3, 300}, []int64{3, 301}))
	j := &HashJoin{Left: left, Right: right,
		LeftKeys:  []sql.Expr{col(0)},
		RightKeys: []sql.Expr{col(0)},
	}
	got, err := Collect(j)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("join rows = %d", len(got))
	}
	// Row layout: l.id, l.v, r.id, r.w.
	if got[0][0].AsInt() != 2 || got[0][3].AsInt() != 200 {
		t.Fatalf("join[0] = %v", got[0])
	}
	if len(j.Columns()) != 4 {
		t.Fatal("join layout")
	}
}

func TestHashJoinLeftOuter(t *testing.T) {
	left := NewRowsSource([]string{"l.id"}, intRows([]int64{1}, []int64{2}))
	right := NewRowsSource([]string{"r.id"}, intRows([]int64{2}))
	j := &HashJoin{Left: left, Right: right,
		LeftKeys: []sql.Expr{col(0)}, RightKeys: []sql.Expr{col(0)}, Outer: true}
	got, err := Collect(j)
	if err != nil || len(got) != 2 {
		t.Fatalf("outer join = %v, %v", got, err)
	}
	if !got[0][1].IsNull() {
		t.Fatalf("unmatched row not null-extended: %v", got[0])
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	left := NewRowsSource([]string{"l.id"}, []types.Row{{types.Null()}})
	right := NewRowsSource([]string{"r.id"}, []types.Row{{types.Null()}})
	j := &HashJoin{Left: left, Right: right,
		LeftKeys: []sql.Expr{col(0)}, RightKeys: []sql.Expr{col(0)}}
	got, _ := Collect(j)
	if len(got) != 0 {
		t.Fatalf("NULL keys joined: %v", got)
	}
}

func TestHashJoinResidual(t *testing.T) {
	left := NewRowsSource([]string{"l.id", "l.v"}, intRows([]int64{1, 5}, []int64{1, 50}))
	right := NewRowsSource([]string{"r.id", "r.w"}, intRows([]int64{1, 10}))
	// Join on id with residual l.v < r.w.
	j := &HashJoin{Left: left, Right: right,
		LeftKeys: []sql.Expr{col(0)}, RightKeys: []sql.Expr{col(0)},
		Residual: bin("<", col(1), col(3))}
	got, err := Collect(j)
	if err != nil || len(got) != 1 || got[0][1].AsInt() != 5 {
		t.Fatalf("residual join = %v, %v", got, err)
	}
}

func TestNestedLoopJoinNonEqui(t *testing.T) {
	left := NewRowsSource([]string{"a"}, intRows([]int64{1}, []int64{5}))
	right := NewRowsSource([]string{"b"}, intRows([]int64{3}, []int64{4}))
	j := &NestedLoopJoin{Left: left, Right: right,
		On: bin("<", col(0), col(1))}
	got, err := Collect(j)
	if err != nil || len(got) != 2 {
		t.Fatalf("nl join = %v, %v", got, err)
	}
	// Outer variant keeps unmatched left rows.
	left2 := NewRowsSource([]string{"a"}, intRows([]int64{1}, []int64{9}))
	right2 := NewRowsSource([]string{"b"}, intRows([]int64{3}))
	j2 := &NestedLoopJoin{Left: left2, Right: right2,
		On: bin("<", col(0), col(1)), Outer: true}
	got2, _ := Collect(j2)
	if len(got2) != 2 || !got2[1][1].IsNull() {
		t.Fatalf("outer nl join = %v", got2)
	}
}

func TestHashAggComplete(t *testing.T) {
	src := NewRowsSource([]string{"g", "v"},
		intRows([]int64{1, 10}, []int64{2, 5}, []int64{1, 20}, []int64{2, 7}))
	agg := &HashAgg{Input: src,
		GroupBy: []sql.Expr{col(0)},
		Aggs: []AggSpec{
			{Func: "COUNT", Star: true},
			{Func: "SUM", Arg: col(1)},
			{Func: "AVG", Arg: col(1)},
			{Func: "MIN", Arg: col(1)},
			{Func: "MAX", Arg: col(1)},
		}}
	got, err := Collect(agg)
	if err != nil || len(got) != 2 {
		t.Fatalf("agg = %v, %v", got, err)
	}
	// Group 1: count 2, sum 30, avg 15, min 10, max 20.
	g1 := got[0]
	if g1[0].AsInt() != 1 || g1[1].AsInt() != 2 || g1[2].AsInt() != 30 ||
		g1[3].AsFloat() != 15 || g1[4].AsInt() != 10 || g1[5].AsInt() != 20 {
		t.Fatalf("group1 = %v", g1)
	}
}

func TestHashAggGlobalEmptyInput(t *testing.T) {
	src := NewRowsSource([]string{"v"}, nil)
	agg := &HashAgg{Input: src, Aggs: []AggSpec{
		{Func: "COUNT", Star: true}, {Func: "SUM", Arg: col(0)},
	}}
	got, err := Collect(agg)
	if err != nil || len(got) != 1 {
		t.Fatalf("global agg = %v, %v", got, err)
	}
	if got[0][0].AsInt() != 0 || !got[0][1].IsNull() {
		t.Fatalf("empty aggregates = %v", got[0])
	}
}

func TestHashAggDistinct(t *testing.T) {
	src := NewRowsSource([]string{"v"},
		intRows([]int64{5}, []int64{5}, []int64{7}))
	agg := &HashAgg{Input: src, Aggs: []AggSpec{
		{Func: "COUNT", Arg: col(0), Distinct: true},
		{Func: "SUM", Arg: col(0), Distinct: true},
	}}
	got, err := Collect(agg)
	if err != nil || got[0][0].AsInt() != 2 || got[0][1].AsInt() != 12 {
		t.Fatalf("distinct agg = %v, %v", got, err)
	}
}

// TestPartialFinalAggEquivalence is the MPP invariant: splitting an
// aggregation into per-fragment partials plus a final merge must equal
// the single-phase result.
func TestPartialFinalAggEquivalence(t *testing.T) {
	all := intRows(
		[]int64{1, 10}, []int64{2, 5}, []int64{1, 20},
		[]int64{2, 7}, []int64{1, 12}, []int64{3, 100})
	aggs := []AggSpec{
		{Func: "COUNT", Star: true},
		{Func: "SUM", Arg: col(1)},
		{Func: "AVG", Arg: col(1)},
		{Func: "MIN", Arg: col(1)},
		{Func: "MAX", Arg: col(1)},
	}
	// Single phase.
	complete := &HashAgg{Input: NewRowsSource([]string{"g", "v"}, all),
		GroupBy: []sql.Expr{col(0)}, Aggs: aggs}
	want, err := Collect(complete)
	if err != nil {
		t.Fatal(err)
	}

	// Two phase over three "fragments".
	var partials []types.Row
	for i := 0; i < 3; i++ {
		var part []types.Row
		for j, r := range all {
			if j%3 == i {
				part = append(part, r)
			}
		}
		p := &HashAgg{Input: NewRowsSource([]string{"g", "v"}, part),
			GroupBy: []sql.Expr{col(0)}, Aggs: aggs, Mode: AggPartial}
		rows, err := Collect(p)
		if err != nil {
			t.Fatal(err)
		}
		partials = append(partials, rows...)
	}
	final := &HashAgg{Input: NewRowsSource(nil, partials),
		GroupBy: []sql.Expr{col(0)}, Aggs: aggs, Mode: AggFinal}
	got, err := Collect(final)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("groups: got %d want %d", len(got), len(want))
	}
	for i := range want {
		for c := range want[i] {
			if want[i][c].Compare(got[i][c]) != 0 {
				t.Fatalf("row %d col %d: got %v want %v", i, c, got[i][c], want[i][c])
			}
		}
	}
}

func TestRowQueueOrderAndClose(t *testing.T) {
	q := NewRowQueue()
	for i := int64(0); i < 5; i++ {
		q.Push(types.Row{types.Int(i)})
	}
	q.CloseWith(nil)
	for i := int64(0); i < 5; i++ {
		r, err := q.Pop()
		if err != nil || r[0].AsInt() != i {
			t.Fatalf("pop %d = %v, %v", i, r, err)
		}
	}
	if _, err := q.Pop(); !errors.Is(err, ErrEOF) {
		t.Fatalf("err = %v", err)
	}
}

func TestRowQueueErrorPropagation(t *testing.T) {
	q := NewRowQueue()
	want := errors.New("fragment failed")
	q.CloseWith(want)
	if _, err := q.Pop(); !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	// Push after close is dropped.
	q.Push(types.Row{types.Int(1)})
	if q.Len() != 0 {
		t.Fatal("push after close buffered")
	}
}

func TestGatherMergesInputs(t *testing.T) {
	a := NewRowsSource([]string{"v"}, intRows([]int64{1}, []int64{2}))
	b := NewRowsSource([]string{"v"}, intRows([]int64{3}))
	g := &Gather{Cols: []string{"v"}, Inputs: []Operator{a, b}}
	got, err := Collect(g)
	if err != nil || len(got) != 3 {
		t.Fatalf("gather = %v, %v", got, err)
	}
}

func TestFragmentsOnScheduler(t *testing.T) {
	sched := htap.NewScheduler(htap.Config{})
	defer sched.Stop()
	// Three scan fragments with partial aggregation, gathered and
	// final-aggregated — a miniature MPP plan.
	aggs := []AggSpec{{Func: "SUM", Arg: col(1)}, {Func: "COUNT", Star: true}}
	var assignments []FragmentAssignment
	for i := 0; i < 3; i++ {
		rows := intRows([]int64{1, int64(i + 1)}, []int64{2, int64(10 * (i + 1))})
		frag := &HashAgg{Input: NewRowsSource([]string{"g", "v"}, rows),
			GroupBy: []sql.Expr{col(0)}, Aggs: aggs, Mode: AggPartial}
		assignments = append(assignments, FragmentAssignment{Op: frag, Sched: sched})
	}
	gather := RunFragments(htap.GroupAP, assignments)
	final := &HashAgg{Input: gather, GroupBy: []sql.Expr{col(0)}, Aggs: aggs, Mode: AggFinal}
	got, err := Collect(final)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("groups = %d", len(got))
	}
	// Group 1: 1+2+3 = 6; group 2: 10+20+30 = 60. Counts 3 each.
	if got[0][1].AsInt() != 6 || got[0][2].AsInt() != 3 ||
		got[1][1].AsInt() != 60 || got[1][2].AsInt() != 3 {
		t.Fatalf("mpp agg = %v", got)
	}
}

func TestFragmentsWithoutScheduler(t *testing.T) {
	src := NewRowsSource([]string{"v"}, intRows([]int64{1}, []int64{2}))
	gather := RunFragments(htap.GroupTP, []FragmentAssignment{{Op: src}})
	got, err := Collect(gather)
	if err != nil || len(got) != 2 {
		t.Fatalf("no-scheduler fragments = %v, %v", got, err)
	}
}

func TestFragmentErrorSurfacesThroughGather(t *testing.T) {
	bad := &CallbackSource{Cols: []string{"v"}, Fetch: func() ([]types.Row, error) {
		return nil, errors.New("shard unreachable")
	}}
	gather := RunFragments(htap.GroupTP, []FragmentAssignment{{Op: bad}})
	if _, err := Collect(gather); err == nil {
		t.Fatal("fragment error swallowed")
	}
}

func TestCallbackSourceBatches(t *testing.T) {
	calls := 0
	src := &CallbackSource{Cols: []string{"v"}, Fetch: func() ([]types.Row, error) {
		calls++
		if calls > 3 {
			return nil, nil
		}
		return intRows([]int64{int64(calls)}, []int64{int64(calls * 10)}), nil
	}}
	got, err := Collect(src)
	if err != nil || len(got) != 6 {
		t.Fatalf("callback source = %v, %v", got, err)
	}
}

func BenchmarkHashJoin(b *testing.B) {
	const n = 10000
	leftRows := make([]types.Row, n)
	rightRows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		leftRows[i] = types.Row{types.Int(int64(i)), types.Int(int64(i * 2))}
		rightRows[i] = types.Row{types.Int(int64(i)), types.Int(int64(i * 3))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := &HashJoin{
			Left:     NewRowsSource([]string{"a", "b"}, leftRows),
			Right:    NewRowsSource([]string{"c", "d"}, rightRows),
			LeftKeys: []sql.Expr{col(0)}, RightKeys: []sql.Expr{col(0)},
		}
		rows, err := Collect(j)
		if err != nil || len(rows) != n {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashAgg(b *testing.B) {
	const n = 10000
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{types.Int(int64(i % 16)), types.Int(int64(i))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := &HashAgg{Input: NewRowsSource([]string{"g", "v"}, rows),
			GroupBy: []sql.Expr{col(0)},
			Aggs:    []AggSpec{{Func: "SUM", Arg: col(1)}, {Func: "COUNT", Star: true}}}
		out, err := Collect(agg)
		if err != nil || len(out) != 16 {
			b.Fatal(err)
		}
	}
}
