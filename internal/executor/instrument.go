package executor

import (
	"errors"

	"repro/internal/obs"
	"repro/internal/types"
	"repro/internal/vector"
)

// Instrumented wraps an Operator and accumulates per-call rows-out and
// wall time into Stats — the EXPLAIN ANALYZE measurement point. The
// wrapper exists only when analysis is requested, so uninstrumented
// plans pay nothing.
type Instrumented struct {
	Op    Operator
	Stats *obs.OpStats
	clock obs.Clock
}

// Instrument wraps op so every Next call records into stats.
func Instrument(op Operator, stats *obs.OpStats) *Instrumented {
	return &Instrumented{Op: op, Stats: stats, clock: obs.Wall}
}

// Columns implements Operator.
func (w *Instrumented) Columns() []string { return w.Op.Columns() }

// Open implements Operator.
func (w *Instrumented) Open() error { return w.Op.Open() }

// Next implements Operator.
func (w *Instrumented) Next() (types.Row, error) {
	start := w.clock.Now()
	row, err := w.Op.Next()
	d := w.clock.Since(start)
	if err != nil {
		if errors.Is(err, ErrEOF) {
			w.Stats.Record(0, d)
		}
		return nil, err
	}
	w.Stats.Record(1, d)
	return row, nil
}

// Close implements Operator.
func (w *Instrumented) Close() error { return w.Op.Close() }

// InstrumentedBatch is Instrumented for the vectorized path: rows-out is
// the selected row count of each produced batch.
type InstrumentedBatch struct {
	Op    BatchOperator
	Stats *obs.OpStats
	clock obs.Clock
}

// InstrumentBatch wraps op so every NextBatch call records into stats.
func InstrumentBatch(op BatchOperator, stats *obs.OpStats) *InstrumentedBatch {
	return &InstrumentedBatch{Op: op, Stats: stats, clock: obs.Wall}
}

// Columns implements BatchOperator.
func (w *InstrumentedBatch) Columns() []string { return w.Op.Columns() }

// Open implements BatchOperator.
func (w *InstrumentedBatch) Open() error { return w.Op.Open() }

// NextBatch implements BatchOperator.
func (w *InstrumentedBatch) NextBatch() (*vector.Batch, error) {
	start := w.clock.Now()
	b, err := w.Op.NextBatch()
	d := w.clock.Since(start)
	if err != nil {
		if errors.Is(err, ErrEOF) {
			w.Stats.Record(0, d)
		}
		return nil, err
	}
	w.Stats.Record(int64(b.NumRows()), d)
	return b, nil
}

// Close implements BatchOperator.
func (w *InstrumentedBatch) Close() error { return w.Op.Close() }
