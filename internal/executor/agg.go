package executor

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/sql"
	"repro/internal/types"
)

// AggMode selects single-phase or MPP two-phase aggregation.
type AggMode int

// Aggregation modes. In the MPP plan (§VI-C) each scan fragment runs a
// Partial aggregate near its data and the coordinator's Final aggregate
// merges partial states — this split is what offloads "the first phase
// of aggregation" in the paper's Q1/Q6 discussion.
const (
	// AggComplete computes finished values in one pass.
	AggComplete AggMode = iota
	// AggPartial emits mergeable state columns instead of final values.
	AggPartial
	// AggFinal merges partial state columns.
	AggFinal
)

// AggSpec describes one aggregate in the output.
type AggSpec struct {
	Func     string // COUNT, SUM, AVG, MIN, MAX
	Arg      sql.Expr
	Star     bool // COUNT(*)
	Distinct bool
}

// stateWidth returns how many columns the spec occupies in Partial mode.
func (a AggSpec) stateWidth() int {
	if a.Func == "AVG" {
		return 2 // sum, count
	}
	return 1
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	spec  AggSpec
	count int64
	sum   types.Value
	min   types.Value
	max   types.Value
	seen  map[string]bool // DISTINCT dedup
}

func newAggState(spec AggSpec) *aggState {
	s := &aggState{spec: spec}
	if spec.Distinct {
		s.seen = make(map[string]bool)
	}
	return s
}

func (s *aggState) add(v types.Value) {
	if s.spec.Distinct {
		k := string(types.EncodeKey(nil, v))
		if s.seen[k] {
			return
		}
		s.seen[k] = true
	}
	switch s.spec.Func {
	case "COUNT":
		if s.spec.Star || !v.IsNull() {
			s.count++
		}
	case "SUM", "AVG":
		if !v.IsNull() {
			s.sum = s.sum.Add(v)
			s.count++
		}
	case "MIN":
		if !v.IsNull() && (s.min.IsNull() || v.Compare(s.min) < 0) {
			s.min = v
		}
	case "MAX":
		if !v.IsNull() && (s.max.IsNull() || v.Compare(s.max) > 0) {
			s.max = v
		}
	}
}

// merge folds a partial state (encoded as values) into s.
func (s *aggState) merge(vals []types.Value) {
	switch s.spec.Func {
	case "COUNT":
		s.count += vals[0].AsInt()
	case "SUM":
		if !vals[0].IsNull() {
			s.sum = s.sum.Add(vals[0])
			s.count++
		}
	case "AVG":
		if !vals[0].IsNull() {
			s.sum = s.sum.Add(vals[0])
		}
		s.count += vals[1].AsInt()
	case "MIN":
		if !vals[0].IsNull() && (s.min.IsNull() || vals[0].Compare(s.min) < 0) {
			s.min = vals[0]
		}
	case "MAX":
		if !vals[0].IsNull() && (s.max.IsNull() || vals[0].Compare(s.max) > 0) {
			s.max = vals[0]
		}
	}
}

// final renders the finished value(s). Partial mode emits state columns.
func (s *aggState) final(mode AggMode) []types.Value {
	if mode == AggPartial {
		switch s.spec.Func {
		case "COUNT":
			return []types.Value{types.Int(s.count)}
		case "SUM":
			return []types.Value{s.sum}
		case "AVG":
			return []types.Value{s.sum, types.Int(s.count)}
		case "MIN":
			return []types.Value{s.min}
		case "MAX":
			return []types.Value{s.max}
		}
	}
	switch s.spec.Func {
	case "COUNT":
		return []types.Value{types.Int(s.count)}
	case "SUM":
		return []types.Value{s.sum}
	case "AVG":
		if s.count == 0 {
			return []types.Value{types.Null()}
		}
		return []types.Value{types.Float(s.sum.AsFloat() / float64(s.count))}
	case "MIN":
		return []types.Value{s.min}
	case "MAX":
		return []types.Value{s.max}
	}
	return []types.Value{types.Null()}
}

// HashAgg groups its input on GroupBy expressions and computes Aggs.
// Output layout: group columns first (in GroupBy order), then aggregate
// columns (state columns in Partial mode). Groups are emitted in sorted
// group-key order for determinism.
type HashAgg struct {
	Input   Operator
	GroupBy []sql.Expr
	Aggs    []AggSpec
	Mode    AggMode
	// Names overrides output column names (len = group cols + agg cols).
	Names []string

	groups map[string]*aggGroup
	order  []string
	pos    int
	built  bool
}

type aggGroup struct {
	keyVals types.Row
	states  []*aggState
}

// Columns implements Operator.
func (h *HashAgg) Columns() []string {
	if h.Names != nil {
		return h.Names
	}
	var out []string
	for i := range h.GroupBy {
		out = append(out, fmt.Sprintf("group%d", i))
	}
	for i, a := range h.Aggs {
		if h.Mode == AggPartial && a.Func == "AVG" {
			out = append(out, fmt.Sprintf("agg%d_sum", i), fmt.Sprintf("agg%d_cnt", i))
		} else {
			out = append(out, fmt.Sprintf("agg%d", i))
		}
	}
	return out
}

// Open implements Operator.
func (h *HashAgg) Open() error {
	h.groups, h.order, h.pos, h.built = nil, nil, 0, false
	return h.Input.Open()
}

// Next implements Operator.
func (h *HashAgg) Next() (types.Row, error) {
	if !h.built {
		if err := h.build(); err != nil {
			return nil, err
		}
	}
	if h.pos >= len(h.order) {
		return nil, ErrEOF
	}
	g := h.groups[h.order[h.pos]]
	h.pos++
	out := append(types.Row{}, g.keyVals...)
	for _, st := range g.states {
		out = append(out, st.final(h.Mode)...)
	}
	return out, nil
}

func (h *HashAgg) build() error {
	h.groups = make(map[string]*aggGroup)
	for {
		row, err := h.Input.Next()
		if errors.Is(err, ErrEOF) {
			break
		}
		if err != nil {
			return err
		}
		keyVals := make(types.Row, len(h.GroupBy))
		for i, e := range h.GroupBy {
			v, err := sql.Eval(e, row)
			if err != nil {
				return err
			}
			keyVals[i] = v
		}
		key := string(types.EncodeKey(nil, keyVals...))
		g, ok := h.groups[key]
		if !ok {
			g = &aggGroup{keyVals: keyVals}
			for _, spec := range h.Aggs {
				g.states = append(g.states, newAggState(spec))
			}
			h.groups[key] = g
		}
		if h.Mode == AggFinal {
			// Input rows are [groupCols..., stateCols...]: merge states.
			col := len(h.GroupBy)
			for i, spec := range h.Aggs {
				w := spec.stateWidth()
				if col+w > len(row) {
					return fmt.Errorf("executor: partial state row too narrow: %d cols", len(row))
				}
				g.states[i].merge(row[col : col+w])
				col += w
			}
			continue
		}
		for i, spec := range h.Aggs {
			var v types.Value
			if spec.Star {
				v = types.Int(1)
			} else {
				var err error
				v, err = sql.Eval(spec.Arg, row)
				if err != nil {
					return err
				}
			}
			g.states[i].add(v)
		}
	}
	// Global aggregation (no GROUP BY) over zero rows still yields one
	// row of zero/NULL aggregates, per SQL semantics.
	if len(h.GroupBy) == 0 && len(h.groups) == 0 {
		g := &aggGroup{}
		for _, spec := range h.Aggs {
			g.states = append(g.states, newAggState(spec))
		}
		h.groups[""] = g
	}
	h.order = make([]string, 0, len(h.groups))
	for k := range h.groups {
		h.order = append(h.order, k)
	}
	sort.Strings(h.order)
	h.built = true
	return nil
}

// Close implements Operator.
func (h *HashAgg) Close() error {
	h.groups = nil
	return h.Input.Close()
}
