package executor

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/htap"
	"repro/internal/sql"
	"repro/internal/types"
	"repro/internal/vector"
)

// mixedRows builds a deterministic dataset mixing ints, floats, strings
// and NULLs — the shapes the typed filter/agg kernels special-case.
func mixedRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		r := types.Row{
			types.Int(int64(i % 7)),
			types.Float(float64(i%50) * 1.5),
			types.Str(fmt.Sprintf("s%d", i%5)),
			types.Int(int64(i)),
		}
		if i%11 == 0 {
			r[0] = types.Null()
		}
		if i%13 == 0 {
			r[1] = types.Null()
		}
		rows[i] = r
	}
	return rows
}

var mixedCols = []string{"c0", "c1", "c2", "c3"}

// assertSameRows requires positionally identical output (the row and
// batch operators are engineered to produce identical orders).
func assertSameRows(t *testing.T, label string, got, want []types.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s row %d: width %d vs %d", label, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			a, b := got[i][j], want[i][j]
			if a.IsNull() != b.IsNull() || (!a.IsNull() && a.Compare(b) != 0) {
				t.Fatalf("%s row %d col %d: %v vs %v", label, i, j, a, b)
			}
		}
	}
}

// runBoth executes the same plan shape in row and batch mode over rows.
func runBoth(t *testing.T, label string, rows []types.Row, cols []string,
	rowOp func(Operator) Operator, batchOp func(BatchOperator) BatchOperator) {
	t.Helper()
	want, err := Collect(rowOp(NewRowsSource(cols, rows)))
	if err != nil {
		t.Fatalf("%s row mode: %v", label, err)
	}
	got, err := CollectBatch(batchOp(NewBatchRowsSource(cols, rows)))
	if err != nil {
		t.Fatalf("%s batch mode: %v", label, err)
	}
	assertSameRows(t, label, got, want)
}

func TestBatchFilterEquivalence(t *testing.T) {
	rows := mixedRows(3000)
	preds := map[string]sql.Expr{
		"int-eq":       bin("=", col(0), lit(types.Int(3))),
		"int-ne":       bin("<>", col(0), lit(types.Int(3))),
		"int-lt-float": bin("<", col(0), lit(types.Float(3.5))),
		"float-ge":     bin(">=", col(1), lit(types.Float(30))),
		"float-le-int": bin("<=", col(1), lit(types.Int(40))),
		"str-eq":       bin("=", col(2), lit(types.Str("s3"))),
		"str-gt":       bin(">", col(2), lit(types.Str("s2"))),
		"lit-left":     bin(">", lit(types.Int(4)), col(0)),
		"and-chain": bin("AND", bin(">", col(3), lit(types.Int(10))),
			bin("<=", col(0), lit(types.Int(5)))),
		"between":     &sql.Between{E: col(0), Lo: lit(types.Int(2)), Hi: lit(types.Int(5))},
		"not-between": &sql.Between{E: col(0), Lo: lit(types.Int(2)), Hi: lit(types.Int(5)), Not: true},
		"between-null-lo": &sql.Between{E: col(0), Lo: lit(types.Null()), Hi: lit(types.Int(5))},
		"between-null-hi": &sql.Between{E: col(0), Lo: lit(types.Int(2)), Hi: lit(types.Null())},
		"is-null":         &sql.IsNull{E: col(0)},
		"is-not-null":     &sql.IsNull{E: col(0), Not: true},
		"null-literal":    bin("=", col(0), lit(types.Null())),
		"col-col":         bin("<", col(0), col(3)), // residual path
		"or-residual": bin("OR", bin("=", col(0), lit(types.Int(1))),
			bin("=", col(2), lit(types.Str("s4")))),
	}
	for name, pred := range preds {
		runBoth(t, "filter/"+name, rows, mixedCols,
			func(in Operator) Operator { return &Filter{Input: in, Pred: pred} },
			func(in BatchOperator) BatchOperator { return &BatchFilter{Input: in, Pred: pred} })
	}
}

func TestBatchProjectEquivalence(t *testing.T) {
	rows := mixedRows(2000)
	runBoth(t, "project/exprs", rows, mixedCols,
		func(in Operator) Operator {
			return &Project{Input: in,
				Exprs: []sql.Expr{bin("*", col(1), col(3)), bin("+", col(3), lit(types.Int(1))), col(2)},
				Names: []string{"p", "q", "c2"}}
		},
		func(in BatchOperator) BatchOperator {
			return &BatchProject{Input: in,
				Exprs: []sql.Expr{bin("*", col(1), col(3)), bin("+", col(3), lit(types.Int(1))), col(2)},
				Names: []string{"p", "q", "c2"}}
		})
	// All-column-ref projections take the zero-copy view path.
	runBoth(t, "project/colrefs", rows, mixedCols,
		func(in Operator) Operator {
			return &Project{Input: in, Exprs: []sql.Expr{col(2), col(0)}, Names: []string{"c2", "c0"}}
		},
		func(in BatchOperator) BatchOperator {
			return &BatchProject{Input: in, Exprs: []sql.Expr{col(2), col(0)}, Names: []string{"c2", "c0"}}
		})
}

func TestBatchSortLimitEquivalence(t *testing.T) {
	rows := mixedRows(2500)
	keys := []SortKey{{Expr: col(0)}, {Expr: col(1), Desc: true}}
	runBoth(t, "sort", rows, mixedCols,
		func(in Operator) Operator { return &Sort{Input: in, Keys: keys} },
		func(in BatchOperator) BatchOperator { return &BatchSort{Input: in, Keys: keys} })
	for _, n := range []int{0, 1, 1000, 1024, 1500, 5000} {
		runBoth(t, fmt.Sprintf("limit-%d", n), rows, mixedCols,
			func(in Operator) Operator { return &Limit{Input: in, N: n} },
			func(in BatchOperator) BatchOperator { return &BatchLimit{Input: in, N: n} })
	}
}

func TestBatchHashJoinEquivalence(t *testing.T) {
	left := mixedRows(1700) // NULL keys at i%11
	var right []types.Row
	for i := 0; i < 40; i++ {
		k := types.Int(int64(i % 9)) // keys 7,8 never match left's c0
		if i%10 == 0 {
			k = types.Null()
		}
		right = append(right, types.Row{k, types.Str(fmt.Sprintf("r%d", i))})
	}
	rcols := []string{"k", "v"}
	cases := []struct {
		name     string
		outer    bool
		residual sql.Expr
	}{
		{"inner", false, nil},
		{"outer", true, nil},
		{"inner-residual", false, bin(">", col(3), col(5))}, // l.c3 > r pos in joined layout
		{"outer-residual", true, bin(">", col(3), col(5))},
	}
	for _, tc := range cases {
		want, err := Collect(&HashJoin{
			Left: NewRowsSource(mixedCols, left), Right: NewRowsSource(rcols, right),
			LeftKeys: []sql.Expr{col(0)}, RightKeys: []sql.Expr{col(0)},
			Residual: tc.residual, Outer: tc.outer})
		if err != nil {
			t.Fatalf("join/%s row mode: %v", tc.name, err)
		}
		got, err := CollectBatch(&BatchHashJoin{
			Left: NewBatchRowsSource(mixedCols, left), Right: NewBatchRowsSource(rcols, right),
			LeftKeys: []sql.Expr{col(0)}, RightKeys: []sql.Expr{col(0)},
			Residual: tc.residual, Outer: tc.outer})
		if err != nil {
			t.Fatalf("join/%s batch mode: %v", tc.name, err)
		}
		assertSameRows(t, "join/"+tc.name, got, want)
	}
	// Expression keys (non-colref) exercise the scratch-eval probe path.
	want, err := Collect(&HashJoin{
		Left: NewRowsSource(mixedCols, left), Right: NewRowsSource(rcols, right),
		LeftKeys:  []sql.Expr{bin("+", col(0), lit(types.Int(1)))},
		RightKeys: []sql.Expr{bin("+", col(0), lit(types.Int(1)))}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectBatch(&BatchHashJoin{
		Left: NewBatchRowsSource(mixedCols, left), Right: NewBatchRowsSource(rcols, right),
		LeftKeys:  []sql.Expr{bin("+", col(0), lit(types.Int(1)))},
		RightKeys: []sql.Expr{bin("+", col(0), lit(types.Int(1)))}})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "join/expr-keys", got, want)
}

func TestBatchHashAggEquivalence(t *testing.T) {
	rows := mixedRows(3100)
	aggs := []AggSpec{
		{Func: "COUNT", Star: true},
		{Func: "COUNT", Arg: col(1)},
		{Func: "SUM", Arg: col(1)},
		{Func: "SUM", Arg: col(3)},
		{Func: "AVG", Arg: col(1)},
		{Func: "MIN", Arg: col(3)},
		{Func: "MAX", Arg: col(1)},
		{Func: "MIN", Arg: col(2)},
		{Func: "SUM", Arg: bin("*", col(1), col(3))}, // complex arg
	}
	names := []string{"cnt", "cnt1", "s1", "s3", "a1", "mn", "mx", "mns", "sexpr"}
	// Grouped (NULL group key included) and global (fused kernels).
	for _, group := range [][]sql.Expr{{col(0), col(2)}, nil} {
		label := "agg/grouped"
		gnames := append([]string{"g0", "g1"}, names...)
		if group == nil {
			label = "agg/global"
			gnames = names
		}
		runBoth(t, label, rows, mixedCols,
			func(in Operator) Operator {
				return &HashAgg{Input: in, GroupBy: group, Aggs: aggs, Mode: AggComplete, Names: gnames}
			},
			func(in BatchOperator) BatchOperator {
				return &BatchHashAgg{Input: in, GroupBy: group, Aggs: aggs, Mode: AggComplete, Names: gnames}
			})
	}
	// Empty input: the global group must still emit one row.
	runBoth(t, "agg/empty-global", nil, mixedCols,
		func(in Operator) Operator {
			return &HashAgg{Input: in, Aggs: aggs, Mode: AggComplete, Names: names}
		},
		func(in BatchOperator) BatchOperator {
			return &BatchHashAgg{Input: in, Aggs: aggs, Mode: AggComplete, Names: names}
		})
}

// TestBatchTwoPhaseAggEquivalence chains partial fragments into a final
// merge in both modes — the MPP shape.
func TestBatchTwoPhaseAggEquivalence(t *testing.T) {
	rows := mixedRows(2600)
	shards := [][]types.Row{rows[:900], rows[900:1800], rows[1800:]}
	group := []sql.Expr{col(0)}
	aggs := []AggSpec{{Func: "COUNT", Star: true}, {Func: "SUM", Arg: col(1)}, {Func: "AVG", Arg: col(3)}}
	finalGroup := []sql.Expr{&sql.ColumnRef{Column: "g0", Index: 0}}
	names := []string{"g0", "cnt", "s", "a"}

	var rowPartials []Operator
	for _, sh := range shards {
		rowPartials = append(rowPartials, &HashAgg{
			Input: NewRowsSource(mixedCols, sh), GroupBy: group, Aggs: aggs, Mode: AggPartial})
	}
	want, err := Collect(&HashAgg{
		Input:   &Gather{Cols: nil, Inputs: rowPartials},
		GroupBy: finalGroup, Aggs: aggs, Mode: AggFinal, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	var batchPartials []BatchOperator
	for _, sh := range shards {
		batchPartials = append(batchPartials, &BatchHashAgg{
			Input: NewBatchRowsSource(mixedCols, sh), GroupBy: group, Aggs: aggs, Mode: AggPartial})
	}
	got, err := CollectBatch(&BatchHashAgg{
		Input:   &BatchGather{Inputs: batchPartials},
		GroupBy: finalGroup, Aggs: aggs, Mode: AggFinal, Names: names})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "two-phase", got, want)
}

// TestRunBatchFragmentsEquivalence pushes fragments through scheduled
// exchange queues (tiny high-water mark to force backpressure parking)
// and checks the gathered stream matches row-mode fragments.
func TestRunBatchFragmentsEquivalence(t *testing.T) {
	sched := htap.NewScheduler(htap.Config{})
	defer sched.Stop()
	rows := mixedRows(2200)
	shards := [][]types.Row{rows[:800], rows[800:1600], rows[1600:]}

	var rowAssign []FragmentAssignment
	for _, sh := range shards {
		rowAssign = append(rowAssign, FragmentAssignment{Op: NewRowsSource(mixedCols, sh), Sched: sched})
	}
	rg := RunFragments(htap.GroupAP, rowAssign)
	rg.Cols = mixedCols
	want, err := Collect(rg)
	if err != nil {
		t.Fatal(err)
	}
	var batchAssign []BatchFragmentAssignment
	for _, sh := range shards {
		batchAssign = append(batchAssign, BatchFragmentAssignment{Op: NewBatchRowsSource(mixedCols, sh), Sched: sched})
	}
	got, err := CollectBatch(RunBatchFragments(htap.GroupAP, batchAssign, 1))
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "fragments", got, want)
}

func TestBatchQueueBackpressure(t *testing.T) {
	q := NewBatchQueue(2)
	mk := func() *vector.Batch { return vector.FromRows(mixedRows(4), 4) }
	for i := 0; i < 2; i++ {
		if ok, _ := q.TryPush(mk()); !ok {
			t.Fatalf("push %d blocked below high water", i)
		}
	}
	ok, wait := q.TryPush(mk())
	if ok || wait == nil {
		t.Fatal("third push should block with a wake channel")
	}
	select {
	case <-wait:
		t.Fatal("wake fired while queue still full")
	default:
	}
	if _, err := q.Pop(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wait:
	case <-time.After(time.Second):
		t.Fatal("pop did not wake blocked producer")
	}
	if ok, _ := q.TryPush(mk()); !ok {
		t.Fatal("push after drain should succeed")
	}
	q.CloseWith(nil)
	// Closed queue: pushes drop, buffered batches stay poppable.
	if ok, _ := q.TryPush(mk()); !ok {
		t.Fatal("push to closed queue should report done")
	}
	if b, err := q.Pop(); err != nil || b.NumRows() != 4 {
		t.Fatalf("buffered batch lost: %v %v", b, err)
	}
	if _, err := q.Pop(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Pop(); !errors.Is(err, ErrEOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestRowQueueBackpressure(t *testing.T) {
	q := NewRowQueueBounded(2)
	row := types.Row{types.Int(1)}
	for i := 0; i < 2; i++ {
		if ok, _ := q.TryPush(row); !ok {
			t.Fatalf("push %d blocked below high water", i)
		}
	}
	ok, wait := q.TryPush(row)
	if ok || wait == nil {
		t.Fatal("third push should block with a wake channel")
	}
	if _, err := q.Pop(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wait:
	case <-time.After(time.Second):
		t.Fatal("pop did not wake blocked producer")
	}
	done := make(chan struct{})
	go func() { q.Push(row); q.Push(row); close(done) }() // second blocks until drained
	time.Sleep(10 * time.Millisecond)
	if _, err := q.Pop(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.Pop(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("blocking Push never completed")
	}
	q.CloseWith(nil)
}

// TestBatchToRowRoundTrip sanity-checks the bridging adapters.
func TestBatchToRowRoundTrip(t *testing.T) {
	rows := mixedRows(1300)
	got, err := Collect(&BatchToRow{Op: &RowToBatch{Op: NewRowsSource(mixedCols, rows)}})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRows(t, "roundtrip", got, rows)
}
