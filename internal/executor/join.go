package executor

import (
	"errors"

	"repro/internal/sql"
	"repro/internal/types"
)

// HashJoin is an equi-join. The RIGHT input is the build side (hashed on
// RightKeys); the LEFT input streams and probes, which preserves left
// order and makes LEFT OUTER natural (Outer emits NULL-extended rows for
// unmatched left rows). Output layout is left columns then right
// columns. The optimizer places the smaller input on the right.
type HashJoin struct {
	Left, Right Operator
	// LeftKeys/RightKeys are bound against the respective child layouts.
	LeftKeys, RightKeys []sql.Expr
	// Residual, when non-nil, filters joined rows (bound against the
	// combined layout).
	Residual sql.Expr
	// Outer preserves left rows without a match (LEFT OUTER JOIN).
	Outer bool

	cols    []string
	built   bool
	table   map[string][]types.Row // build-side hash table
	pending []types.Row            // matches for the current probe row
	cur     types.Row
}

// Columns implements Operator.
func (j *HashJoin) Columns() []string {
	if j.cols == nil {
		j.cols = append(append([]string{}, j.Left.Columns()...), j.Right.Columns()...)
	}
	return j.cols
}

// Open implements Operator.
func (j *HashJoin) Open() error {
	j.built = false
	j.table = nil
	j.pending = nil
	if err := j.Left.Open(); err != nil {
		return err
	}
	return j.Right.Open()
}

// keyOf encodes join keys memcomparably; NULL keys never match.
func keyOf(exprs []sql.Expr, row types.Row) (string, bool, error) {
	vals := make([]types.Value, len(exprs))
	for i, e := range exprs {
		v, err := sql.Eval(e, row)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", false, nil
		}
		vals[i] = v
	}
	return string(types.EncodeKey(nil, vals...)), true, nil
}

// build hashes the RIGHT side: probe-side streaming preserves the left
// input's order and makes LEFT OUTER natural.
func (j *HashJoin) build() error {
	j.table = make(map[string][]types.Row)
	for {
		row, err := j.Right.Next()
		if errors.Is(err, ErrEOF) {
			break
		}
		if err != nil {
			return err
		}
		k, ok, err := keyOf(j.RightKeys, row)
		if err != nil {
			return err
		}
		if ok {
			j.table[k] = append(j.table[k], row)
		}
	}
	j.built = true
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next() (types.Row, error) {
	if !j.built {
		if err := j.build(); err != nil {
			return nil, err
		}
	}
	rightWidth := len(j.Right.Columns())
	for {
		if len(j.pending) > 0 {
			match := j.pending[0]
			j.pending = j.pending[1:]
			joined := append(append(types.Row{}, j.cur...), match...)
			if j.Residual != nil {
				v, err := sql.Eval(j.Residual, joined)
				if err != nil {
					return nil, err
				}
				if !v.IsTruthy() {
					continue
				}
			}
			return joined, nil
		}
		left, err := j.Left.Next()
		if err != nil {
			return nil, err // includes ErrEOF
		}
		j.cur = left
		k, ok, err := keyOf(j.LeftKeys, left)
		if err != nil {
			return nil, err
		}
		var matches []types.Row
		if ok {
			matches = j.table[k]
		}
		if len(matches) == 0 {
			if j.Outer {
				nulls := make(types.Row, rightWidth)
				return append(append(types.Row{}, left...), nulls...), nil
			}
			continue
		}
		// Residual-filtered LEFT OUTER: if no match survives the
		// residual, emit the null-extended row.
		if j.Outer && j.Residual != nil {
			var survivors []types.Row
			for _, m := range matches {
				joined := append(append(types.Row{}, left...), m...)
				v, err := sql.Eval(j.Residual, joined)
				if err != nil {
					return nil, err
				}
				if v.IsTruthy() {
					survivors = append(survivors, m)
				}
			}
			if len(survivors) == 0 {
				nulls := make(types.Row, rightWidth)
				return append(append(types.Row{}, left...), nulls...), nil
			}
			j.pending = survivors
			// Residual already applied; emit directly.
			match := j.pending[0]
			j.pending = j.pending[1:]
			return append(append(types.Row{}, left...), match...), nil
		}
		j.pending = matches
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.table = nil
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}

// NestedLoopJoin handles non-equi joins: the right side is materialized
// and re-scanned per left row with the ON condition evaluated on the
// combined layout. The optimizer only picks it when no equi-keys exist.
type NestedLoopJoin struct {
	Left, Right Operator
	On          sql.Expr
	Outer       bool

	cols    []string
	right   []types.Row
	built   bool
	cur     types.Row
	rIdx    int
	matched bool
}

// Columns implements Operator.
func (j *NestedLoopJoin) Columns() []string {
	if j.cols == nil {
		j.cols = append(append([]string{}, j.Left.Columns()...), j.Right.Columns()...)
	}
	return j.cols
}

// Open implements Operator.
func (j *NestedLoopJoin) Open() error {
	j.built, j.cur = false, nil
	if err := j.Left.Open(); err != nil {
		return err
	}
	return j.Right.Open()
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (types.Row, error) {
	if !j.built {
		for {
			row, err := j.Right.Next()
			if errors.Is(err, ErrEOF) {
				break
			}
			if err != nil {
				return nil, err
			}
			j.right = append(j.right, row)
		}
		j.built = true
	}
	for {
		if j.cur == nil {
			left, err := j.Left.Next()
			if err != nil {
				return nil, err
			}
			j.cur, j.rIdx, j.matched = left, 0, false
		}
		for j.rIdx < len(j.right) {
			r := j.right[j.rIdx]
			j.rIdx++
			joined := append(append(types.Row{}, j.cur...), r...)
			if j.On != nil {
				v, err := sql.Eval(j.On, joined)
				if err != nil {
					return nil, err
				}
				if !v.IsTruthy() {
					continue
				}
			}
			j.matched = true
			return joined, nil
		}
		// Left row exhausted the right side.
		if j.Outer && !j.matched {
			nulls := make(types.Row, len(j.Right.Columns()))
			out := append(append(types.Row{}, j.cur...), nulls...)
			j.cur = nil
			return out, nil
		}
		j.cur = nil
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.right = nil
	errL := j.Left.Close()
	errR := j.Right.Close()
	if errL != nil {
		return errL
	}
	return errR
}
