package executor

import (
	"errors"
	"time"

	"repro/internal/htap"
	"repro/internal/types"
)

// FragmentJob pumps one plan fragment's operator tree into an exchange
// queue, cooperatively: each scheduler round processes rows until the
// time slice expires, then yields (§VI-C time-slicing). The fragment is
// the unit the Task Scheduler ships to CN nodes; the Local Scheduler
// (htap.Pool) runs it.
type FragmentJob struct {
	Op  Operator
	Out *RowQueue
	// BatchRows bounds rows per slice-check so tight loops notice the
	// deadline (default 64).
	BatchRows int

	opened  bool
	pending types.Row // row awaiting queue space (backpressure)
	blocked bool
}

// Run implements htap.Job.
func (f *FragmentJob) Run(slice time.Duration) (htap.JobState, <-chan struct{}, error) {
	if !f.opened {
		if err := f.Op.Open(); err != nil {
			f.Out.CloseWith(err)
			return htap.JobDone, nil, err
		}
		f.opened = true
	}
	batch := f.BatchRows
	if batch <= 0 {
		batch = 64
	}
	deadline := time.Now().Add(slice)
	for {
		for i := 0; i < batch; i++ {
			if f.blocked {
				// Retry the row that hit the queue's high-water mark.
				ok, wait := f.Out.TryPush(f.pending)
				if !ok {
					return htap.JobBlocked, wait, nil
				}
				f.pending, f.blocked = nil, false
				continue
			}
			row, err := f.Op.Next()
			if errors.Is(err, ErrEOF) {
				f.Out.CloseWith(nil)
				_ = f.Op.Close()
				return htap.JobDone, nil, nil
			}
			if err != nil {
				f.Out.CloseWith(err)
				_ = f.Op.Close()
				return htap.JobDone, nil, err
			}
			if ok, wait := f.Out.TryPush(row); !ok {
				f.pending, f.blocked = row, true
				return htap.JobBlocked, wait, nil
			}
		}
		if time.Now().After(deadline) {
			return htap.JobYielded, nil, nil
		}
	}
}

// RunFragments executes fragments in parallel, each as a job on its
// assigned scheduler (one scheduler per participating CN in MPP mode),
// and returns a Gather over their output queues. Callers drain the
// Gather; fragment errors surface through it.
func RunFragments(group htap.Group, assignments []FragmentAssignment) *Gather {
	inputs := make([]Operator, len(assignments))
	for i, a := range assignments {
		q := NewRowQueue()
		job := &FragmentJob{Op: a.Op, Out: q}
		inputs[i] = &QueueSource{Cols: a.Op.Columns(), Q: q}
		if a.Sched != nil {
			a.Sched.Submit(group, job)
		} else {
			// No scheduler (plain TP path): run on a goroutine to
			// completion.
			go func() {
				for {
					state, wake, _ := job.Run(time.Hour)
					switch state {
					case htap.JobDone:
						return
					case htap.JobBlocked:
						if wake != nil {
							<-wake
						}
					}
				}
			}()
		}
	}
	var cols []string
	if len(assignments) > 0 {
		cols = assignments[0].Op.Columns()
	}
	return &Gather{Cols: cols, Inputs: inputs}
}

// FragmentAssignment pairs a fragment with the CN scheduler that runs it.
type FragmentAssignment struct {
	Op    Operator
	Sched *htap.Scheduler
}
