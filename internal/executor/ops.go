package executor

import (
	"errors"
	"sort"

	"repro/internal/sql"
	"repro/internal/types"
)

// Filter passes rows whose bound predicate is truthy.
type Filter struct {
	Input Operator
	Pred  sql.Expr
}

// Columns implements Operator.
func (f *Filter) Columns() []string { return f.Input.Columns() }

// Open implements Operator.
func (f *Filter) Open() error { return f.Input.Open() }

// Next implements Operator.
func (f *Filter) Next() (types.Row, error) {
	for {
		row, err := f.Input.Next()
		if err != nil {
			return nil, err
		}
		v, err := sql.Eval(f.Pred, row)
		if err != nil {
			return nil, err
		}
		if v.IsTruthy() {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Input.Close() }

// Project evaluates expressions per row.
type Project struct {
	Input Operator
	Exprs []sql.Expr
	Names []string
}

// Columns implements Operator.
func (p *Project) Columns() []string { return p.Names }

// Open implements Operator.
func (p *Project) Open() error { return p.Input.Open() }

// Next implements Operator.
func (p *Project) Next() (types.Row, error) {
	row, err := p.Input.Next()
	if err != nil {
		return nil, err
	}
	out := make(types.Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := sql.Eval(e, row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Input.Close() }

// Limit stops after N rows (N < 0 = unlimited pass-through).
type Limit struct {
	Input Operator
	N     int
	seen  int
}

// Columns implements Operator.
func (l *Limit) Columns() []string { return l.Input.Columns() }

// Open implements Operator.
func (l *Limit) Open() error { l.seen = 0; return l.Input.Open() }

// Next implements Operator.
func (l *Limit) Next() (types.Row, error) {
	if l.N >= 0 && l.seen >= l.N {
		return nil, ErrEOF
	}
	row, err := l.Input.Next()
	if err != nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Input.Close() }

// SortKey is one ORDER BY key over the input layout.
type SortKey struct {
	Expr sql.Expr
	Desc bool
}

// Sort materializes and orders its input.
type Sort struct {
	Input Operator
	Keys  []SortKey

	rows []types.Row
	pos  int
	done bool
}

// Columns implements Operator.
func (s *Sort) Columns() []string { return s.Input.Columns() }

// Open implements Operator.
func (s *Sort) Open() error {
	s.rows, s.pos, s.done = nil, 0, false
	return s.Input.Open()
}

// Next implements Operator.
func (s *Sort) Next() (types.Row, error) {
	if !s.done {
		for {
			row, err := s.Input.Next()
			if errors.Is(err, ErrEOF) {
				break
			}
			if err != nil {
				return nil, err
			}
			s.rows = append(s.rows, row)
		}
		if err := sortRows(s.rows, s.Keys); err != nil {
			return nil, err
		}
		s.done = true
	}
	if s.pos >= len(s.rows) {
		return nil, ErrEOF
	}
	r := s.rows[s.pos]
	s.pos++
	return r, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.rows = nil
	return s.Input.Close()
}

// sortRows stably orders rows by the given keys. Shared by the row and
// batch sort operators so both modes produce byte-identical orderings.
func sortRows(rows []types.Row, keys []SortKey) error {
	var evalErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			a, err := sql.Eval(k.Expr, rows[i])
			if err != nil {
				evalErr = err
				return false
			}
			b, err := sql.Eval(k.Expr, rows[j])
			if err != nil {
				evalErr = err
				return false
			}
			c := a.Compare(b)
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return evalErr
}
