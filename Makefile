GO ?= go

.PHONY: build vet test test-short test-race bench-fig7

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The concurrency-sensitive paths (batched RPC fan-out, plan cache,
# 2PC) are exercised under the race detector.
test-race:
	$(GO) test -race ./...

# Fig. 7 benches plus the CN fast-path point-read benchmark
# (batched per-DN fan-out vs the per-key baseline, cross-DC topology).
bench-fig7:
	$(GO) test -run '^$$' -bench 'BenchmarkFig7' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkPointReadBatch' ./internal/bench/...
