GO ?= go

.PHONY: build vet test test-short test-race chaos bench-fig7

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: chaos
	$(GO) test ./...

# Fault-injection suite under the race detector: the simnet fabric
# itself, the 2PC crash-window tests, the cluster-level recovery-loop
# tests, and Paxos failover on a lossy link. Seeds are fixed inside
# the tests, so failures reproduce deterministically.
chaos:
	$(GO) test -race ./internal/simnet/
	$(GO) test -race -run 'Chaos|CoordinatorCrash|PartitionedPrimary|DuplicatedCommitPoint|LossyLinks' \
		./internal/txn/ ./internal/core/ ./internal/paxos/

test-short:
	$(GO) test -short ./...

# The concurrency-sensitive paths (batched RPC fan-out, plan cache,
# 2PC) are exercised under the race detector.
test-race:
	$(GO) test -race ./...

# Fig. 7 benches plus the CN fast-path point-read benchmark
# (batched per-DN fan-out vs the per-key baseline, cross-DC topology).
bench-fig7:
	$(GO) test -run '^$$' -bench 'BenchmarkFig7' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkPointReadBatch' ./internal/bench/...
