GO ?= go

.PHONY: build vet test test-short test-race chaos chaos-autopilot chaos-overload chaos-frontdoor bench-fig7 bench-fig10 bench-commit bench-compress bench-overload bench-frontdoor trace-demo

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet chaos
	$(GO) test ./...

# Fault-injection suite under the race detector: the simnet fabric
# itself, the 2PC crash-window tests, the cluster-level recovery-loop
# tests, and Paxos failover on a lossy link. Seeds are fixed inside
# the tests, so failures reproduce deterministically.
chaos: chaos-autopilot chaos-overload chaos-frontdoor
	$(GO) test -race ./internal/simnet/
	$(GO) test -race -run 'Chaos|CoordinatorCrash|PartitionedPrimary|DuplicatedCommitPoint|LossyLinks|Pipeline|GroupCommit' \
		./internal/txn/ ./internal/core/ ./internal/paxos/

# Overload-protection suite under the race detector: the admission
# controller and retry/breaker unit tests, the core-level concurrent
# Execute stress, and the 10x-offered-load chaos scenario with a
# jitter-faulted DN (goodput must hold, admitted-TP p99 must stay
# bounded by the statement deadline, and nothing may wedge).
chaos-overload:
	$(GO) test -race ./internal/admission/ ./internal/retry/
	$(GO) test -race -run 'TestAdmission|TestStatementTimeout' ./internal/core/
	$(GO) test -race -run 'TestChaosOverload' -v ./internal/testcluster/

# Front-door suite under the race detector: the wire-protocol and
# server unit tests, the session-busy / prepared-epoch / slow-query-
# ring regression tests, and the 10,000-connection chaos scenario —
# jittered links, a mid-round DN leader kill, goodput floors per
# round, principled-error-only failures, a deadline-bounded admitted
# tail, and zero per-connection server state after the fleet closes.
chaos-frontdoor:
	$(GO) test -race ./internal/srv/
	$(GO) test -race -run 'TestSession|TestPrepared|TestSlowQuery|TestPerTenant' ./internal/core/
	$(GO) test -race -run 'TestChaosFrontdoor' -v ./internal/testcluster/

# Elastic-autopilot convergence suite: a moving hotspot under sustained
# sysbench traffic with drop/dup/jitter link faults and a mid-migration
# coordinator crash, asserting skew and p99 recover within a bounded
# window with no manual intervention. The TestCluster logs its chaos
# fault seed on startup so any failure reproduces deterministically.
chaos-autopilot:
	$(GO) test -race ./internal/autopilot/
	$(GO) test -race -run 'TestChaosAutopilot' -v ./internal/testcluster/

test-short:
	$(GO) test -short ./...

# The concurrency-sensitive paths (batched RPC fan-out, plan cache,
# 2PC) are exercised under the race detector. The vectorized executor,
# the column index, and the tracing/metrics layer run first and
# explicitly: pooled batches moving through bounded MPP exchange queues
# and the lock-cheap metrics instruments are the newest shared-memory
# surfaces.
test-race: vet
	$(GO) test -race ./internal/executor/ ./internal/colindex/ ./internal/obs/ ./internal/vector/
	$(GO) test -race ./...

# Fig. 7 benches plus the CN fast-path point-read benchmark
# (batched per-DN fan-out vs the per-key baseline, cross-DC topology).
bench-fig7:
	$(GO) test -run '^$$' -bench 'BenchmarkFig7' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkPointReadBatch' ./internal/bench/...

# Fig. 10 TPC-H benches (serial vs MPP vs column index), each under the
# vectorized batch engine and the row-mode baseline, plus the
# filter→join→agg micro-benchmark that gates the batch engine (>=2x
# over row mode at 100k rows).
bench-fig10:
	$(GO) test -run '^$$' -bench 'BenchmarkFig10' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkExecBatchVsRow' ./internal/executor/

# Commit-pipeline benchmark: sustained multi-client commit throughput
# over a fixed 3-DC RTT matrix, group commit on vs off (the seed's
# flush-per-MTR path), plus the Go micro-benchmark. The sweep writes
# BENCH_commit.json as the standing record.
bench-commit:
	$(GO) run ./cmd/polardbx-bench -exp commit -commit-out BENCH_commit.json
	$(GO) test -run '^$$' -bench 'BenchmarkCommitThroughput' ./internal/paxos/

# Compression experiment: column-index footprint and scan throughput on
# encoded vs raw vectors (Fig. 10 query shapes), Paxos log-shipping
# compression ratio, and PolarFS replication bytes moved. Writes
# BENCH_compress.json as the standing record, then runs the Fig. 10
# column-index benchmark with allocation and bytes-scanned reporting.
bench-compress:
	$(GO) run ./cmd/polardbx-bench -exp compress -compress-out BENCH_compress.json
	$(GO) test -run '^$$' -bench 'BenchmarkFig10ColumnIndex' -benchtime 1x .

# Overload sweep: one CN with bounded admission and a 250ms statement
# deadline driven at 1x/5x/10x capacity against a jitter-faulted DN.
# Records goodput, admitted-TP p99 and shed fraction per level; writes
# BENCH_overload.json as the standing record.
bench-overload:
	$(GO) run ./cmd/polardbx-bench -exp overload -overload-out BENCH_overload.json

# Front-door connection ramp: 100 / 1,000 / 10,000 wire connections
# multiplexed onto a fixed CN pool, each with a prepared point select,
# paced by a think time with jittered exponential backoff on shed.
# Goodput at 10k must hold within 10% of the 1k plateau and the
# admitted p99 must stay bounded by the statement deadline; writes
# BENCH_frontdoor.json as the standing record.
bench-frontdoor:
	$(GO) run ./cmd/polardbx-bench -exp frontdoor -frontdoor-out BENCH_frontdoor.json

# End-to-end observability demo: span trees for a fan-out read and a
# 2PC write, EXPLAIN ANALYZE, the slow-query log, and a metrics
# snapshot, on a 2-DC cluster with realistic link latencies.
trace-demo:
	$(GO) run ./examples/trace
