package repro

// One benchmark per figure of the paper's evaluation (§VII), plus the
// supporting claims called out in DESIGN.md. Each iteration runs the
// full experiment at a reduced-but-meaningful scale and reports the
// headline quantities via b.ReportMetric, so `go test -bench=.` yields a
// compact paper-vs-measured summary. cmd/polardbx-bench runs the same
// experiments at full simulation scale with complete tables.

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/colindex"
	"repro/internal/core"
	"repro/internal/htap"
	"repro/internal/simnet"
	"repro/internal/workload/sysbench"
	"repro/internal/workload/tpch"
)

// BenchmarkFig7WriteOnly: 3-DC sysbench oltp-write-only, HLC-SI vs
// TSO-SI (paper: HLC-SI peak writes +19%). Reported metrics: peak tps
// per oracle and the HLC gain in percent.
func BenchmarkFig7WriteOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7(sysbench.WriteOnly, bench.Fig7Options{
			Concurrencies: []int{8, 16, 32},
			Rows:          2000,
			Duration:      time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		reportFig7(b, res)
	}
}

// BenchmarkFig7ReadOnly: the read-side comparison (10 point reads + 4
// range scans per transaction).
func BenchmarkFig7ReadOnly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig7(sysbench.ReadOnly, bench.Fig7Options{
			Concurrencies: []int{8, 16, 32},
			Rows:          2000,
			Duration:      time.Second,
		})
		if err != nil {
			b.Fatal(err)
		}
		reportFig7(b, res)
	}
}

func reportFig7(b *testing.B, res bench.Fig7Result) {
	peak := map[core.OracleKind]float64{}
	for _, p := range res.Points {
		if p.Throughput > peak[p.Oracle] {
			peak[p.Oracle] = p.Throughput
		}
	}
	b.ReportMetric(peak[core.OracleHLC], "hlc-peak-tps")
	b.ReportMetric(peak[core.OracleTSO], "tso-peak-tps")
	b.ReportMetric(res.PeakGain(), "hlc-gain-%")
}

// BenchmarkFig8MTScaling: cluster doubling via tenant migration (paper:
// 4.2-4.6s per step at 160M rows; here scaled down). Metrics: mean
// migration time per step in ms and mean throughput gain in percent.
func BenchmarkFig8MTScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig8(bench.Fig8Options{
			Tenants: 16, RowsPerTenant: 5000, Steps: 3,
			LoadDuration: 400 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		var mig, gain float64
		for _, s := range res.Steps {
			mig += float64(s.MigrationTime.Milliseconds())
			gain += (s.ThroughputAfter/s.ThroughputPrev - 1) * 100
		}
		n := float64(len(res.Steps))
		b.ReportMetric(mig/n, "migrate-ms/step")
		b.ReportMetric(gain/n, "tps-gain-%/step")
	}
}

// BenchmarkFig8DataTransfer: the shared-nothing copy baseline on the
// same scaling plan (paper: 489-660s, 116-143x slower). Metric: the
// copy/migration time ratio.
func BenchmarkFig8DataTransfer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig8(bench.Fig8Options{
			Tenants: 16, RowsPerTenant: 5000, Steps: 3,
			LoadDuration: 200 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		var ratio float64
		for _, s := range res.Steps {
			ratio += float64(s.CopyTime) / float64(s.MigrationTime)
		}
		b.ReportMetric(ratio/float64(len(res.Steps)), "copy/migrate-x")
	}
}

// BenchmarkFig9Isolation: TPC-C tpmC under concurrent TPC-H across the
// six §VII-C configurations (paper: config 1 jitters >40%, configs 3-6
// unaffected). Metrics: tpmC retention (vs baseline) for configs 1 and
// 3, and the TPC-H sweep speedup from 1 RO to 3 ROs.
func BenchmarkFig9Isolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunFig9(bench.Fig9Options{
			Duration: 2 * time.Second, Terminals: 6,
		})
		if err != nil {
			b.Fatal(err)
		}
		byName := map[int]bench.Fig9ConfigResult{}
		for idx, c := range res.Configs {
			byName[idx+1] = c
		}
		if c := byName[1]; c.TpmCBase > 0 {
			b.ReportMetric(c.TpmC/c.TpmCBase*100, "cfg1-retention-%")
		}
		if c := byName[3]; c.TpmCBase > 0 {
			b.ReportMetric(c.TpmC/c.TpmCBase*100, "cfg3-retention-%")
		}
		if a, bb := byName[3], byName[5]; a.TPCHTotal > 0 && bb.TPCHTotal > 0 {
			b.ReportMetric(float64(a.TPCHTotal)/float64(bb.TPCHTotal), "tpch-1ro/3ro-x")
		}
	}
}

// fig10Modes runs a Fig. 10 sweep under both execution engines: "batch"
// is the vectorized default, "row" forces Fig10Options.RowMode so the
// same queries measure the row-at-a-time baseline. scanStats adds the
// column-index scan accounting (bytes scanned per op, encoded-scan
// fraction) for the column-index figure.
func fig10Modes(b *testing.B, queryIDs []int, metric string, gain func(bench.Fig10Row) float64, scanStats bool) {
	for _, mode := range []struct {
		name string
		row  bool
	}{{"batch", false}, {"row", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			if scanStats {
				colindex.ResetScanStats()
			}
			for i := 0; i < b.N; i++ {
				res, err := bench.RunFig10(bench.Fig10Options{
					TPCH:     tpch.Config{SF: 0.6, Partitions: 8, Seed: 10},
					Reps:     2,
					QueryIDs: queryIDs,
					RowMode:  mode.row,
				})
				if err != nil {
					b.Fatal(err)
				}
				var total float64
				for _, row := range res.Rows {
					total += gain(row)
				}
				b.ReportMetric(total/float64(len(res.Rows)), metric)
			}
			if scanStats {
				st := colindex.ScanStats()
				b.ReportMetric(float64(st.BytesScanned)/float64(b.N)/1e6, "col-MB-scanned/op")
				if st.Scans > 0 {
					b.ReportMetric(float64(st.EncodedScans)/float64(st.Scans)*100, "encoded-scan-%")
				}
			}
		})
	}
}

// BenchmarkFig10MPP: TPC-H serial vs MPP (paper: 21/22 queries >100%
// faster, Q9 +263%). Runs a representative subset under the batch and
// row engines; metric: mean MPP gain in percent.
func BenchmarkFig10MPP(b *testing.B) {
	fig10Modes(b, []int{1, 3, 5, 6, 9, 12, 14, 19}, "mpp-gain-%", bench.Fig10Row.SpeedupMPP, false)
}

// BenchmarkFig10ColumnIndex: TPC-H with the in-memory column index
// (paper: Q1 +748%, Q6 +1828%, Q12 +556%, Q14 +547%). Metrics: mean
// column-index gain over serial on the paper's headline queries under
// both execution engines, plus allocation counts and column-index scan
// accounting (MB scanned per op, fraction of scans served from encoded
// vectors).
func BenchmarkFig10ColumnIndex(b *testing.B) {
	fig10Modes(b, []int{1, 6, 12, 14}, "colindex-gain-%", bench.Fig10Row.SpeedupCol, true)
}

// BenchmarkROScaling: the §II claim that adding RO replicas raises read
// throughput near-linearly with no data movement. Metric: read tps with
// 1 vs 3 AP replicas per DN.
func BenchmarkROScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tps := map[int]float64{}
		for _, ros := range []int{1, 3} {
			cluster, err := core.NewCluster(core.Config{
				DNGroups: 2, ROsPerDN: ros,
				DNServiceRate:   20000,
				TPCostThreshold: 1, // everything AP → routed to ROs
				// Wide CN pools so DN capacity (not the CN tier) is the
				// bottleneck under test. The paper observed the same
				// crossover: past 3 ROs "the bottleneck ... lies in the
				// CN and backend row store".
				SchedulerCfg: htap.Config{APWorkers: 32, APSliceRate: 1e9},
			})
			if err != nil {
				b.Fatal(err)
			}
			s := cluster.CN(simnet.DC1).NewSession()
			mustExecB(b, s, `CREATE TABLE kv (k BIGINT, v VARCHAR(64), PRIMARY KEY(k)) PARTITIONS 4`)
			for lo := 0; lo < 4000; lo += 200 {
				stmt := "INSERT INTO kv (k, v) VALUES "
				for j := lo; j < lo+200; j++ {
					if j > lo {
						stmt += ", "
					}
					stmt += fmt.Sprintf("(%d, 'value-%d')", j, j)
				}
				mustExecB(b, s, stmt)
			}
			if err := cluster.EnableAPReplicas(ros); err != nil {
				b.Fatal(err)
			}
			if err := cluster.WaitROConvergence(10 * time.Second); err != nil {
				b.Fatal(err)
			}
			// Concurrent scan load for a fixed window.
			const readers = 24
			stop := time.Now().Add(time.Second)
			done := make(chan int, readers)
			for w := 0; w < readers; w++ {
				go func(w int) {
					sess := cluster.CNs()[w%len(cluster.CNs())].NewSession()
					n := 0
					for time.Now().Before(stop) {
						if _, err := sess.Execute("SELECT COUNT(*) FROM kv WHERE k >= 0"); err == nil {
							n++
						}
					}
					done <- n
				}(w)
			}
			total := 0
			for w := 0; w < readers; w++ {
				total += <-done
			}
			tps[ros] = float64(total)
			cluster.Stop()
		}
		b.ReportMetric(tps[1], "scans-1ro")
		b.ReportMetric(tps[3], "scans-3ro")
		if tps[1] > 0 {
			b.ReportMetric(tps[3]/tps[1], "scaling-x")
		}
	}
}

func mustExecB(b *testing.B, s *core.Session, q string) {
	b.Helper()
	if _, err := s.Execute(q); err != nil {
		b.Fatalf("%s: %v", q, err)
	}
}

// BenchmarkPartitionWiseJoin: the §II-B table-group ablation. The same
// join runs once on tables sharing a table group (per-shard join
// fragments, no redistribution) and once on group-less tables (all rows
// gathered to the coordinator, one big hash join). Metric: the latency
// ratio.
func BenchmarkPartitionWiseJoin(b *testing.B) {
	load := func(group string) (*core.Cluster, *core.Session) {
		cluster, err := core.NewCluster(core.Config{
			DNGroups: 4, ROsPerDN: 1, TPCostThreshold: 1,
			DNServiceRate: 50000,
		})
		if err != nil {
			b.Fatal(err)
		}
		s := cluster.CN(simnet.DC1).NewSession()
		mustExecB(b, s, "CREATE TABLE po (id BIGINT, total BIGINT, PRIMARY KEY(id)) PARTITIONS 8"+group)
		mustExecB(b, s, "CREATE TABLE pl (id BIGINT, qty BIGINT, PRIMARY KEY(id)) PARTITIONS 8"+group)
		for lo := 0; lo < 4000; lo += 200 {
			so := "INSERT INTO po (id, total) VALUES "
			sl := "INSERT INTO pl (id, qty) VALUES "
			for i := lo; i < lo+200; i++ {
				if i > lo {
					so += ", "
					sl += ", "
				}
				so += fmt.Sprintf("(%d, %d)", i, i*2)
				sl += fmt.Sprintf("(%d, %d)", i, i%7)
			}
			mustExecB(b, s, so)
			mustExecB(b, s, sl)
		}
		if err := cluster.EnableAPReplicas(1); err != nil {
			b.Fatal(err)
		}
		if err := cluster.WaitROConvergence(10 * time.Second); err != nil {
			b.Fatal(err)
		}
		return cluster, s
	}
	query := "SELECT COUNT(*), SUM(po.total + pl.qty) FROM po JOIN pl ON po.id = pl.id"

	for i := 0; i < b.N; i++ {
		lat := map[string]time.Duration{}
		for _, mode := range []string{" TABLEGROUP g1", ""} {
			cluster, s := load(mode)
			best := time.Duration(0)
			for rep := 0; rep < 3; rep++ {
				start := time.Now()
				if _, err := s.Execute(query); err != nil {
					b.Fatal(err)
				}
				if el := time.Since(start); best == 0 || el < best {
					best = el
				}
			}
			lat[mode] = best
			cluster.Stop()
		}
		pw := lat[" TABLEGROUP g1"]
		plain := lat[""]
		b.ReportMetric(float64(pw.Microseconds()), "partition-wise-µs")
		b.ReportMetric(float64(plain.Microseconds()), "coordinator-join-µs")
		if pw > 0 {
			b.ReportMetric(float64(plain)/float64(pw), "speedup-x")
		}
	}
}
