// Chaos: scripting faults against a running cluster. Act one crashes a
// CN coordinator at the worst possible instant — right after the 2PC
// commit-point record ships to the primary branch — and watches the
// background recovery loop commit the stranded PREPARED branches from
// the durable decision. Act two turns on a lossy, duplicating network
// (seeded, reproducible) while multi-shard inserts run, then heals it
// and verifies every statement landed atomically: all rows or none.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dn"
	"repro/internal/simnet"
)

func inDoubt(c *core.Cluster) int {
	n := 0
	for _, g := range []string{"dng0", "dng1"} {
		if inst, err := c.DNGroup(g); err == nil {
			n += inst.InDoubtBranches()
		}
	}
	return n
}

func count(s *core.Session, table string) int64 {
	res, err := s.Execute("SELECT COUNT(*) FROM " + table)
	if err != nil {
		return -1
	}
	return res.Rows[0][0].AsInt()
}

func main() {
	c, err := core.NewCluster(core.Config{
		DNGroups:         2,
		InDoubtTimeout:   100 * time.Millisecond,
		RecoveryInterval: 50 * time.Millisecond,
		// A call deadline is the one fault-plan knob that is always on:
		// chaos may strand any RPC, and callers must not hang forever.
		FaultPlan: &simnet.FaultPlan{Seed: 7, CallTimeout: 500 * time.Millisecond},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer c.Stop()

	s := c.CN(simnet.DC1).NewSession()
	if _, err := s.Execute(`CREATE TABLE pairs (id BIGINT, v BIGINT, PRIMARY KEY(id)) PARTITIONS 4`); err != nil {
		log.Fatal(err)
	}

	// ---- Act one: coordinator crash after the commit point ----
	fmt.Println("== act one: CN crashes right after the commit-point write ==")
	cnName := c.CN(simnet.DC1).Name()
	c.Net.CrashAfterSend(cnName, func(to string, msg any) bool {
		cr, ok := msg.(dn.CommitReq)
		return ok && cr.CommitPoint
	})
	_, err = s.Execute(`INSERT INTO pairs (id, v) VALUES (0,1),(1,1),(2,1),(3,1),(4,1),(5,1),(6,1),(7,1)`)
	fmt.Printf("insert spanning both DN groups: error = %v\n", err)

	// The crashed CN is gone; observe recovery from another one.
	var s2 *core.Session
	for _, cn := range c.CNs() {
		if cn.Name() != cnName {
			s2 = cn.NewSession()
			break
		}
	}
	fmt.Printf("immediately after crash: rows visible = %d, in-doubt branches = %d\n",
		count(s2, "pairs"), inDoubt(c))
	for i := 0; i < 100 && (count(s2, "pairs") != 8 || inDoubt(c) != 0); i++ {
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Printf("after recovery loop:     rows visible = %d, in-doubt branches = %d\n",
		count(s2, "pairs"), inDoubt(c))

	// ---- Act two: a lossy, duplicating network spell ----
	fmt.Println("\n== act two: 3% drop + 3% duplication on every link ==")
	c.Net.SetFaultSeed(42)
	c.Net.SetDefaultLinkFaults(simnet.LinkFaults{Drop: 0.03, Dup: 0.03})
	failed := 0
	const stmts = 30
	for i := 0; i < stmts; i++ {
		stmt := fmt.Sprintf("INSERT INTO pairs (id, v) VALUES (%d, 1), (%d, 1)", 100+i, 1100+i)
		if _, err := s2.Execute(stmt); err != nil {
			failed++
		}
	}
	fmt.Printf("%d/%d statements errored under chaos (aborted or in doubt)\n", failed, stmts)

	c.Net.SetDefaultLinkFaults(simnet.LinkFaults{})
	for i := 0; i < 100 && inDoubt(c) != 0; i++ {
		time.Sleep(50 * time.Millisecond)
	}

	torn := 0
	committed := 0
	for i := 0; i < stmts; i++ {
		a := count2(s2, 100+i)
		b := count2(s2, 1100+i)
		if a != b {
			torn++
		} else if a == 1 {
			committed++
		}
	}
	fmt.Printf("after heal + recovery: %d statements committed atomically, %d torn (must be 0), in-doubt = %d\n",
		committed, torn, inDoubt(c))
}

func count2(s *core.Session, id int) int64 {
	res, err := s.Execute(fmt.Sprintf("SELECT COUNT(*) FROM pairs WHERE id = %d", id))
	if err != nil {
		return -1
	}
	return res.Rows[0][0].AsInt()
}
