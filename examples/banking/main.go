// Banking: concurrent cross-shard transfers exercising distributed ACID
// transactions under write-write conflicts (snapshot isolation with
// first-committer-wins). The invariant checked at the end — total money
// conserved — only holds if 2PC atomicity and HLC-SI visibility are both
// correct.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/simnet"
)

const (
	accounts = 64
	initial  = 1000
	workers  = 8
	transfer = 200 // transfers per worker
)

func main() {
	// Three datacenters with Paxos-replicated DN groups: every transfer
	// is a cross-shard (often cross-DC-leader) distributed transaction.
	cluster, err := core.NewCluster(core.Config{
		DCs: 3, MultiDC: true, DNGroups: 3, CNsPerDC: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	seed := cluster.CN(simnet.DC1).NewSession()
	mustExec(seed, `CREATE TABLE accounts (id BIGINT, balance BIGINT, PRIMARY KEY(id)) PARTITIONS 6`)
	for lo := 0; lo < accounts; lo += 32 {
		stmt := "INSERT INTO accounts (id, balance) VALUES "
		for i := lo; i < lo+32 && i < accounts; i++ {
			if i > lo {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, %d)", i, initial)
		}
		mustExec(seed, stmt)
	}

	var committed, conflicts atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each worker gets its own session on a CN in its "home" DC.
			s := cluster.CN(simnet.DC(w % 3)).NewSession()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for i := 0; i < transfer; i++ {
				from := rng.Intn(accounts)
				to := rng.Intn(accounts)
				if from == to {
					continue
				}
				amount := 1 + rng.Intn(20)
				if err := s.BeginTxn(); err != nil {
					log.Fatal(err)
				}
				_, err1 := s.Execute(fmt.Sprintf(
					"UPDATE accounts SET balance = balance - %d WHERE id = %d", amount, from))
				var err2 error
				if err1 == nil {
					_, err2 = s.Execute(fmt.Sprintf(
						"UPDATE accounts SET balance = balance + %d WHERE id = %d", amount, to))
				}
				if err1 != nil || err2 != nil {
					// Write-write conflict: SI's first committer won; the
					// loser rolls back and retries later.
					_ = s.Rollback()
					conflicts.Add(1)
					continue
				}
				if err := s.Commit(); err != nil {
					conflicts.Add(1)
					continue
				}
				committed.Add(1)
			}
		}(w)
	}
	wg.Wait()

	res := mustExec(seed, "SELECT SUM(balance), COUNT(*), MIN(balance), MAX(balance) FROM accounts")
	total := res.Rows[0][0].AsInt()
	fmt.Printf("workers: %d, committed transfers: %d, conflicts rolled back: %d\n",
		workers, committed.Load(), conflicts.Load())
	fmt.Printf("accounts: %s, min balance: %s, max balance: %s\n",
		res.Rows[0][1].AsString(), res.Rows[0][2].AsString(), res.Rows[0][3].AsString())
	fmt.Printf("total money: %d (expected %d)\n", total, accounts*initial)
	if total != accounts*initial {
		log.Fatal("INVARIANT VIOLATED: money not conserved")
	}
	fmt.Println("invariant holds: distributed ACID preserved under contention")
}

func mustExec(s *core.Session, q string) *core.Result {
	res, err := s.Execute(q)
	if err != nil {
		log.Fatalf("%s: %v", q, err)
	}
	return res
}
