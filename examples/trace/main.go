// Trace demo: end-to-end observability on an embedded PolarDB-X
// cluster. Runs a multi-shard read and a cross-group 2PC write with
// tracing on, prints their span trees, then shows EXPLAIN ANALYZE, the
// slow-query log, and a cluster metrics snapshot.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

func main() {
	topo := simnet.DefaultTopology()
	cluster, err := core.NewCluster(core.Config{
		DCs:      2,
		MultiDC:  true,
		Topology: &topo,
		Tracing:  true,
		Metrics:  true,
		// With realistic link latencies, anything over 5ms is worth a
		// look in the slow-query log.
		SlowQueryThreshold: 5 * time.Millisecond,
		// Keep the demo queries on the traced TP path.
		TPCostThreshold: 1e12,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	session := cluster.CN(simnet.DC1).NewSession()
	exec := func(q string) *core.Result {
		res, err := session.Execute(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		return res
	}

	exec(`CREATE TABLE orders (id BIGINT, customer BIGINT, amount BIGINT, PRIMARY KEY (id)) PARTITIONS 4`)
	for i := 0; i < 64; i++ {
		exec(fmt.Sprintf("INSERT INTO orders (id, customer, amount) VALUES (%d, %d, %d)", i, i%8, i*10))
	}

	// A multi-shard SELECT: one branch RPC per shard, fanned out.
	res := exec("SELECT id FROM orders WHERE amount >= 100")
	fmt.Println("=== fan-out SELECT span tree ===")
	fmt.Print(res.Trace.Render())

	// A cross-group 2PC write: prepare on every branch, a durable commit
	// point on the primary, then phase-two commits.
	if err := session.BeginTxn(); err != nil {
		log.Fatal(err)
	}
	exec("UPDATE orders SET amount = 1 WHERE id = 0")
	exec("UPDATE orders SET amount = 2 WHERE id = 1")
	exec("UPDATE orders SET amount = 3 WHERE id = 2")
	if err := session.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== 2PC COMMIT span tree ===")
	fmt.Print(session.LastTrace().Render())

	fmt.Println("\n=== EXPLAIN ANALYZE ===")
	res = exec("EXPLAIN ANALYZE SELECT customer, SUM(amount) FROM orders GROUP BY customer")
	for _, row := range res.Rows {
		fmt.Println(row[0].AsString())
	}

	fmt.Println("\n=== slow queries ===")
	for _, sq := range cluster.SlowQueries() {
		fmt.Printf("%-8v %s\n", sq.Duration.Round(time.Millisecond), sq.SQL)
	}

	fmt.Println("\n=== metrics snapshot ===")
	fmt.Print(cluster.MetricsSnapshot())
}
