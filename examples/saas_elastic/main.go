// SaaS elasticity: a multi-tenant SaaS database on PolarDB-MT. Each
// subscriber is a tenant bound to one RW node; when traffic surges, the
// operator adds empty RW nodes and rebalances by *rebinding* tenants —
// no data moves. The example also survives an RW crash by replaying the
// dead node's redo log partitioned by tenant.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/mt"
	"repro/internal/simnet"
	"repro/internal/types"
)

func main() {
	cluster := mt.NewCluster(simnet.New(simnet.ZeroTopology()))
	cluster.SetRWCapacity(200*time.Microsecond, 4)
	if _, err := cluster.AddRW("rw1", simnet.DC1); err != nil {
		log.Fatal(err)
	}

	// Onboard eight subscribers, all initially consolidated on rw1 (the
	// cost-saving default for small tenants).
	schema := types.NewSchema("tickets", []types.Column{
		{Name: "id", Kind: types.KindInt},
		{Name: "subject", Kind: types.KindString},
		{Name: "state", Kind: types.KindString},
	}, []int{0})
	tables := map[mt.TenantID]uint32{}
	for id := mt.TenantID(1); id <= 8; id++ {
		if _, err := cluster.CreateTenant(id, "rw1"); err != nil {
			log.Fatal(err)
		}
		sc := *schema
		sc.Name = fmt.Sprintf("tickets_t%d", id)
		table, err := cluster.CreateTable(id, &sc)
		if err != nil {
			log.Fatal(err)
		}
		tables[id] = table
		rw, _ := cluster.RWNode("rw1")
		tx, _ := rw.Begin(id)
		for i := 0; i < 500; i++ {
			tx.Insert(table, types.Row{
				types.Int(int64(i)),
				types.Str(fmt.Sprintf("ticket %d of tenant %d", i, id)),
				types.Str("open"),
			})
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		t, _ := cluster.Tenant(id)
		t.Engine().Pool().FlushBefore(1<<62, nil) // steady-state checkpoint
	}
	fmt.Println("8 tenants consolidated on rw1")

	// Traffic surge: add a second RW and migrate the four busiest
	// tenants. Each move is a metadata rebind, not a copy.
	if _, err := cluster.AddRW("rw2", simnet.DC1); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for id := mt.TenantID(1); id <= 4; id++ {
		stats, err := cluster.Transfer(id, "rw1", "rw2")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tenant %d moved to rw2 in %s (drain %s, %d dirty pages flushed)\n",
			id, stats.Total.Round(time.Microsecond),
			stats.DrainWait.Round(time.Microsecond), stats.FlushPages)
	}
	fmt.Printf("scale-out rebalance finished in %s\n", time.Since(start).Round(time.Millisecond))

	// Serve traffic from both nodes; tenants are fully isolated.
	for id := mt.TenantID(1); id <= 8; id++ {
		bound, _, _ := cluster.BindingOf(id)
		rw, _ := cluster.RWNode(bound)
		tx, err := rw.Begin(id)
		if err != nil {
			log.Fatal(err)
		}
		n := 0
		tx.Scan(tables[id], nil, nil, func(_ []byte, _ types.Row) bool { n++; return true })
		tx.Abort()
		fmt.Printf("tenant %d on %s: %d tickets\n", id, bound, n)
	}

	// Post-move traffic lands on rw2, filling its private redo log.
	rw2, _ := cluster.RWNode("rw2")
	for id := mt.TenantID(1); id <= 4; id++ {
		tx, err := rw2.Begin(id)
		if err != nil {
			log.Fatal(err)
		}
		for i := 500; i < 520; i++ {
			tx.Insert(tables[id], types.Row{
				types.Int(int64(i)), types.Str("post-move ticket"), types.Str("open")})
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
	}

	// Disaster: rw2 dies. Survivors divide its redo log by tenant and
	// replay the partitions in parallel; tenants rebind to rw1.
	fmt.Println("\nsimulating rw2 failure...")
	stats, err := cluster.FailRW("rw2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %d tenants in %s (replayed %d transactions from the dead node's log)\n",
		stats.Tenants, stats.Total.Round(time.Millisecond), stats.ReplayedTxns)
	for id := mt.TenantID(1); id <= 4; id++ {
		bound, _, _ := cluster.BindingOf(id)
		rw, _ := cluster.RWNode(bound)
		tx, err := rw.Begin(id)
		if err != nil {
			log.Fatal(err)
		}
		row, ok, _ := tx.Get(tables[id], types.EncodeKey(nil, types.Int(42)))
		tx.Abort()
		if !ok {
			log.Fatalf("tenant %d lost data in failover", id)
		}
		fmt.Printf("tenant %d served by %s, ticket 42: %q\n", id, bound, row[1].AsString())
	}
	fmt.Println("failover complete; no data lost")
}
