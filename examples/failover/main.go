// Failover: a three-datacenter deployment loses its DC1 DN leader. Act
// one observes the §III machinery directly at the DN layer: the Paxos
// group elects a follower in another datacenter, the old leader rejoins
// as a follower and truncates its unreplicated tail. Act two replays
// the same failure through the SQL surface: GMS health-checks the
// group, repoints shard routing at the new leader, and the client's
// auto-commit statements retry transparently.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dn"
	"repro/internal/hlc"
	"repro/internal/paxos"
	"repro/internal/simnet"
	"repro/internal/types"
)

func main() {
	topo := simnet.DefaultTopology()
	net := simnet.New(topo)
	members := []paxos.Member{
		{Name: "dn-dc1", DC: simnet.DC1},
		{Name: "dn-dc2", DC: simnet.DC2},
		{Name: "dn-dc3", DC: simnet.DC3},
	}
	instances := map[string]*dn.Instance{}
	for i, m := range members {
		inst, err := dn.NewInstance(dn.Config{
			Name: m.Name, DC: m.DC, Net: net,
			Group: "g0", Members: members,
			Bootstrap: i == 0,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer inst.Stop()
		instances[m.Name] = inst
	}
	leader := instances["dn-dc1"]
	schema := types.NewSchema("kv", []types.Column{
		{Name: "k", Kind: types.KindInt},
		{Name: "v", Kind: types.KindString},
	}, []int{0})
	if err := leader.CreateTable(1, 0, schema); err != nil {
		log.Fatal(err)
	}

	// A client endpoint committing through the leader.
	net.Register("client", simnet.DC1, func(string, any) (any, error) { return nil, nil })
	clock := hlc.NewClock(nil)
	commit := func(target string, txnID uint64, k int64, v string) error {
		if _, err := net.Call("client", target, dn.BeginReq{TxnID: txnID, SnapshotTS: clock.Now()}); err != nil {
			return err
		}
		if _, err := net.Call("client", target, dn.WriteReq{TxnID: txnID, Table: 1, Op: dn.OpInsert,
			Row: types.Row{types.Int(k), types.Str(v)}}); err != nil {
			return err
		}
		_, err := net.Call("client", target, dn.CommitReq{TxnID: txnID})
		return err
	}
	for i := int64(0); i < 10; i++ {
		if err := commit("dn-dc1", uint64(100+i), i, fmt.Sprintf("v%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("10 transactions committed through %s (epoch %d, DLSN %d)\n",
		leader.Name(), leader.Paxos().Epoch(), leader.Paxos().DLSN())

	// Datacenter 1 goes dark.
	fmt.Println("\nisolating DC1 (leader's datacenter)...")
	net.IsolateDC(simnet.DC1, []simnet.DC{simnet.DC1, simnet.DC2, simnet.DC3})

	var newLeader *dn.Instance
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, name := range []string{"dn-dc2", "dn-dc3"} {
			if instances[name].IsLeader() {
				newLeader = instances[name]
			}
		}
		if newLeader != nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if newLeader == nil {
		log.Fatal("no new leader elected")
	}
	fmt.Printf("new leader: %s in %s (epoch %d)\n",
		newLeader.Name(), newLeader.DC(), newLeader.Paxos().Epoch())

	// Clients in surviving DCs keep writing through the new leader.
	net.Register("client2", simnet.DC2, func(string, any) (any, error) { return nil, nil })
	clock2 := hlc.NewClock(nil)
	if _, err := net.Call("client2", newLeader.Name(), dn.BeginReq{TxnID: 900, SnapshotTS: clock2.Now()}); err != nil {
		log.Fatal(err)
	}
	if _, err := net.Call("client2", newLeader.Name(), dn.WriteReq{TxnID: 900, Table: 1, Op: dn.OpInsert,
		Row: types.Row{types.Int(100), types.Str("post-failover")}}); err != nil {
		log.Fatal(err)
	}
	if _, err := net.Call("client2", newLeader.Name(), dn.CommitReq{TxnID: 900}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("write committed on the new leader during the DC1 outage")

	// DC1 heals: the old leader rejoins as a follower and converges.
	fmt.Println("\nhealing DC1...")
	net.Heal(simnet.DC1, simnet.DC2)
	net.Heal(simnet.DC1, simnet.DC3)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if !leader.IsLeader() &&
			leader.Paxos().DLSN() == newLeader.Paxos().DLSN() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	fmt.Printf("old leader %s is now a %s at DLSN %d (new leader DLSN %d)\n",
		leader.Name(), leader.Paxos().Role(), leader.Paxos().DLSN(), newLeader.Paxos().DLSN())

	// The rejoined node's engine sees the post-failover write.
	row, ok, _ := leader.Engine().GetAt(1, types.EncodeKey(nil, types.Int(100)), clock2.Now())
	if !ok {
		log.Fatal("rejoined follower missing the post-failover write")
	}
	fmt.Printf("rejoined follower replayed the outage-window write: %q\n", row[1].AsString())

	sqlLayerFailover()
}

// sqlLayerFailover replays the outage through a full cluster: the
// client never sees the failure because the CN heals routing and
// retries the auto-commit statement (§II-A).
func sqlLayerFailover() {
	fmt.Println("\n=== the same failure, seen from SQL ===")
	cluster, err := core.NewCluster(core.Config{DCs: 3, MultiDC: true, DNGroups: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	s := cluster.CN(simnet.DC1).NewSession()
	mustSQL := func(q string) *core.Result {
		res, err := s.Execute(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		return res
	}
	mustSQL(`CREATE TABLE acct (id BIGINT, bal BIGINT, PRIMARY KEY(id)) PARTITIONS 4`)
	for i := 0; i < 20; i++ {
		mustSQL(fmt.Sprintf("INSERT INTO acct (id, bal) VALUES (%d, %d)", i, 100))
	}
	old, err := cluster.FailDNLeader("dng0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("killed DN leader %s; issuing SELECT as if nothing happened...\n", old)
	start := time.Now()
	res := mustSQL("SELECT COUNT(*) FROM acct")
	newDN, _ := cluster.GMS.DNForShard("acct", 0)
	fmt.Printf("COUNT(*) = %v after %v — GMS re-routed %s -> %s behind one statement\n",
		res.Rows[0][0].AsInt(), time.Since(start).Round(time.Millisecond), old, newDN)
	mustSQL("INSERT INTO acct (id, bal) VALUES (999, 1)")
	fmt.Println("writes continue against the new leader")
}
