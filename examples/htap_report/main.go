// HTAP reporting: an order-processing workload keeps committing while a
// BI session runs analytical reports on the same data. The optimizer
// classifies each statement, routes TP to the RW leaders and AP to a
// dedicated RO replica with an in-memory column index, and the resource
// groups keep the two from starving each other — the paper's single
// endpoint promise (§VI).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/simnet"
)

func main() {
	cluster, err := core.NewCluster(core.Config{
		CNsPerDC: 2, DNGroups: 2, ROsPerDN: 1,
		TPCostThreshold: 1000,
		DNServiceRate:   50000,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	loader := cluster.CN(simnet.DC1).NewSession()
	mustExec(loader, `CREATE TABLE orders (
		id BIGINT, customer BIGINT, region VARCHAR(8),
		amount DOUBLE, status VARCHAR(8),
		PRIMARY KEY (id)
	) PARTITIONS 4`)
	for lo := 0; lo < 4000; lo += 200 {
		stmt := "INSERT INTO orders (id, customer, region, amount, status) VALUES "
		for i := lo; i < lo+200; i++ {
			if i > lo {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, %d, 'r%d', %d.25, 'open')", i, i%500, i%8, 10+i%90)
		}
		mustExec(loader, stmt)
	}

	// Dedicate the RO replicas to analytics and build column indexes.
	if err := cluster.EnableAPReplicas(1); err != nil {
		log.Fatal(err)
	}
	if err := cluster.WaitROConvergence(10 * time.Second); err != nil {
		log.Fatal(err)
	}
	if err := cluster.EnableColumnIndexes("orders"); err != nil {
		log.Fatal(err)
	}

	// TP stream: order updates at full tilt for two seconds.
	var tpOps atomic.Int64
	stop := make(chan struct{})
	go func() {
		s := cluster.CN(simnet.DC1).NewSession()
		rng := rand.New(rand.NewSource(1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := rng.Intn(4000)
			if _, err := s.Execute(fmt.Sprintf(
				"UPDATE orders SET status = 'shipped', amount = amount + 1 WHERE id = %d", id)); err == nil {
				tpOps.Add(1)
			}
		}
	}()

	// BI session: repeated reports while TP hammers away.
	bi := cluster.CN(simnet.DC1).NewSession()
	reports := []string{
		`SELECT region, COUNT(*) AS orders, SUM(amount) AS revenue
		 FROM orders GROUP BY region ORDER BY revenue DESC`,
		`SELECT status, COUNT(*) FROM orders GROUP BY status`,
		`SELECT region, AVG(amount) FROM orders WHERE amount > 50 GROUP BY region ORDER BY region`,
	}
	deadline := time.Now().Add(2 * time.Second)
	sweeps := 0
	var lastTop string
	for time.Now().Before(deadline) {
		for _, q := range reports {
			res, err := bi.Execute(q)
			if err != nil {
				log.Fatal(err)
			}
			if !res.Plan.IsAP {
				log.Fatalf("report misclassified as TP:\n%s", res.Plan.Explain())
			}
			if len(res.Rows) > 0 {
				lastTop = res.Rows[0][0].AsString()
			}
		}
		sweeps++
	}
	close(stop)
	time.Sleep(50 * time.Millisecond)

	fmt.Printf("TP stream: %d order updates committed (never blocked by reports)\n", tpOps.Load())
	fmt.Printf("BI stream: %d report sweeps on the RO column index; top region last sweep: %s\n",
		sweeps, lastTop)

	res := mustExec(bi, `SELECT region, COUNT(*), SUM(amount) FROM orders GROUP BY region ORDER BY region`)
	fmt.Println("final revenue report (session-consistent with the TP stream):")
	for _, row := range res.Rows {
		fmt.Printf("  %-4s orders=%-5s revenue=%s\n",
			row[0].AsString(), row[1].AsString(), row[2].AsString())
	}
	fmt.Print("report plan:\n", res.Plan.Explain())
}

func mustExec(s *core.Session, q string) *core.Result {
	res, err := s.Execute(q)
	if err != nil {
		log.Fatalf("%v", err)
	}
	return res
}
