// Quickstart: boot an embedded PolarDB-X cluster, create a partitioned
// table, and run basic SQL — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/simnet"
)

func main() {
	// A single-datacenter cluster: 2 stateless CNs, 2 DN shard groups.
	cluster, err := core.NewCluster(core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()

	// Sessions connect through the location-aware load balancer: ask for
	// a CN near DC1.
	session := cluster.CN(simnet.DC1).NewSession()

	exec := func(q string) *core.Result {
		res, err := session.Execute(q)
		if err != nil {
			log.Fatalf("%s: %v", q, err)
		}
		return res
	}

	// Hash-partitioned table (PARTITIONS is the PolarDB-X extension).
	exec(`CREATE TABLE users (
		id BIGINT,
		name VARCHAR(32),
		city VARCHAR(16),
		balance BIGINT,
		PRIMARY KEY (id)
	) PARTITIONS 4`)

	exec(`INSERT INTO users (id, name, city, balance) VALUES
		(1, 'alice', 'hangzhou', 100),
		(2, 'bob',   'beijing',  250),
		(3, 'carol', 'hangzhou', 175),
		(4, 'dave',  'shanghai',  90)`)

	// Point query: classified TP, pruned to one shard, one point lookup.
	res := exec(`SELECT name, balance FROM users WHERE id = 2`)
	fmt.Printf("point lookup: %s has %s\n",
		res.Rows[0][0].AsString(), res.Rows[0][1].AsString())

	// Cross-shard aggregate with grouping and ordering.
	res = exec(`SELECT city, COUNT(*) AS n, SUM(balance) AS total
	            FROM users GROUP BY city ORDER BY total DESC`)
	fmt.Println("balances by city:")
	for _, row := range res.Rows {
		fmt.Printf("  %-10s n=%s total=%s\n",
			row[0].AsString(), row[1].AsString(), row[2].AsString())
	}

	// Multi-statement distributed transaction (2PC under the hood).
	if err := session.BeginTxn(); err != nil {
		log.Fatal(err)
	}
	exec(`UPDATE users SET balance = balance - 50 WHERE id = 2`)
	exec(`UPDATE users SET balance = balance + 50 WHERE id = 4`)
	if err := session.Commit(); err != nil {
		log.Fatal(err)
	}
	res = exec(`SELECT id, balance FROM users WHERE id IN (2, 4) ORDER BY id`)
	fmt.Printf("after transfer: user2=%s user4=%s\n",
		res.Rows[0][1].AsString(), res.Rows[1][1].AsString())

	// EXPLAIN surface: every SELECT result carries its plan.
	res = exec(`SELECT city, AVG(balance) FROM users GROUP BY city`)
	fmt.Print("plan for the aggregate:\n", res.Plan.Explain())
}
