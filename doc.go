// Package repro is a from-scratch Go reproduction of "PolarDB-X: An
// Elastic Distributed Relational Database for Cloud-Native Applications"
// (ICDE 2022). The system lives under internal/ (see DESIGN.md for the
// inventory); bench_test.go at this level hosts the paper's figure
// benchmarks, runnable with `go test -bench=.`.
package repro
